#!/usr/bin/env python3
"""The §5.2 pathology: a slow DNS A record stalls (or kills) IPv6.

Demonstrates the paper's most surprising finding.  The AAAA answer is
on the table immediately, the IPv6 path is perfect — yet Chrome-like
clients do not connect until the *A* lookup resolves, because they
implement no DNS timeout of their own:

1. A record delayed 2 s  -> page stalls 2 s despite healthy IPv6;
2. A record delayed past the resolver's timeout -> connection still
   only proceeds after the resolver gives up (SERVFAIL);
3. Safari (real HEv2) is immune;
4. Chromium's HEv3 feature flag fixes it.

Run:  python examples/dns_failure_impact.py
"""

from repro.clients import Client, get_profile
from repro.dns import RdataType
from repro.testbed.topology import LocalTestbed


def fetch_with(profile_name, version, a_delay_s, resolver_timeout=5.0,
               hev3_flag=False, seed=7):
    testbed = LocalTestbed(seed=seed, resolver_timeout=resolver_timeout)
    testbed.set_dns_delay(RdataType.A, a_delay_s)
    client = Client(testbed.client, get_profile(profile_name, version),
                    testbed.resolver_addresses[:1], hev3_flag=hev3_flag)
    process = client.fetch("www.he-test.example")
    process.defused = True
    testbed.sim.run(until=30.0)
    if process.ok:
        fetch = process.value
        return fetch.he.time_to_connect, fetch.used_family.label
    return None, "FAILED"


def main() -> None:
    print("Scenario: IPv6 fully functional, AAAA answers instantly,")
    print("only the DNS *A* record is slow.\n")

    print(f"{'client':<24}{'A delay':>9}  {'time to connect':>16}  family")
    print("-" * 62)
    for a_delay in (0.5, 2.0):
        for name, version, flag in (("Chrome", "130.0", False),
                                    ("Firefox", "132.0", False),
                                    ("Safari", "17.6", False),
                                    ("Chrome", "130.0", True)):
            ttc, family = fetch_with(name, version, a_delay,
                                     hev3_flag=flag)
            label = f"{name} {version}" + (" +HEv3 flag" if flag else "")
            print(f"{label:<24}{a_delay * 1000:>6.0f} ms  "
                  f"{ttc * 1000:>13.1f} ms  {family}")
        print()

    print("With a resolver timeout of 2 s and an A delay beyond it, the")
    print("browser waits for the resolver's SERVFAIL before connecting:")
    ttc, family = fetch_with("Chrome", "130.0", a_delay_s=10.0,
                             resolver_timeout=2.0)
    print(f"  Chrome 130.0: connected after {ttc * 1000:.0f} ms "
          f"via {family} (the resolver's timeout, not the network's)")
    print()
    print('Paper, §6: "slow A queries also slow down IPv6, even if it '
          'is not at fault."')


if __name__ == "__main__":
    main()
