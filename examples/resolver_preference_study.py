#!/usr/bin/env python3
"""Resolver IP-version preference study (§4.2 / §5.3, Table 3).

Runs the resolver testbed — a real delegation walk from root hints to
a shaped authoritative name server — for BIND, Unbound, Knot, and a
few open-resolver behaviour models, and reports what the authoritative
query log shows: AAAA query ordering, IPv6 usage share, and the
fallback timeout.

Run:  python examples/resolver_preference_study.py
"""

from repro.resolvers import (BIND9, KNOT, UNBOUND, OPEN_RESOLVER_BY_NAME,
                             ResolverTestbed, run_resolver_campaign)


def study(behavior, delays=(0, 200, 400, 800, 1200), reps=6):
    campaign = run_resolver_campaign(behavior, delays_ms=list(delays),
                                     repetitions=reps, seed=21)
    share = campaign.ipv6_share
    max_delay = campaign.reliable_max_ipv6_delay_ms()
    gap = campaign.median_fallback_gap_ms()
    return share, max_delay, gap, campaign.max_v6_packets


def main() -> None:
    subjects = [BIND9, UNBOUND, KNOT,
                OPEN_RESOLVER_BY_NAME["OpenDNS"].behavior,
                OPEN_RESOLVER_BY_NAME["Google P. DNS"].behavior,
                OPEN_RESOLVER_BY_NAME["Yandex"].behavior]

    print(f"{'resolver':<16}{'IPv6 share':>11}{'max v6 delay':>14}"
          f"{'fallback gap':>14}{'v6 pkts':>9}")
    print("-" * 64)
    for behavior in subjects:
        share, max_delay, gap, packets = study(behavior)
        print(f"{behavior.name:<16}"
              f"{share:>9.1f} %"
              f"{(str(max_delay) + ' ms') if max_delay else '-':>14}"
              f"{(f'{gap:.0f} ms' if gap else '-'):>14}"
              f"{packets:>9}")

    print()
    print("One resolution in detail (BIND, IPv6 NS delayed 1.2 s):")
    testbed = ResolverTestbed(BIND9, seed=5, delay_ms=1200)
    observation = testbed.run()
    for entry in testbed.auth.query_log:
        print(f"  {entry.timestamp * 1000:8.1f} ms  "
              f"{entry.transport_family.label:4}  "
              f"{entry.qtype.name:5} {entry.qname}")
    print(f"  -> answered via {observation.answering_family.label}, "
          f"fallback gap "
          f"{observation.fallback_gap_s * 1000:.0f} ms "
          "(BIND's 800 ms timeout)")


if __name__ == "__main__":
    main()
