#!/usr/bin/env python3
"""Visit the web-based testing tool (happy-eyeballs.net, §4.3(ii)).

Spins up the tool's server deployment — the 18-step delay ladder with
dedicated dual-stack address pairs and per-delay domains — and has two
browsers visit it: Chrome (fixed 300 ms CAD, sharp flip) and Safari
(dynamic CAD, different interval every time).  The per-step outcome is
decided client-side from the echoed source address, like the real tool.

Run:  python examples/webtool_session.py
"""

from repro.clients import get_profile
from repro.webtool import (NetworkConditions, WebToolDeployment,
                           WebToolSession, render_session_ladder)


def main() -> None:
    deployment = WebToolDeployment(seed=77)
    print(f"web tool up: {len(deployment.ladder)} delay steps, "
          f"{len(deployment.server.addresses)} server addresses\n")

    chrome = WebToolSession(
        deployment, get_profile("Chrome", "130.0"),
        conditions=NetworkConditions.residential()).run()
    print(render_session_ladder(chrome))
    print()

    for repetition in range(3):
        safari = WebToolSession(deployment, get_profile("Safari", "17.6"),
                                repetition=repetition).run()
        print(render_session_ladder(safari))
        print()

    print("Safari's interval wanders between repetitions — the "
          '"dynamic, unpredictable approach" of §5.1 — while '
          "Chrome's stays put.")


if __name__ == "__main__":
    main()
