#!/usr/bin/env python3
"""Tour of the local testbed framework (§4.3(i), App. Figure 3).

Walks through the framework's moving parts the way the paper's
component diagram does: the two-node topology, the setup modules each
test-case kind composes, the sweep configuration, and one full runner
campaign with its per-run isolation.

Run:  python examples/local_testbed_tour.py
"""

from repro.clients import get_profile
from repro.testbed import (SweepSpec, TestCaseConfig, TestCaseKind,
                           TestRunner, address_selection_case, cad_case,
                           delayed_a_case, modules_for, rd_case)
from repro.testbed.topology import LocalTestbed


def main() -> None:
    print("1. Topology (client node + server node, direct link)")
    print("-" * 60)
    testbed = LocalTestbed(seed=1)
    for host in (testbed.client, testbed.server):
        addresses = ", ".join(str(a) for a in host.addresses)
        print(f"   {host.name:<12} {addresses}")
    print(f"   server services: authoritative DNS (:5353), forwarding "
          f"resolver (:53,")
    print(f"   timeout {testbed.resolver.upstream_timeout}s), echo web "
          f"server (:{testbed.web.port})")
    print(f"   test zone: {testbed.zone.origin} "
          f"({len(testbed.zone.names)} nodes, wildcard answers)")

    print("\n2. Test cases and their module chains")
    print("-" * 60)
    for case in (cad_case(fine=False), rd_case(), delayed_a_case(),
                 address_selection_case()):
        chain = " -> ".join(module.name for module in modules_for(case))
        print(f"   {case.name:<26} [{case.kind.value}]")
        print(f"      sweep: {len(case.sweep)} values "
              f"{list(case.sweep)[:6]}{'...' if len(case.sweep) > 6 else ''}")
        print(f"      modules: {chain}")

    print("\n3. Coarse + fine sweeps (the paper's two-phase strategy)")
    print("-" * 60)
    sweep = SweepSpec.coarse_fine(coarse_step_ms=100, fine_step_ms=10,
                                  stop_ms=400, around_ms=300,
                                  fine_window_ms=50)
    print(f"   coarse 100 ms everywhere + fine 10 ms around 300 ms:")
    print(f"   {list(sweep)}")

    print("\n4. One campaign: Chrome vs curl on a focused CAD case")
    print("-" * 60)
    case = TestCaseConfig(name="tour-cad",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=SweepSpec.fixed(150, 250, 350))
    runner = TestRunner([get_profile("Chrome", "130.0"),
                         get_profile("curl", "7.88.1")], [case], seed=2)
    results = runner.run()
    print(f"   {'client':<16}{'delay':>7}  {'family':>7}  {'CAD':>9}")
    for record in results.records:
        cad = (f"{record.cad_s * 1000:.0f} ms"
               if record.cad_s is not None else "-")
        print(f"   {record.client:<16}{record.value_ms:>4} ms  "
              f"{record.winning_family.label:>7}  {cad:>9}")
    print("\n   Every run used a fresh testbed + client (the paper's")
    print("   'drop and create a new container' state reset).")


if __name__ == "__main__":
    main()
