#!/usr/bin/env python3
"""Quickstart: watch Happy Eyeballs race a dual-stack connection.

Builds the two-host local testbed, delays IPv6 beyond the client's
Connection Attempt Delay, and connects once with an RFC 8305 client —
printing the full event trace (the Figure 1 message sequence) and the
client-side packet capture (what the testbed's inference reads).

Run:  python examples/quickstart.py
"""

from repro.core import rfc8305_params
from repro.core.engine import HappyEyeballsEngine
from repro.dns.stub import StubResolver
from repro.testbed import infer_cad
from repro.testbed.topology import LocalTestbed


def main() -> None:
    # -- the lab: client node + server node, directly connected -----------
    testbed = LocalTestbed(seed=42)
    # Delay IPv6 TCP by 400 ms on the server side (tc-netem equivalent):
    # more than the client's 250 ms CAD, so IPv4 should win the race.
    testbed.delay_ipv6_tcp(0.400)

    # -- an RFC 8305 client on the client node ------------------------------
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub, rfc8305_params())

    capture = testbed.start_client_capture()
    process = engine.connect("www.he-test.example", port=80)
    result = testbed.sim.run_until(process)

    print("=" * 72)
    print("Happy Eyeballs event trace (compare with Figure 1):")
    print("=" * 72)
    print(result.trace.render())

    print()
    print("=" * 72)
    print("Client-side packet capture (what the testbed measures):")
    print("=" * 72)
    print(capture.render(limit=20))

    print()
    print("=" * 72)
    winner = result.winning_family
    cad = infer_cad(capture)
    print(f"winner            : {winner.label} "
          f"({result.race.winning_attempt.candidate.address})")
    print(f"time to connect   : {result.time_to_connect * 1000:.1f} ms")
    print(f"CAD from capture  : {cad * 1000:.1f} ms "
          "(first IPv6 SYN -> first IPv4 SYN)")
    print(f"attempts          : "
          + ", ".join(f"{a.family.label}@{(a.started_at - result.started_at) * 1000:.0f}ms"
                      f"[{a.outcome.value}]" for a in result.attempts))
    assert winner.label == "IPv4"


if __name__ == "__main__":
    main()
