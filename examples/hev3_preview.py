#!/usr/bin/env python3
"""HEv3 preview: SVCB/HTTPS-driven protocol racing.

The paper closes with HEv3 (draft-ietf-happy-happyeyeballs-v3): clients
should consume HTTPS records and favor ECH over QUIC over TCP.  This
example publishes an HTTPS record advertising h3 + ECH and shows the
engine racing QUIC first — and falling back to TCP within one CAD when
QUIC is blackholed (e.g. UDP-hostile middleboxes).

Run:  python examples/hev3_preview.py
"""

from repro.core import hev3_draft_params
from repro.core.engine import HappyEyeballsEngine
from repro.dns import DNSName, HTTPS
from repro.dns.stub import StubResolver
from repro.simnet import NetemFilter, NetemRule, NetemSpec, Protocol
from repro.testbed.topology import LocalTestbed


def connect_once(quic_healthy: bool):
    testbed = LocalTestbed(seed=3)
    testbed.zone.add("www", HTTPS.service(
        1, DNSName.from_text(f"www.{testbed.test_domain}"),
        alpn=("h3", "h2"), ech=True))
    if quic_healthy:
        testbed.server.quic.listen(80)
    else:
        testbed.server_iface.ingress.add_rule(NetemRule(
            spec=NetemSpec(loss=1.0),
            filter=NetemFilter(protocol=Protocol.QUIC),
            name="udp-hostile-middlebox"))
    stub = StubResolver(testbed.client, testbed.resolver_addresses[:1],
                        timeout=3600.0, retries=0)
    engine = HappyEyeballsEngine(testbed.client, stub,
                                 hev3_draft_params())
    result = testbed.sim.run_until(
        engine.connect(f"www.{testbed.test_domain}"))
    return result


def main() -> None:
    for healthy, label in ((True, "QUIC reachable"),
                           (False, "QUIC blackholed (UDP dropped)")):
        result = connect_once(healthy)
        attempt = result.race.winning_attempt
        print(f"{label}:")
        print(f"  winner: {attempt.protocol.value.upper()} over "
              f"{attempt.family.label} "
              f"({attempt.candidate.address})")
        print(f"  time to connect: {result.time_to_connect * 1000:.1f} ms")
        print("  attempts: " + ", ".join(
            f"{a.protocol.value}/{a.family.label[3]}"
            f"[{a.outcome.value}]" for a in result.attempts))
        print()
    print("HEv3 preference order: ECH > QUIC > TCP, interlaced across "
          "address families (draft §2).")


if __name__ == "__main__":
    main()
