#!/usr/bin/env python3
"""Browser CAD survey: a coarse Figure 2 on your terminal.

Sweeps the configured IPv6 delay for every client version of Figure 2
(coarse 25 ms grid; pass ``--fine`` for the paper's 5 ms steps) and
prints which address family each client's established connection used,
plus the CAD inferred from packet captures.

Run:  python examples/browser_cad_survey.py [--fine]
"""

import argparse

from repro.analysis import figure2_sweep, render_figure2
from repro.clients import figure2_clients, get_profile
from repro.testbed import (SweepSpec, TestCaseConfig, TestCaseKind,
                           TestRunner)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fine", action="store_true",
                        help="5 ms steps (the paper's grid; slower)")
    args = parser.parse_args()
    step = 5 if args.fine else 25

    print(f"Sweeping IPv6 delay 0..400 ms in {step} ms steps over "
          f"{len(figure2_clients())} client versions...\n")
    series = figure2_sweep(step_ms=step, stop_ms=400, seed=11)
    print(render_figure2(series))

    # CAD values measured from captures, like the paper's Section 5.1.
    print("\nMeasured CAD per client (median over fallback runs):")
    case = TestCaseConfig(name="cadprobe",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=SweepSpec.fixed(350, 380, 400))
    clients = [get_profile("Chrome", "130.0"),
               get_profile("Firefox", "132.0"),
               get_profile("curl", "7.88.1")]
    results = TestRunner(clients, [case], seed=12).run()
    for profile in clients:
        cad = results.median_cad(profile.full_name)
        print(f"  {profile.full_name:<16} "
              f"{cad * 1000:6.1f} ms" if cad else
              f"  {profile.full_name:<16} (no fallback observed)")

    print("\nSafari is omitted from the sweep (2 s CAD), as in the "
          "paper's Figure 2.")


if __name__ == "__main__":
    main()
