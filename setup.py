"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs are unavailable; this file enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
