"""CampaignService: the long-lived concurrent campaign runtime.

Admission is the Experiment registry's pure ``plan()``: a submission
names a registered experiment plus knob values, the service resolves
the knobs and plans the key universe *without executing anything*, and
oversized or unknown requests are rejected before they cost a single
simulated run.  Admitted submissions execute on a thread pool, each in
its own :class:`~repro.experiments.Session` wired to

* the shared tiered store (memory LRU over the packed disk store),
* a :class:`~repro.service.singleflight.SingleFlightStore` wrapper, so
  overlapping concurrent submissions execute every key exactly once,
* the fault-tolerant runtime — per-experiment campaign journal and the
  retry policy, exactly as ``repro run --retries`` wires them.

Identical in-flight submissions (same experiment, same resolved knobs,
same seed) additionally *coalesce*: followers share the leader's
execution and receive the same artifact, reported as ``coalesced``
with zero executions of their own.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..experiments.base import Session, knob_mapping
from ..testbed.resilience import CampaignJournal, Resilience, RetryPolicy
from ..testbed.store import config_digest, open_store
from .singleflight import SingleFlight, SingleFlightStore
from .tiering import TieredStore


class AdmissionError(Exception):
    """A submission the service refuses to plan or execute."""


@dataclass
class ServedResult:
    """One submission's artifact plus its serving accounting."""

    experiment: str
    knobs: "Dict[str, Any]"
    digest: str
    text: str
    data: Any
    #: Distinct store keys the experiment planned.
    planned: int
    #: Planned keys that resolved without this submission executing
    #: them (memory tier, disk tier, or another submission's flight).
    hits: int
    #: Runs this submission executed (and stored) itself.
    executed: int
    #: Keys that resolved only after waiting on another submission's
    #: in-flight claim.
    waited: int
    #: True when this submission coalesced onto an identical in-flight
    #: one and shared its execution wholesale.
    coalesced: bool = False

    def summary(self) -> str:
        return (f"planned={self.planned} hits={self.hits} "
                f"executed={self.executed} waited={self.waited} "
                f"coalesced={str(self.coalesced).lower()}")


@dataclass
class ServiceStats:
    """Service-lifetime counters (reported by ``GET /stats``)."""

    submissions: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    coalesced: int = 0
    keys_planned: int = 0
    keys_executed: int = 0
    keys_waited: int = 0
    rebalances: int = 0

    def snapshot(self) -> "Dict[str, int]":
        return dataclasses.asdict(self)


class CampaignService:
    """Accepts experiment plans from many concurrent sessions.

    Parameters mirror the CLI's global flags where they overlap
    (``seed``, ``workers``, ``retries``); the service-specific ones:

    ``layout``
        Store layout for ``cache_dir`` — the service defaults to
        ``"packed"`` (population-scale entry counts are its reason to
        exist); ``"auto"`` respects an existing per-file store.
    ``lru_capacity``
        Entries held by the in-memory tier.
    ``service_workers``
        Concurrent submissions in flight (admission threads).
    ``coalesce``
        Share one execution between identical in-flight submissions.
    ``admission_limit``
        Reject plans above this many keys (0 disables the limit).
    ``lookup``
        Experiment resolver; defaults to the process-wide registry.
        Injectable so tests can serve throwaway experiments without
        polluting the registry.
    """

    def __init__(self, cache_dir: Union[str, Path], *,
                 seed: int = 0,
                 workers: Optional[int] = None,
                 retries: int = 0,
                 layout: str = "packed",
                 lru_capacity: int = 8192,
                 service_workers: int = 8,
                 coalesce: bool = True,
                 admission_limit: int = 1_000_000,
                 lookup: Optional[Callable[[str], Any]] = None,
                 rebalance_min_reads: int = 64,
                 rebalance_skew: float = 8.0) -> None:
        if lookup is None:
            from ..experiments.registry import get_experiment
            lookup = get_experiment
        self.seed = seed
        self.workers = workers
        self.retries = retries
        self.coalesce = coalesce
        self.admission_limit = admission_limit
        self.rebalance_min_reads = rebalance_min_reads
        self.rebalance_skew = rebalance_skew
        self._lookup = lookup
        self.store = TieredStore(open_store(cache_dir, layout=layout),
                                 capacity=lru_capacity)
        self.flight = SingleFlight()
        self.stats = ServiceStats()
        self._pool = ThreadPoolExecutor(
            max_workers=service_workers,
            thread_name_prefix="campaign-service")
        self._inflight: "Dict[str, Future]" = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- admission -------------------------------------------------------------

    def _admit(self, experiment_name: str,
               knobs: "Optional[Mapping[str, Any]]"):
        """Resolve and plan a submission; raises AdmissionError."""
        try:
            experiment = self._lookup(experiment_name)
        except KeyError as exc:
            self.stats.rejected += 1
            raise AdmissionError(str(exc).strip("'\"")) from None
        try:
            values = knob_mapping(experiment, dict(knobs or {}))
        except Exception as exc:
            self.stats.rejected += 1
            raise AdmissionError(
                f"bad knobs for {experiment_name}: {exc}") from None
        planning = Session(seed=self.seed, workers=self.workers,
                           store=self.store, knobs=values)
        try:
            keys = sorted(set(experiment.plan(planning)))
        except Exception as exc:
            self.stats.rejected += 1
            raise AdmissionError(
                f"cannot plan {experiment_name}: {exc}") from None
        if self.admission_limit and len(keys) > self.admission_limit:
            self.stats.rejected += 1
            raise AdmissionError(
                f"{experiment_name} plans {len(keys)} keys, over the "
                f"admission limit of {self.admission_limit}")
        return experiment, values, keys

    # -- submission ------------------------------------------------------------

    def submit_async(self, experiment_name: str,
                     knobs: "Optional[Mapping[str, Any]]" = None
                     ) -> "Future[ServedResult]":
        """Admit a submission and return a future for its result.

        Admission errors raise here, in the caller's thread — a
        rejected plan never occupies an execution slot.  With
        coalescing on, an identical in-flight submission is joined
        instead of re-executed.
        """
        if self._closed:
            raise AdmissionError("service is shut down")
        experiment, values, keys = self._admit(experiment_name, knobs)
        digest = config_digest(experiment.name, sorted(values.items()),
                               self.seed)
        self.stats.submissions += 1
        if not self.coalesce:
            return self._pool.submit(self._execute, experiment, values,
                                     keys, digest)
        with self._lock:
            leader = self._inflight.get(digest)
            if leader is not None:
                self.stats.coalesced += 1
                return _follower(leader)
            future = self._pool.submit(self._execute, experiment,
                                       values, keys, digest)
            self._inflight[digest] = future
        # Outside the lock: a future that already finished runs its
        # callback synchronously right here, and _forget retakes the
        # (non-reentrant) lock.
        future.add_done_callback(
            lambda done, digest=digest: self._forget(digest, done))
        return future

    def submit(self, experiment_name: str,
               knobs: "Optional[Mapping[str, Any]]" = None
               ) -> ServedResult:
        """Blocking :meth:`submit_async`."""
        return self.submit_async(experiment_name, knobs).result()

    def _forget(self, digest: str, future: Future) -> None:
        with self._lock:
            if self._inflight.get(digest) is future:
                del self._inflight[digest]

    # -- execution -------------------------------------------------------------

    def _resilience(self, experiment_name: str) -> Resilience:
        """The same bundle ``repro run`` builds: crash-safe journal in
        the store, seeded retry policy, implicit (no ``[faults]`` line
        changes the artifact — byte-identity is the invariant)."""
        journal = CampaignJournal(
            self.store.root / ".journal" / f"{experiment_name}.log")
        policy = RetryPolicy(retries=self.retries,
                             backoff_seed=self.seed)
        return Resilience(policy=policy, fault_plan=None,
                          journal=journal, resume=False,
                          explicit=False)

    def _execute(self, experiment, values: "Dict[str, Any]",
                 keys: "List[str]", digest: str) -> ServedResult:
        flight_store = SingleFlightStore(self.store, self.flight)
        resilience = self._resilience(experiment.name)
        session = Session(seed=self.seed, workers=self.workers,
                          store=flight_store, knobs=values,
                          resilience=resilience)
        try:
            artifact = experiment.run(session)
        except Exception:
            self.stats.failed += 1
            raise
        finally:
            resilience.close()
            flight_store.release()
        planned = len(keys)
        executed = flight_store.executed
        result = ServedResult(
            experiment=experiment.name, knobs=dict(values),
            digest=digest, text=artifact.text, data=artifact.data,
            planned=planned, hits=max(0, planned - executed),
            executed=executed, waited=flight_store.waited)
        self.stats.completed += 1
        self.stats.keys_planned += planned
        self.stats.keys_executed += executed
        self.stats.keys_waited += flight_store.waited
        self._maybe_rebalance()
        return result

    def _maybe_rebalance(self) -> None:
        """Kick the hot-shard rebalancer in the background when the
        heat counters say a shard is skewed; never on the submission's
        critical path."""
        if self.store.heat.hot_shards(
                min_reads=self.rebalance_min_reads,
                skew=self.rebalance_skew):
            self._pool.submit(self._rebalance)

    def _rebalance(self) -> "List[Any]":
        events = self.store.rebalance(
            min_reads=self.rebalance_min_reads,
            skew=self.rebalance_skew)
        self.stats.rebalances += len(events)
        return events

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight submissions and shut the pool down."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _follower(leader: "Future[ServedResult]") -> "Future[ServedResult]":
    """A future mirroring ``leader`` with follower accounting: the
    shared artifact, zero executions of its own, every planned key a
    hit, ``coalesced`` set."""
    follower: "Future[ServedResult]" = Future()

    def mirror(done: Future) -> None:
        error = done.exception()
        if error is not None:
            follower.set_exception(error)
            return
        result = done.result()
        follower.set_result(dataclasses.replace(
            result, coalesced=True, executed=0, waited=0,
            hits=result.planned))

    leader.add_done_callback(mirror)
    return follower
