"""HTTP front end for the campaign service (stdlib only).

``repro serve`` binds a :class:`ThreadingHTTPServer` over a
:class:`~repro.service.core.CampaignService`; ``repro submit`` is the
matching client.  The wire format is deliberately plain JSON:

* ``POST /submit`` — ``{"experiment": name, "knobs": {...}}`` →
  ``{"ok": true, "text": ..., "planned": ..., "hits": ...,
  "executed": ..., "waited": ..., "coalesced": ..., "digest": ...}``
  (plus ``"data"`` when the artifact has a machine-readable form).
  Artifact text rides as a JSON string, which round-trips exactly —
  the client reprints it byte-identical to ``repro run``.
* ``GET /health`` — liveness plus the registered experiment count.
* ``GET /stats`` — service counters, tier counters, single-flight
  counters.

Each request is handled on its own thread (admission layer); execution
slots are bounded by the service's own pool, so a submission storm
queues instead of forking unbounded work.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib import error as urlerror
from urllib import request as urlrequest

from .core import AdmissionError, CampaignService, ServedResult

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8377


def result_payload(result: ServedResult) -> "Dict[str, Any]":
    payload: "Dict[str, Any]" = {
        "ok": True,
        "experiment": result.experiment,
        "digest": result.digest,
        "text": result.text,
        "planned": result.planned,
        "hits": result.hits,
        "executed": result.executed,
        "waited": result.waited,
        "coalesced": result.coalesced,
    }
    if result.data is not None:
        try:
            json.dumps(result.data)
        except (TypeError, ValueError):
            pass
        else:
            payload["data"] = result.data
    return payload


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """One request; the owning server carries the service reference."""

    server: "CampaignServiceServer"
    protocol_version = "HTTP/1.1"

    def _reply(self, status: int, payload: "Dict[str, Any]") -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        service = self.server.service
        if self.path == "/health":
            from ..experiments.registry import all_experiments
            self._reply(200, {"ok": True,
                              "experiments": len(all_experiments())})
            return
        if self.path == "/stats":
            tier = service.store
            self._reply(200, {
                "ok": True,
                "service": service.stats.snapshot(),
                "tier": {"hits": tier.stats.hits,
                         "misses": tier.stats.misses,
                         "stores": tier.stats.stores,
                         "lru_entries": len(tier.lru),
                         "lru_evictions": tier.lru.evictions},
                "flight": {"claims": service.flight.claims,
                           "waits": service.flight.waits,
                           "in_flight": service.flight.in_flight()},
            })
            return
        self._reply(404, {"ok": False, "error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler naming
        if self.path != "/submit":
            self._reply(404, {"ok": False,
                              "error": f"no route {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length).decode("utf-8")
                              or "{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
            experiment = body.get("experiment")
            if not isinstance(experiment, str) or not experiment:
                raise ValueError("missing \"experiment\"")
            knobs = body.get("knobs") or {}
            if not isinstance(knobs, dict):
                raise ValueError("\"knobs\" must be an object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, {"ok": False, "error": str(exc)})
            return
        try:
            result = self.server.service.submit(experiment, knobs)
        except AdmissionError as exc:
            self._reply(422, {"ok": False, "error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - surfaced to client
            self._reply(500, {"ok": False,
                              "error": f"{type(exc).__name__}: {exc}"})
            return
        self._reply(200, result_payload(result))

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the caller's business, not stderr's


class CampaignServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one CampaignService."""

    daemon_threads = True

    def __init__(self, service: CampaignService,
                 host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        super().__init__((host, port), ServiceRequestHandler)
        self.service = service

    def serve_background(self) -> threading.Thread:
        """serve_forever on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="campaign-service-http",
                                  daemon=True)
        thread.start()
        return thread

    @property
    def address(self) -> "Tuple[str, int]":
        return self.server_address[0], self.server_address[1]


def submit_request(experiment: str,
                   knobs: "Optional[Dict[str, Any]]" = None,
                   host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                   timeout: float = 600.0) -> "Dict[str, Any]":
    """POST one submission to a running service; returns the decoded
    response payload.  Service-side rejections come back as the
    payload with ``ok: false`` rather than raising, so the CLI can
    render the error; transport failures raise ``OSError``."""
    body = json.dumps({"experiment": experiment,
                       "knobs": knobs or {}}).encode("utf-8")
    req = urlrequest.Request(
        f"http://{host}:{port}/submit", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urlrequest.urlopen(req, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urlerror.HTTPError as exc:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise OSError(f"service error {exc.code}") from exc
    except urlerror.URLError as exc:
        raise OSError(f"cannot reach service at {host}:{port}: "
                      f"{exc.reason}") from exc
