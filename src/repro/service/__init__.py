"""The long-lived campaign service (admission, single-flight, tiering).

One-shot CLI campaigns are process-per-invocation; the population-scale
workload the ROADMAP targets is the opposite shape — millions of
``(client, scenario, value, repetition)`` coordinates arriving from many
concurrent sessions, mostly redundant, hammering one store.  This
package is the serving layer for that shape:

* :mod:`~repro.service.core` — :class:`CampaignService`: admission
  through the Experiment registry's pure ``plan()``, submission
  coalescing, and per-submission sessions threaded through the
  fault-tolerant runtime (journal + ``resilient_map``).
* :mod:`~repro.service.singleflight` — in-flight key dedup: a stampede
  of identical requests executes every run exactly once.
* :mod:`~repro.service.tiering` — a bounded in-memory LRU in front of
  the (packed) campaign store, with hot-shard detection and background
  rebalancing.
* :mod:`~repro.service.http` — a stdlib HTTP endpoint (`repro serve`)
  and the matching client (`repro submit`).

The invariant is inherited from everything below it and pinned by the
service tests: a result served here is byte-identical to the same
experiment run directly via ``repro run``, cold or warm, serial or
parallel.
"""

from .core import (AdmissionError, CampaignService, ServedResult,
                   ServiceStats)
from .singleflight import SingleFlight, SingleFlightStore
from .tiering import LRUCache, RebalanceEvent, ShardHeat, TieredStore

__all__ = [
    "AdmissionError", "CampaignService", "LRUCache", "RebalanceEvent",
    "ServedResult", "ServiceStats", "ShardHeat", "SingleFlight",
    "SingleFlightStore", "TieredStore",
]
