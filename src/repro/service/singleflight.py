"""Single-flight key claims: a stampede executes each run exactly once.

When N concurrent submissions plan overlapping key sets, the naive
outcome is N executions of every shared miss — the cache-avalanche
shape.  :class:`SingleFlight` is the in-process claim registry that
prevents it: before a submission may treat a key as a miss (and execute
it), it must *own* the key's claim.  Claims are granted atomically for
a whole miss-set or not at all, which is what makes the protocol
deadlock-free: a submission only ever blocks while holding **zero**
claims from the blocked call, so two submissions can never wait on each
other's partial grabs.

The waiting side re-probes the store when claims resolve, so a waiter
observes the winner's stored record (a hit, byte-identical by the
store's own invariant) instead of executing a duplicate.  A claim whose
owner finishes without storing (a harness failure — those records are
never cached) is released at submission end and the longest waiter
simply inherits the miss and executes it itself.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..testbed.store import Decoded, decode_record, encode_record


class SingleFlight:
    """The shared claim registry (one per service).

    Thread-safe; tokens are opaque per-submission identities (any
    hashable object).  The registry never touches the store — it only
    arbitrates who is allowed to execute a missing key.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._owners: "Dict[str, Any]" = {}
        #: Keys granted to some submission (lifetime total).
        self.claims = 0
        #: Wait rounds — one submission blocking once on another's
        #: in-flight keys (lifetime total).
        self.waits = 0

    def in_flight(self) -> int:
        """Keys currently claimed by some submission."""
        with self._cond:
            return len(self._owners)

    def claim_all(self, token: Any,
                  keys: "List[str]") -> "Tuple[bool, List[str]]":
        """Atomically claim every key in ``keys`` for ``token``.

        All-or-nothing: returns ``(True, [])`` and records ownership of
        every key when none is owned by a *different* token (keys the
        token already owns pass through), else changes nothing and
        returns ``(False, foreign)`` with the keys someone else holds.
        """
        with self._cond:
            foreign = [key for key in keys
                       if self._owners.get(key, token) is not token]
            if foreign:
                return False, foreign
            for key in keys:
                if key not in self._owners:
                    self._owners[key] = token
                    self.claims += 1
            return True, []

    def wait_any(self, token: Any, keys: "Iterable[str]",
                 timeout: float = 1.0) -> None:
        """Block until at least one of ``keys`` is no longer claimed by
        a foreign token (released by a store or an abandon).  The
        timeout is a lost-notification backstop, not a deadline — the
        caller loops through the claim protocol regardless."""
        with self._cond:
            def some_free() -> bool:
                return any(self._owners.get(key, token) is token
                           for key in keys)
            if some_free():
                return
            self.waits += 1
            while not some_free():
                self._cond.wait(timeout=timeout)

    def release(self, token: Any, keys: "Iterable[str]") -> None:
        """Release ``token``'s claims on ``keys`` (no-op for keys it
        does not own) and wake every waiter."""
        with self._cond:
            freed = False
            for key in keys:
                if self._owners.get(key) is token:
                    del self._owners[key]
                    freed = True
            if freed:
                self._cond.notify_all()

    def release_all(self, token: Any) -> int:
        """Release every claim ``token`` still holds (submission
        teardown: covers keys that executed but were never stored)."""
        with self._cond:
            stale = [key for key, owner in self._owners.items()
                     if owner is token]
            for key in stale:
                del self._owners[key]
            if stale:
                self._cond.notify_all()
            return len(stale)


class SingleFlightStore:
    """A store wrapper enforcing the claim protocol for one submission.

    Sits between a submission's :class:`~repro.experiments.Session` and
    the shared (tiered) store.  Reads resolve normally; a key about to
    be reported as a miss is first claimed — or, when another
    submission holds it, waited on and re-probed, so the runner above
    sees a *hit* for work someone else is doing right now.  Writes pass
    through and release the key's claim, waking waiters.

    Everything not overridden delegates to the inner store, so the
    wrapper is drop-in wherever a :class:`CampaignStore` is expected.
    Workers never touch the store (cache resolution is parent-side),
    but campaign runners carrying a store must survive pickling — the
    wrapped copy reconnects to a private registry it will never use.
    """

    def __init__(self, inner: Any, flight: SingleFlight,
                 token: Optional[Any] = None) -> None:
        self.inner = inner
        self.flight = flight
        self.token = token if token is not None else object()
        #: Keys this submission stored (== runs it executed, when the
        #: campaign layer above only stores fresh executions).
        self.executed = 0
        #: Keys that resolved only after waiting on a foreign claim.
        self.waited = 0

    # -- reads (claim protocol) ------------------------------------------------

    def get_many(self, keys: "Iterable[str]",
                 decode: "Callable[[Any], Decoded]"
                 ) -> "Dict[str, Decoded]":
        key_list = list(keys)
        out = self.inner.get_many(key_list, decode)
        pending = [key for key in key_list if key not in out]
        while pending:
            granted, foreign = self.flight.claim_all(self.token, pending)
            if granted:
                break
            self.flight.wait_any(self.token, foreign)
            resolved = self.inner.get_many(foreign, decode)
            self.waited += len(resolved)
            out.update(resolved)
            pending = [key for key in pending if key not in out]
        return out

    def get(self, key: str,
            decode: "Callable[[Any], Decoded]") -> "Optional[Decoded]":
        while True:
            value = self.inner.get(key, decode)
            if value is not None:
                return value
            granted, foreign = self.flight.claim_all(self.token, [key])
            if granted:
                return None
            self.flight.wait_any(self.token, foreign)
            self.waited += 1

    def get_many_records(self, keys: "Iterable[str]") -> "Dict[str, Any]":
        return self.get_many(keys, decode_record)

    def get_record(self, key: str) -> "Optional[Any]":
        return self.get(key, decode_record)

    def has(self, key: str) -> bool:
        return self.inner.has(key)

    # -- writes (release claims) -----------------------------------------------

    def put(self, key: str, payload: Any) -> None:
        self.inner.put(key, payload)
        self.executed += 1
        self.flight.release(self.token, [key])

    def put_record(self, key: str, record: Any) -> None:
        self.put(key, encode_record(record))

    # -- teardown ----------------------------------------------------------------

    def release(self) -> int:
        """Drop every claim this submission still holds.  Call from a
        ``finally``: it is what guarantees liveness when a claimed key
        never got stored (harness failure, crash, exception)."""
        return self.flight.release_all(self.token)

    # -- plumbing ----------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        try:
            inner = object.__getattribute__(self, "inner")
        except AttributeError:
            raise AttributeError(name)
        return getattr(inner, name)

    def __getstate__(self) -> dict:
        # The claim registry holds locks; a pickled copy (a campaign
        # runner shipped to a worker, which never reads the store)
        # reconnects to a private, unshared registry.
        return {"inner": self.inner, "token": None,
                "executed": self.executed, "waited": self.waited}

    def __setstate__(self, state: dict) -> None:
        self.inner = state["inner"]
        self.flight = SingleFlight()
        self.token = object()
        self.executed = state["executed"]
        self.waited = state["waited"]
