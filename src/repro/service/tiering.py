"""Tiered store: bounded in-memory LRU over the on-disk campaign store.

The disk tier (per-file or packed) is the source of truth; the LRU in
front of it holds *serialized payloads* — the canonical JSON text the
store persists — so a memory hit decodes through ``json.loads`` plus
the same ``decode_record`` path as a disk hit and byte-identity is
preserved by construction (a payload that JSON would normalize, e.g.
tuples to lists, normalizes identically from either tier).  Caching
text rather than live objects also makes hits immune to caller-side
mutation: every hit materializes a fresh object.

The tier also watches where disk reads land.  A skewed campaign mix
concentrates traffic on a few shards (hot partitions); when a shard's
backing-read count exceeds a multiple of the uniform share, the
rebalancer preloads it into the LRU and — on the packed layout —
compacts its dead bytes in the background.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..testbed.store import (CacheStats, Decoded, decode_record,
                             encode_record)

_MISSING = object()


def _identity(payload: Any) -> Any:
    return payload


def _freeze(payload: Any) -> str:
    """The LRU's entry form: canonical JSON text."""
    return json.dumps(payload, sort_keys=True)


class LRUCache:
    """A bounded key → payload mapping with LRU eviction.

    Not locked: the owning :class:`TieredStore` serializes access.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> Any:
        """The cached payload (refreshing recency), or the module's
        ``_MISSING`` sentinel."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return _MISSING
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        if self.capacity <= 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        while len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def discard(self, key: str) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()


class ShardHeat:
    """Backing-read traffic per shard, for hot-partition detection.

    Content-addressed keys spread uniformly over 256 shards, so the
    expected share of any shard is ``total / 256``; a shard is *hot*
    when its reads exceed ``skew`` times that share (and an absolute
    floor, so cold services never rebalance on noise).  Counts are
    halved after every rebalance pass, keeping the signal recent.
    """

    SHARD_SPACE = 256

    def __init__(self) -> None:
        self.counts: "Dict[str, int]" = {}

    def note(self, shard: str, reads: int = 1) -> None:
        if reads > 0:
            self.counts[shard] = self.counts.get(shard, 0) + reads

    def total(self) -> int:
        return sum(self.counts.values())

    def hot_shards(self, min_reads: int = 64,
                   skew: float = 8.0) -> "List[str]":
        total = self.total()
        uniform_share = total / self.SHARD_SPACE
        return sorted(shard for shard, reads in self.counts.items()
                      if reads >= min_reads
                      and reads >= skew * uniform_share)

    def decay(self) -> None:
        self.counts = {shard: reads // 2
                       for shard, reads in self.counts.items()
                       if reads // 2 > 0}


@dataclass
class RebalanceEvent:
    """One hot shard handled by a rebalance pass."""

    shard: str
    #: Entries preloaded into the memory tier.
    preloaded: int
    #: Dead bytes reclaimed by packed-shard compaction (0 on the
    #: per-file layout, which has no dead bytes).
    reclaimed_bytes: int

    def summary(self) -> str:
        return (f"shard={self.shard} preloaded={self.preloaded} "
                f"reclaimed={self.reclaimed_bytes}B")


class TieredStore:
    """Memory tier + disk tier behind the one store interface.

    Thread-safe (unlike a bare :class:`CampaignStore` handle): one
    instance is shared by every concurrent submission of a service, so
    every operation holds the tier lock — which also serializes access
    to the backing handle's scan state.

    ``stats`` counts at tier granularity (a memory hit and a disk hit
    are both hits); the backing store's own counters keep counting disk
    traffic only, which is what the hit-rate split in the service stats
    is derived from.
    """

    def __init__(self, backing: Any, capacity: int = 8192) -> None:
        self.backing = backing
        self.lru = LRUCache(capacity)
        self.stats = CacheStats()
        self.heat = ShardHeat()
        self._lock = threading.RLock()
        #: A rebalance preload fills at most this fraction of the LRU
        #: per shard, so one huge hot shard cannot flush the whole tier.
        self.preload_fraction = 0.25

    # -- reads -----------------------------------------------------------------

    def get_many(self, keys: "Iterable[str]",
                 decode: "Callable[[Any], Decoded]"
                 ) -> "Dict[str, Decoded]":
        with self._lock:
            out: "Dict[str, Decoded]" = {}
            missing: "List[str]" = []
            for key in keys:
                frozen = self.lru.get(key)
                if frozen is _MISSING:
                    missing.append(key)
                    continue
                try:
                    out[key] = decode(json.loads(frozen))
                except Exception:
                    self.lru.discard(key)
                    missing.append(key)
                    continue
                self.stats.hits += 1
            if missing:
                for key in missing:
                    self.heat.note(key[:2])
                found = self.backing.get_many(missing, _identity)
                for key in missing:
                    payload = found.get(key, _MISSING)
                    if payload is _MISSING:
                        self.stats.misses += 1
                        continue
                    try:
                        out[key] = decode(payload)
                        frozen = _freeze(payload)
                    except Exception:
                        self.stats.misses += 1
                        continue
                    self.lru.put(key, frozen)
                    self.stats.hits += 1
            return out

    def get(self, key: str,
            decode: "Callable[[Any], Decoded]") -> "Optional[Decoded]":
        result = self.get_many([key], decode)
        return result.get(key)

    def get_many_records(self, keys: "Iterable[str]") -> "Dict[str, Any]":
        return self.get_many(keys, decode_record)

    def get_record(self, key: str) -> "Optional[Any]":
        return self.get(key, decode_record)

    def has(self, key: str) -> bool:
        with self._lock:
            return key in self.lru or self.backing.has(key)

    # -- writes ----------------------------------------------------------------

    def put(self, key: str, payload: Any) -> None:
        with self._lock:
            self.backing.put(key, payload)
            try:
                self.lru.put(key, _freeze(payload))
            except (TypeError, ValueError):
                pass  # unserializable payloads stay disk-only
            self.stats.stores += 1

    def put_record(self, key: str, record: Any) -> None:
        self.put(key, encode_record(record))

    # -- maintenance -----------------------------------------------------------

    def gc(self, live_keys: "Iterable[str]") -> Any:
        with self._lock:
            stats = self.backing.gc(live_keys)
            self.lru.clear()
            return stats

    def rebalance(self, min_reads: int = 64,
                  skew: float = 8.0) -> "List[RebalanceEvent]":
        """Handle every currently hot shard: preload its payloads into
        the memory tier and, on the packed layout, compact its dead
        bytes.  Returns one event per shard handled (empty when nothing
        is hot), then decays the heat counters."""
        with self._lock:
            hot = self.heat.hot_shards(min_reads=min_reads, skew=skew)
            if not hot:
                return []
            events: "List[RebalanceEvent]" = []
            budget = max(1, int(self.lru.capacity
                                * self.preload_fraction))
            compact = getattr(self.backing, "compact_shard", None)
            dead = getattr(self.backing, "dead_bytes", None)
            for shard in hot:
                preloaded = 0
                for key, payload in self.backing.shard_payloads(
                        shard).items():
                    if preloaded >= budget:
                        break
                    if key not in self.lru:
                        self.lru.put(key, _freeze(payload))
                        preloaded += 1
                reclaimed = 0
                if (compact is not None and dead is not None
                        and dead(shard) > 0):
                    reclaimed = compact(shard)
                events.append(RebalanceEvent(
                    shard=shard, preloaded=preloaded,
                    reclaimed_bytes=reclaimed))
            self.heat.decay()
            return events

    # -- plumbing ----------------------------------------------------------------

    @property
    def root(self) -> Any:
        return self.backing.root

    def __getattr__(self, name: str) -> Any:
        try:
            backing = object.__getattribute__(self, "backing")
        except AttributeError:
            raise AttributeError(name)
        return getattr(backing, name)

    def __getstate__(self) -> dict:
        # Locks do not pickle; a worker-side copy (never read — cache
        # resolution is parent-side) gets a fresh empty tier.
        return {"backing": self.backing,
                "capacity": self.lru.capacity}

    def __setstate__(self, state: dict) -> None:
        self.backing = state["backing"]
        self.lru = LRUCache(state["capacity"])
        self.stats = CacheStats()
        self.heat = ShardHeat()
        self._lock = threading.RLock()
        self.preload_fraction = 0.25
