"""Analysis: turning measurements into the paper's tables and figures."""

from .figures import (Figure2Series, Figure5Series, figure2_runner,
                      figure2_sweep, figure4_sessions, figure5_attempts,
                      figure5_runner, render_figure2, render_figure5)
from .render import (format_ms, format_percent, render_family_strip,
                     render_mark, render_table)
from .stats import (StreamingCDF, Summary, cad_summary, outlier_fraction,
                    rd_summary, stall_summary, summarize, summarize_metric)
from .tables import (RESOLVER_DELAY_GRID, Table2Row, Table3Row, Table4Row,
                     evaluate_client_features, render_table2, render_table3,
                     render_table4, table1_parameters, table2_features,
                     table2_local_runner, table3_resolvers,
                     table3_store_keys, table4_inventory, table5_matrix)

__all__ = [
    "Figure2Series", "Figure5Series", "RESOLVER_DELAY_GRID",
    "StreamingCDF", "Summary",
    "Table2Row", "cad_summary", "outlier_fraction", "rd_summary",
    "stall_summary", "summarize", "summarize_metric",
    "Table3Row", "Table4Row", "evaluate_client_features",
    "figure2_runner", "figure2_sweep",
    "figure4_sessions", "figure5_attempts", "figure5_runner",
    "format_ms", "format_percent",
    "render_family_strip", "render_figure2", "render_figure5",
    "render_mark", "render_table", "render_table2", "render_table3",
    "render_table4", "table1_parameters", "table2_features",
    "table2_local_runner", "table3_resolvers", "table3_store_keys",
    "table4_inventory", "table5_matrix",
]
