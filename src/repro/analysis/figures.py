"""Builders for the paper's figures (data series + text rendering).

* Figure 2 — address family of the established connection per
  configured IPv6 delay, one strip per client version;
* Figure 4 — the web tool's CAD/RD ladder views (per session);
* Figure 5 — address family at the n-th connection attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..clients.profile import ClientProfile
from ..clients.registry import figure2_clients
from ..simnet.addr import Family
from ..testbed.config import (SweepSpec, TestCaseConfig, TestCaseKind,
                              address_selection_case)
from ..testbed.resilience import Resilience
from ..testbed.runner import (StreamingResultSet, TestRunner,
                              series_flap_window)
from ..testbed.store import CampaignStore
from ..webtool.session import SessionResult
from .render import render_family_strip

# --------------------------------------------------------------------------
# Figure 2 — established family vs configured IPv6 delay
# --------------------------------------------------------------------------


@dataclass
class Figure2Series:
    """One client's row in Figure 2."""

    client: str
    label: str
    outcomes: List[Tuple[int, Optional[Family]]] = field(
        default_factory=list)

    @property
    def crossover_ms(self) -> Optional[int]:
        """Largest delay still established via IPv6 (see
        :attr:`is_monotonic` before trusting it on flapping series)."""
        v6 = [delay for delay, family in self.outcomes
              if family is Family.V6]
        return max(v6) if v6 else None

    @property
    def first_v4_ms(self) -> Optional[int]:
        v4 = sorted(delay for delay, family in self.outcomes
                    if family is Family.V4)
        return v4[0] if v4 else None

    @property
    def is_monotonic(self) -> bool:
        """False when an IPv4 win sits below an IPv6 win — the series
        flaps and the crossover is not a single delay."""
        return series_flap_window(
            {delay: family for delay, family in self.outcomes
             if family is not None}) is None


def figure2_runner(profiles: Sequence[ClientProfile], step_ms: int = 5,
                   stop_ms: int = 400, seed: int = 0,
                   store: Optional[CampaignStore] = None,
                   resilience: Optional[Resilience] = None) -> TestRunner:
    """The Figure 2 campaign runner (shared by the sweep and by
    ``repro cache gc``'s key planning)."""
    case = TestCaseConfig(name="figure2",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=SweepSpec.range(0, stop_ms, step_ms))
    return TestRunner(list(profiles), [case], seed=seed, store=store,
                      resilience=resilience)


def figure2_sweep(clients: Optional[Sequence[ClientProfile]] = None,
                  step_ms: int = 5, stop_ms: int = 400,
                  seed: int = 0,
                  workers: Optional[int] = None,
                  store: Optional[CampaignStore] = None,
                  resilience: Optional[Resilience] = None
                  ) -> List[Figure2Series]:
    """Run the Figure 2 campaign: delay sweep per client version.

    The paper sweeps 0–400 ms in 5 ms steps; coarser steps give the
    same crossovers faster (pass ``step_ms=25`` for a quick run).
    ``workers=N`` fans the runs out over N processes with identical
    results — the fine-grained paper sweep is ~1400 isolated runs.
    ``store`` attaches the incremental campaign store: a re-render
    with unchanged configuration replays from cache byte-identically.

    Records stream through :class:`StreamingResultSet` — the campaign
    aggregates incrementally and never materializes the full record
    list, so run count only costs time, not memory.
    """
    profiles = list(clients) if clients is not None else figure2_clients()
    runner = figure2_runner(profiles, step_ms=step_ms, stop_ms=stop_ms,
                            seed=seed, store=store, resilience=resilience)
    aggregate = StreamingResultSet.consume(runner.stream(workers=workers))
    series: List[Figure2Series] = []
    for profile in profiles:
        entry = Figure2Series(client=profile.full_name,
                              label=profile.label)
        entry.outcomes = aggregate.outcomes(profile.full_name,
                                            runner.cases[0].name)
        series.append(entry)
    return series


def render_figure2(series: List[Figure2Series]) -> str:
    """Figure 2 as text: one strip per client ('#' IPv6, '.' IPv4)."""
    if not series:
        return "(no series)"
    delays = [delay for delay, _ in series[0].outcomes]
    width = max(len(entry.label) for entry in series)
    lines = ["Figure 2: established address family vs configured "
             "IPv6 delay",
             f"{'':{width}}  {delays[0]} ms {'-' * 20}> {delays[-1]} ms"]
    for entry in series:
        strip = render_family_strip(
            [None if family is None else family is Family.V6
             for _, family in entry.outcomes])
        crossover = entry.crossover_ms
        if not entry.is_monotonic:
            # Flapping client: an IPv4 win below an IPv6 win.  Surface
            # it instead of pretending the max IPv6 delay is a crossover.
            suffix = (f"  (non-monotonic: IPv4 at {entry.first_v4_ms} ms "
                      f"but IPv6 again at {crossover} ms)")
        elif entry.first_v4_ms is not None:
            suffix = f"  (IPv6 up to {crossover} ms)"
        else:
            suffix = "  (never IPv4)"
        lines.append(f"{entry.label:{width}}  {strip}{suffix}")
    lines.append("legend: '#' = IPv6 established, '.' = IPv4 established")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 5 — address family at the n-th connection attempt
# --------------------------------------------------------------------------


@dataclass
class Figure5Series:
    """One client's attempt-family sequence."""

    client: str
    families: List[Family] = field(default_factory=list)

    @property
    def pattern(self) -> str:
        return "".join("6" if family is Family.V6 else "4"
                       for family in self.families)


def figure5_runner(clients: Sequence[ClientProfile],
                   addresses_per_family: int = 10, seed: int = 0,
                   store: Optional[CampaignStore] = None,
                   resilience: Optional[Resilience] = None) -> TestRunner:
    """The Figure 5 campaign runner (shared with cache gc planning)."""
    case = address_selection_case(addresses_per_family)
    return TestRunner(list(clients), [case], seed=seed, store=store,
                      resilience=resilience)


def figure5_attempts(clients: Sequence[ClientProfile],
                     addresses_per_family: int = 10,
                     seed: int = 0,
                     workers: Optional[int] = None,
                     store: Optional[CampaignStore] = None,
                     resilience: Optional[Resilience] = None
                     ) -> List[Figure5Series]:
    """Run the address-selection case and extract attempt sequences.

    Streams the campaign: only each client's attempt-family list is
    retained, never the records themselves.
    """
    runner = figure5_runner(clients, addresses_per_family, seed=seed,
                            store=store, resilience=resilience)
    families_by_client: Dict[str, List[Family]] = {}
    for record in runner.stream(workers=workers):
        if record.client not in families_by_client:
            families_by_client[record.client] = [
                family for _, family in record.attempts]
    return [Figure5Series(client=profile.full_name,
                          families=families_by_client[profile.full_name])
            for profile in clients]


def render_figure5(series: List[Figure5Series],
                   slots: int = 20) -> str:
    width = max((len(entry.client) for entry in series), default=10)
    header = " ".join(f"{n:>2}" for n in range(1, slots + 1))
    lines = ["Figure 5: address family used at the n-th connection "
             "attempt",
             f"{'':{width}}  {header}"]
    for entry in series:
        cells = []
        for index in range(slots):
            if index < len(entry.families):
                cells.append("v6" if entry.families[index] is Family.V6
                             else "v4")
            else:
                cells.append(" .")
        lines.append(f"{entry.client:{width}}  {' '.join(cells)}")
    lines.append("legend: v6/v4 = attempt via that family, . = no attempt")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 4 — web tool ladders (rendering lives with the web tool)
# --------------------------------------------------------------------------


def figure4_sessions(sessions: Sequence[SessionResult]) -> str:
    """Concatenated ladder views for a set of sessions."""
    from ..webtool.report import render_session_ladder

    return "\n\n".join(render_session_ladder(session)
                       for session in sessions)
