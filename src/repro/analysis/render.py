"""Plain-text rendering of tables and figure series.

Benches and examples print through these helpers so every reproduced
table/figure has a consistent, diff-able textual form.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Align columns; None renders as '-'."""
    normalized: List[List[str]] = []
    for row in rows:
        normalized.append(["-" if cell is None else str(cell)
                           for cell in row])
    widths = [len(h) for h in headers]
    for row in normalized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in normalized:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_family_strip(outcomes: Sequence[Optional[bool]],
                        v6_char: str = "#", v4_char: str = ".",
                        unknown_char: str = " ") -> str:
    """A Figure 2-style strip: one character per sweep point.

    ``True`` = IPv6 established, ``False`` = IPv4, ``None`` = no data.
    """
    out = []
    for used_ipv6 in outcomes:
        if used_ipv6 is None:
            out.append(unknown_char)
        elif used_ipv6:
            out.append(v6_char)
        else:
            out.append(v4_char)
    return "".join(out)


def render_mark(value: Optional[bool], deviation: bool = False) -> str:
    """Table 2 style marks: ● observed, ○ not observed, ◐ deviation."""
    if value is None:
        return "-"
    if deviation:
        return "◐"
    return "●" if value else "○"


def format_ms(seconds: Optional[float], digits: int = 0) -> Optional[str]:
    if seconds is None:
        return None
    return f"{seconds * 1000:.{digits}f} ms"


def format_percent(value: Optional[float], digits: int = 1) -> Optional[str]:
    if value is None:
        return None
    return f"{value:.{digits}f} %"
