"""Summary statistics over repeated measurement runs.

The paper reports medians and notes that "the median and standard
deviation are within a ms of the obtained value" for Firefox's CAD
(§5.1).  These helpers compute those aggregates from
:class:`~repro.testbed.runner.ResultSet` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..testbed.runner import ResultSet, RunRecord


class StreamingCDF:
    """Streaming, mergeable, deterministic CDF/quantile accumulator.

    Values land in fixed-width bins kept as a sparse ``{bin: count}``
    dict, so memory is proportional to the value *spread*, never the
    sample count — a million-user population campaign aggregates its
    latency distribution without materializing a record list.  Because
    bin increments commute, the binned aggregate (counts, quantiles,
    CDF points, extremes) is independent of insertion order, and
    merging per-worker accumulators (:meth:`merge`) reproduces it
    exactly — which is what keeps serial, parallel, and warm-cache
    renderings byte-identical.  The mean is a float sum, so only it
    may differ in the last ulp across merge groupings.

    Quantiles resolve to the *upper edge* of the bin holding the
    requested rank (a deterministic ≤ ``bin_width`` overestimate);
    exact minimum, maximum, and mean are tracked on the side.
    """

    __slots__ = ("bin_width", "count", "total", "minimum", "maximum",
                 "_bins")

    def __init__(self, bin_width: float = 0.001) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive: {bin_width!r}")
        self.bin_width = bin_width
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._bins: Dict[int, int] = {}

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"non-finite sample: {value!r}")
        index = math.floor(value / self.bin_width)
        self._bins[index] = self._bins.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "StreamingCDF") -> None:
        """Fold ``other`` in; identical to having added its samples here."""
        if other.bin_width != self.bin_width:
            raise ValueError(
                f"bin widths differ: {self.bin_width!r} vs "
                f"{other.bin_width!r}")
        for index, count in other._bins.items():
            self._bins[index] = self._bins.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum

    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The upper edge of the bin holding rank ``ceil(q * count)``.

        ``q=0`` returns the exact minimum and ``q=1`` the exact
        maximum; None when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q!r}")
        if not self.count:
            return None
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self._bins):
            seen += self._bins[index]
            if seen >= rank:
                return (index + 1) * self.bin_width
        return self.maximum  # pragma: no cover - rank <= count

    def cdf_at(self, value: float) -> Optional[float]:
        """Fraction of samples ≤ ``value``, at bin resolution: every
        sample is counted at its bin's *lower* edge, so the answer is
        exact whenever ``value`` lies on a bin boundary and otherwise
        overestimates by at most one bin's population.  None when
        empty."""
        if not self.count:
            return None
        cutoff = math.floor(value / self.bin_width)
        below = sum(count for index, count in self._bins.items()
                    if index <= cutoff)
        return below / self.count

    def cdf_points(self) -> "List[Tuple[float, float]]":
        """Sorted ``(bin upper edge, cumulative fraction)`` pairs —
        the rendered CDF curve."""
        points = []
        seen = 0
        for index in sorted(self._bins):
            seen += self._bins[index]
            points.append(((index + 1) * self.bin_width,
                           seen / self.count))
        return points


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric."""

    count: int
    minimum: float
    median: float
    mean: float
    stddev: float
    maximum: float

    def within(self, target: float, tolerance: float) -> bool:
        """Is the median within ``tolerance`` of ``target``?"""
        return abs(self.median - target) <= tolerance

    def describe(self, unit: str = "", scale: float = 1.0) -> str:
        return (f"n={self.count} median={self.median * scale:.1f}{unit} "
                f"mean={self.mean * scale:.1f}{unit} "
                f"sd={self.stddev * scale:.2f}{unit} "
                f"range=[{self.minimum * scale:.1f}, "
                f"{self.maximum * scale:.1f}]{unit}")


def summarize(values: Iterable[float]) -> Optional[Summary]:
    """Summary of a value sequence; None when empty."""
    data = sorted(values)
    if not data:
        return None
    count = len(data)
    mean = sum(data) / count
    if count % 2:
        median = data[count // 2]
    else:
        median = (data[count // 2 - 1] + data[count // 2]) / 2.0
    variance = sum((v - mean) ** 2 for v in data) / count
    return Summary(count=count, minimum=data[0], median=median,
                   mean=mean, stddev=math.sqrt(variance),
                   maximum=data[-1])


def summarize_metric(results: ResultSet, client: str,
                     metric: Callable[[RunRecord], Optional[float]]
                     ) -> Optional[Summary]:
    """Summary of ``metric`` over a client's runs (None values skipped)."""
    values = [value for record in results.for_client(client)
              if (value := metric(record)) is not None]
    return summarize(values)


def cad_summary(results: ResultSet, client: str) -> Optional[Summary]:
    return summarize_metric(results, client,
                            lambda record: record.cad_s)


def rd_summary(results: ResultSet, client: str) -> Optional[Summary]:
    return summarize_metric(results, client, lambda record: record.rd_s)


def stall_summary(results: ResultSet, client: str) -> Optional[Summary]:
    return summarize_metric(
        results, client, lambda record: record.time_to_first_attempt_s)


def outlier_fraction(results: ResultSet, client: str,
                     nominal_cad_s: float,
                     tolerance_s: float = 0.010) -> Optional[float]:
    """Fraction of runs whose observed CAD exceeds the nominal value.

    This is the paper's Firefox observation operationalized: outliers
    are CADs more than ``tolerance`` above the configured value.
    """
    values = [record.cad_s for record in results.for_client(client)
              if record.cad_s is not None]
    if not values:
        return None
    late = sum(1 for value in values
               if value > nominal_cad_s + tolerance_s)
    return late / len(values)
