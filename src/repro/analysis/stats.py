"""Summary statistics over repeated measurement runs.

The paper reports medians and notes that "the median and standard
deviation are within a ms of the obtained value" for Firefox's CAD
(§5.1).  These helpers compute those aggregates from
:class:`~repro.testbed.runner.ResultSet` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..testbed.runner import ResultSet, RunRecord


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric."""

    count: int
    minimum: float
    median: float
    mean: float
    stddev: float
    maximum: float

    def within(self, target: float, tolerance: float) -> bool:
        """Is the median within ``tolerance`` of ``target``?"""
        return abs(self.median - target) <= tolerance

    def describe(self, unit: str = "", scale: float = 1.0) -> str:
        return (f"n={self.count} median={self.median * scale:.1f}{unit} "
                f"mean={self.mean * scale:.1f}{unit} "
                f"sd={self.stddev * scale:.2f}{unit} "
                f"range=[{self.minimum * scale:.1f}, "
                f"{self.maximum * scale:.1f}]{unit}")


def summarize(values: Iterable[float]) -> Optional[Summary]:
    """Summary of a value sequence; None when empty."""
    data = sorted(values)
    if not data:
        return None
    count = len(data)
    mean = sum(data) / count
    if count % 2:
        median = data[count // 2]
    else:
        median = (data[count // 2 - 1] + data[count // 2]) / 2.0
    variance = sum((v - mean) ** 2 for v in data) / count
    return Summary(count=count, minimum=data[0], median=median,
                   mean=mean, stddev=math.sqrt(variance),
                   maximum=data[-1])


def summarize_metric(results: ResultSet, client: str,
                     metric: Callable[[RunRecord], Optional[float]]
                     ) -> Optional[Summary]:
    """Summary of ``metric`` over a client's runs (None values skipped)."""
    values = [value for record in results.for_client(client)
              if (value := metric(record)) is not None]
    return summarize(values)


def cad_summary(results: ResultSet, client: str) -> Optional[Summary]:
    return summarize_metric(results, client,
                            lambda record: record.cad_s)


def rd_summary(results: ResultSet, client: str) -> Optional[Summary]:
    return summarize_metric(results, client, lambda record: record.rd_s)


def stall_summary(results: ResultSet, client: str) -> Optional[Summary]:
    return summarize_metric(
        results, client, lambda record: record.time_to_first_attempt_s)


def outlier_fraction(results: ResultSet, client: str,
                     nominal_cad_s: float,
                     tolerance_s: float = 0.010) -> Optional[float]:
    """Fraction of runs whose observed CAD exceeds the nominal value.

    This is the paper's Firefox observation operationalized: outliers
    are CADs more than ``tolerance`` above the configured value.
    """
    values = [record.cad_s for record in results.for_client(client)
              if record.cad_s is not None]
    if not values:
        return None
    late = sum(1 for value in values
               if value > nominal_cad_s + tolerance_s)
    return late / len(values)
