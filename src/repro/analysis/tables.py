"""Builders for every table in the paper.

Each ``tableN_*`` function *runs the measurement* (on models, through
the real framework) and returns structured rows; the benches render
and validate them.  Nothing here copies expected outputs — values come
out of captures and query logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..clients.profile import ClientProfile
from ..clients.registry import table2_clients
from ..core.params import (HEParams, RFC_PARAMETER_SETS)
from ..fanout import map_maybe_parallel
from ..resolvers.models import LOCAL_RESOLVERS
from ..resolvers.open_resolvers import (OPEN_RESOLVERS, OpenResolverService,
                                        evaluated_services)
from ..resolvers.testbed import (ResolverCampaignResult,
                                 probe_ipv6_only_capability,
                                 run_resolver_campaign)
from ..simnet.addr import Family
from ..testbed.config import (SweepSpec, TestCaseConfig, TestCaseKind,
                              address_selection_case)
from ..testbed.runner import ResultSet, RunRecord, TestRunner
from ..testbed.store import CacheStats, CampaignStore
from ..webtool.campaign import CampaignResult
from ..webtool.report import ConsistencyMark, classify_consistency

# --------------------------------------------------------------------------
# Table 1 — parameter comparison across HE versions
# --------------------------------------------------------------------------


def table1_parameters() -> "Tuple[List[str], List[List[str]]]":
    """Parameters of HEv1/HEv2/HEv3 (headers, rows), from the presets."""
    v1, v2, v3 = RFC_PARAMETER_SETS
    headers = ["Parameter", "HEv1 (2012)", "HEv2 (2017)",
               "HEv3 (2025-ongoing)"]

    def rd(params: HEParams) -> str:
        if (params.resolution_delay is None
                or params.resolution_policy.name != "HE_V2"):
            return "-"
        return f"{params.resolution_delay * 1000:.0f} ms"

    def protocols(params: HEParams) -> str:
        base = "IPv4, IPv6"
        if params.version.name != "V1":
            base += ", DNS"
        if params.race_quic:
            base += ", QUIC"
        return base

    def records(params: HEParams) -> str:
        if params.version.name == "V1":
            return "-"
        if params.use_svcb:
            return "SVCB, HTTPS, AAAA, A"
        return "AAAA, A"

    def selection(params: HEParams) -> str:
        if params.interlace.name == "SEQUENTIAL":
            return "IPv6 once, then IPv4"
        if params.race_quic:
            return "alternating IP family and L4 protocol"
        return "alternating IP family"

    def fixed_cad(params: HEParams) -> str:
        if params.version.name == "V1":
            return "150-250 ms"
        return f"{params.connection_attempt_delay * 1000:.0f} ms"

    def dynamic_bounds(params: HEParams) -> str:
        if params.version.name == "V1":
            return "-"
        return (f"{params.minimum_cad * 1000:.0f} ms / "
                f"{params.recommended_cad * 1000:.0f} ms / "
                f"{params.maximum_cad:.0f} s")

    rows = []
    for label, fn in [("Considered protocols", protocols),
                      ("DNS Records", records),
                      ("Resolution Delay", rd),
                      ("Address selection", selection),
                      ("Fixed Conn. Attempt Delay", fixed_cad),
                      ("Min/Rec./Max when dynamic", dynamic_bounds)]:
        rows.append([label, fn(v1), fn(v2), fn(v3)])
    return headers, rows


# --------------------------------------------------------------------------
# Table 2 — HE feature evaluation of client applications
# --------------------------------------------------------------------------


@dataclass
class Table2Row:
    """One client's measured feature set."""

    client: str
    prefers_ipv6: Optional[bool] = None
    cad_implemented: Optional[bool] = None
    cad_value_ms: Optional[float] = None
    aaaa_first: Optional[bool] = None
    rd_implemented: Optional[bool] = None
    rd_value_ms: Optional[float] = None
    ipv4_addresses_used: Optional[int] = None
    ipv6_addresses_used: Optional[int] = None
    address_selection: Optional[bool] = None
    consistency: ConsistencyMark = ConsistencyMark.NOT_TESTED


#: Sweep for the Table 2 CAD probe: coarse, but reaching past Safari's 2 s.
_TABLE2_CAD_SWEEP = SweepSpec.fixed(0, 150, 250, 350, 400, 1000, 2500)


def table2_local_runner(profile: ClientProfile, seed: int = 0,
                        store: Optional[CampaignStore] = None
                        ) -> TestRunner:
    """The per-client local campaign behind Table 2 (shared by the
    feature evaluation and ``repro cache gc``'s key planning)."""
    cad_case_config = TestCaseConfig(
        name="t2-cad", kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
        sweep=_TABLE2_CAD_SWEEP)
    rd_case_config = TestCaseConfig(
        name="t2-rd", kind=TestCaseKind.RESOLUTION_DELAY,
        sweep=SweepSpec.fixed(1500))
    selection_case = address_selection_case()
    return TestRunner([profile],
                      [cad_case_config, rd_case_config, selection_case],
                      seed=seed, resolver_timeout=3.0, store=store)


def evaluate_client_features(profile: ClientProfile, seed: int = 0,
                             store: Optional[CampaignStore] = None
                             ) -> Table2Row:
    """Run the local test cases of §4.1 against one client.

    Consumes the runner's streaming interface: records are folded into
    the row as they arrive (only the single RD and address-selection
    records are kept), so the campaign never materializes a record
    list.  ``store`` replays unchanged runs from the campaign cache.
    """
    row = Table2Row(client=profile.full_name)
    if not profile.supports_local_tests:
        return row

    runner = table2_local_runner(profile, seed=seed, store=store)

    zero_run: Optional[RunRecord] = None
    fallback_seen = False
    cads: List[float] = []
    rd_run: Optional[RunRecord] = None
    selection_run: Optional[RunRecord] = None
    for record in runner.stream():
        if record.case == "t2-cad":
            if record.value_ms == 0 and zero_run is None:
                zero_run = record
            if record.winning_family is Family.V4:
                fallback_seen = True
            if record.cad_s is not None:
                cads.append(record.cad_s)
        elif record.case == "t2-rd" and rd_run is None:
            rd_run = record
        elif record.case == "address-selection" and selection_run is None:
            selection_run = record
    assert zero_run is not None and rd_run is not None
    assert selection_run is not None

    row.prefers_ipv6 = zero_run.winning_family is Family.V6
    row.aaaa_first = zero_run.aaaa_first
    row.cad_implemented = fallback_seen
    if cads and row.cad_implemented:
        from statistics import median

        row.cad_value_ms = median(cads) * 1000.0

    # RD implemented: the IPv4 attempt starts well before the delayed
    # AAAA answer (1.5 s) would arrive.
    if rd_run.rd_s is not None:
        row.rd_implemented = rd_run.rd_s < 0.500
        if row.rd_implemented:
            row.rd_value_ms = rd_run.rd_s * 1000.0
    else:
        row.rd_implemented = False

    row.ipv6_addresses_used = selection_run.attempts_v6
    row.ipv4_addresses_used = selection_run.attempts_v4 or None
    # "Address selection" means more than HEv1's single fallback pair.
    row.address_selection = (selection_run.attempts_v6 > 1
                             or selection_run.attempts_v4 > 1)
    return row


def _evaluate_features_task(
        payload: "Tuple[ClientProfile, int, Optional[CampaignStore]]"
        ) -> "Tuple[Table2Row, Optional[CacheStats]]":
    """Process-pool entry point: evaluate one client's feature row.

    Returns the row plus the task-local cache counters, so the parent
    can fold worker stats into the campaign total.
    """
    profile, seed, store = payload
    row = evaluate_client_features(profile, seed=seed, store=store)
    return row, (store.stats if store is not None else None)


def table2_features(seed: int = 0,
                    web_campaign: Optional[CampaignResult] = None,
                    clients: Optional[Sequence[ClientProfile]] = None,
                    workers: Optional[int] = None,
                    store: Optional[CampaignStore] = None
                    ) -> List[Table2Row]:
    """The full Table 2: local features + web consistency validation.

    ``workers=N`` evaluates the client profiles over N processes; rows
    are identical to the serial path (each profile's campaign is fully
    seeded by its own coordinates) and stay in profile order.
    """
    rows: List[Table2Row] = []
    profiles = list(clients) if clients is not None else table2_clients()
    aggregates = (web_campaign.by_browser() if web_campaign is not None
                  else {})
    # Each task gets a fresh store handle on the same directory: its
    # counters start at zero, so the parent can merge them whether the
    # task ran in-process or in a pool worker.
    payloads = [(profile, seed,
                 CampaignStore(store.root) if store is not None else None)
                for profile in profiles]
    base_rows = []
    for row, stats in map_maybe_parallel(_evaluate_features_task,
                                         payloads, workers):
        base_rows.append(row)
        if store is not None and stats is not None:
            store.stats.merge(stats)
    for profile, row in zip(profiles, base_rows):
        if not profile.supports_local_tests:
            # Mobile rows: engine-level knowledge only (footnote 1).
            row.prefers_ipv6 = True
            row.cad_implemented = profile.implements_happy_eyeballs
            row.aaaa_first = profile.query_first.name == "AAAA"
            row.rd_implemented = profile.implements_resolution_delay
        aggregate = aggregates.get(_browser_key(profile))
        # Consistency compares web against local results, so it needs
        # both methods (mobile browsers get "-", like the paper).
        if (aggregate is not None and profile.supports_web_tests
                and profile.supports_local_tests):
            local_cad = (row.cad_value_ms if row.cad_value_ms is not None
                         else (2000.0 if profile.params.dynamic_cad
                               else None))
            row.consistency = classify_consistency(aggregate, local_cad)
        rows.append(row)
    return rows


def _browser_key(profile: ClientProfile) -> str:
    if profile.name in ("Mobile Safari", "Chrome Mobile",
                        "Firefox Mobile", "Samsung Internet"):
        return profile.name
    return profile.name.split(" ")[0]


def render_table2(rows: List[Table2Row]) -> str:
    from .render import render_mark, render_table

    headers = ["Client", "Prefers IPv6", "CAD Impl.", "AAAA first",
               "RD Impl.", "IPv4 Addrs.", "IPv6 Addrs.", "Addr. Sel.",
               "Consistency"]
    body = []
    for row in rows:
        body.append([
            row.client,
            render_mark(row.prefers_ipv6),
            render_mark(row.cad_implemented),
            render_mark(row.aaaa_first),
            render_mark(row.rd_implemented),
            row.ipv4_addresses_used,
            row.ipv6_addresses_used,
            render_mark(row.address_selection),
            row.consistency.symbol,
        ])
    return render_table(headers, body,
                        title="Table 2: HE feature evaluation")


# --------------------------------------------------------------------------
# Table 3 — resolver IPv6 usage at the authoritative name server
# --------------------------------------------------------------------------


@dataclass
class Table3Row:
    """One resolver service's behaviour as measured at our auth NS."""

    service: str
    aaaa_query: str
    ipv6_share: Optional[float]
    max_ipv6_delay_ms: Optional[int]
    ipv6_packets: Optional[int]
    campaign: Optional[ResolverCampaignResult] = None


#: Delay grid for the resolver sweep: hits every service's timeout.
RESOLVER_DELAY_GRID = [0, 25, 50, 100, 200, 250, 300, 376, 400, 500,
                       600, 800, 1000, 1250, 1500]


def _aaaa_mark_from_campaign(campaign: ResolverCampaignResult,
                             glue_plan_name: str) -> str:
    before_probe = [o.aaaa_before_probe for o in campaign.observations
                    if o.aaaa_before_probe is not None]
    before_a = [o.aaaa_before_a for o in campaign.observations
                if o.aaaa_before_a is not None]
    if glue_plan_name == "SINGLE":
        return "either A or AAAA, never both"
    if not before_probe:
        return "no AAAA query observed"
    if before_a and all(before_a):
        return "AAAA before A"
    if before_probe and all(before_probe):
        return "AAAA after A"
    return "AAAA after IPv4 use"


def _measure_resolver_subject(
        payload: "Tuple[str, object, int, int, int, List[int], "
                 "Optional[CampaignStore]]"
        ) -> "Tuple[Table3Row, Optional[CacheStats]]":
    """Share + shaped-delay campaigns for one resolver subject.

    Top-level so process pools can pickle it; each call builds its own
    testbeds, so subjects parallelize with no shared state.  Returns
    the row plus the task-local cache counters (like the Table 2
    tasks), so the parent can fold worker stats into the total.
    """
    from dataclasses import replace as dc_replace

    (name, behavior, seed, share_repetitions, delay_repetitions, grid,
     store) = payload
    share_campaign = run_resolver_campaign(
        behavior, delays_ms=[0], repetitions=share_repetitions,
        seed=seed, store=store)
    share = share_campaign.ipv6_share
    packets = share_campaign.max_v6_packets
    max_delay: Optional[int] = None
    if share and share > 0:
        forced = dc_replace(behavior, v6_preference=1.0)
        delay_campaign = run_resolver_campaign(
            forced, delays_ms=grid, repetitions=delay_repetitions,
            seed=seed + 1, store=store)
        packets = max(packets, delay_campaign.max_v6_packets)
        if not behavior.parallel_families:
            # Parallel-family services (DNS0.EU) make the fallback
            # delay unmeasurable — the paper's footnote 1.
            max_delay = delay_campaign.reliable_max_ipv6_delay_ms()
    row = Table3Row(
        service=name,
        aaaa_query=_aaaa_mark_from_campaign(
            share_campaign, behavior.glue_plan.name),
        ipv6_share=share,
        max_ipv6_delay_ms=max_delay,
        ipv6_packets=packets if packets else None,
        campaign=share_campaign)
    return row, (store.stats if store is not None else None)


def table3_resolvers(seed: int = 0, share_repetitions: int = 32,
                     delay_repetitions: int = 3,
                     delays_ms: Optional[List[int]] = None,
                     workers: Optional[int] = None,
                     store: Optional[CampaignStore] = None
                     ) -> List[Table3Row]:
    """Measure every local daemon and evaluated open service.

    Two campaigns per subject, mirroring the paper's methodology:

    * a *share* campaign (no shaping) measuring the AAAA-query pattern
      and how often IPv6 is chosen at the authoritative server;
    * a *delay* campaign over the shaped-delay grid with the IPv6
      address forced as first choice, measuring the reliable fallback
      point and the packet counts.

    ``workers=N`` measures subjects over N processes; every subject is
    seeded independently, so rows match the serial path exactly.
    ``store`` attaches the content-addressed campaign cache: resolver
    runs are keyed by (behaviour, seed, delay, repetition), so a
    re-render replays unchanged runs instead of re-executing them.
    """
    grid = [d for d in (delays_ms if delays_ms is not None
                        else RESOLVER_DELAY_GRID) if d > 0]
    subjects: List[Tuple[str, object]] = [
        (behavior.name, behavior) for behavior in LOCAL_RESOLVERS]
    subjects += [(service.service, service.behavior)
                 for service in evaluated_services()]
    # Fresh store handle per task (counters start at zero), so worker
    # stats merge into the campaign total like the Table 2 tasks.
    payloads = [(name, behavior, seed, share_repetitions,
                 delay_repetitions, grid,
                 CampaignStore(store.root) if store is not None else None)
                for name, behavior in subjects]
    rows: List[Table3Row] = []
    for row, stats in map_maybe_parallel(_measure_resolver_subject,
                                         payloads, workers):
        rows.append(row)
        if store is not None and stats is not None:
            store.stats.merge(stats)
    return rows


def table3_store_keys(seed: int = 0, share_repetitions: int = 32,
                      delay_repetitions: int = 3,
                      delays_ms: Optional[List[int]] = None
                      ) -> List[str]:
    """Every store key a Table 3 render may reference (cache gc).

    Conservative: the delay campaign only runs for subjects whose
    share campaign shows IPv6 use, but gc keeps both unconditionally —
    keeping an unreferenced key is harmless, dropping a referenced one
    forces a re-execution.
    """
    from dataclasses import replace as dc_replace

    from ..resolvers.testbed import resolver_campaign_keys

    grid = [d for d in (delays_ms if delays_ms is not None
                        else RESOLVER_DELAY_GRID) if d > 0]
    subjects = [behavior for behavior in LOCAL_RESOLVERS]
    subjects += [service.behavior for service in evaluated_services()]
    keys: List[str] = []
    for behavior in subjects:
        keys.extend(resolver_campaign_keys(
            behavior, [0], share_repetitions, seed))
        forced = dc_replace(behavior, v6_preference=1.0)
        keys.extend(resolver_campaign_keys(
            forced, grid, delay_repetitions, seed + 1))
    return keys


def render_table3(rows: List[Table3Row]) -> str:
    from .render import format_percent, render_table

    headers = ["Service", "AAAA Query", "IPv6 Share", "Max. IPv6 Delay",
               "# IPv6 Packets"]
    body = []
    for row in rows:
        body.append([
            row.service, row.aaaa_query,
            format_percent(row.ipv6_share),
            (f"{row.max_ipv6_delay_ms} ms"
             if row.max_ipv6_delay_ms is not None else None),
            row.ipv6_packets,
        ])
    return render_table(headers, body,
                        title="Table 3: resolver IPv6 usage")


# --------------------------------------------------------------------------
# Table 4 — open resolver inventory + capability probe
# --------------------------------------------------------------------------


@dataclass
class Table4Row:
    service: str
    v4_addresses: int
    v6_addresses: int
    ipv6_only_capable: bool


def table4_inventory(seed: int = 0, probe: bool = True) -> List[Table4Row]:
    """The tested services, with the IPv6-only delegation probe run.

    Services the paper flags as incapable are modeled with an
    IPv4-only resolution backend, which the probe then discovers.
    """
    rows: List[Table4Row] = []
    for service in OPEN_RESOLVERS:
        if probe:
            capable = probe_ipv6_only_capability(
                service.behavior,
                dual_stack_resolver=service.supports_ipv6_only_resolution,
                seed=seed)
        else:
            capable = service.supports_ipv6_only_resolution
        rows.append(Table4Row(service=service.service,
                              v4_addresses=service.v4_addresses,
                              v6_addresses=service.v6_addresses,
                              ipv6_only_capable=capable))
    return rows


def render_table4(rows: List[Table4Row]) -> str:
    from .render import render_table

    headers = ["Service", "# IPv4 Addrs.", "# IPv6 Addrs.",
               "IPv6-only capable"]
    body = [[row.service, row.v4_addresses, row.v6_addresses,
             "yes" if row.ipv6_only_capable else "no"]
            for row in rows]
    return render_table(headers, body,
                        title="Table 4: tested recursive resolvers")


# --------------------------------------------------------------------------
# Table 5 — browser/OS web measurement matrix
# --------------------------------------------------------------------------


def table5_matrix(campaign: CampaignResult
                  ) -> "Tuple[List[str], List[List[str]]]":
    """OS/browser combinations covered by a web campaign."""
    combos: Dict[Tuple[str, str], int] = {}
    for session in campaign.sessions:
        key = (session.os_name, session.browser)
        combos[key] = combos.get(key, 0) + 1
    headers = ["OS", "Browser", "Sessions"]
    rows = [[os_name, browser, str(count)]
            for (os_name, browser), count in sorted(combos.items())]
    return headers, rows
