"""Deterministic fault plans: seeded chaos at the testbed seam.

Simulator-centric testing argues that faults should be injected
*compositionally* at the seam between the system under test and its
testbed, so the same battery validates both the system and its failure
handling.  A :class:`FaultPlan` is that seam for the campaign runtime:
a seeded, declarative description of which runs crash their worker,
which hang, and which store operations tear or error — all pure
functions of the plan seed and the run coordinates, so a chaos
campaign replays exactly (and its headline invariant is testable:
with retries enabled, a faulted campaign's records are byte-identical
to the fault-free run).

Two injection seams:

* **entry faults** (:meth:`FaultPlan.entry_fault`) fire where a run
  executes — :data:`FaultKind.WORKER_CRASH` kills the worker process
  mid-run (serial execution simulates the crash as a raised
  :class:`InjectedFault`, since killing the parent would be the
  campaign abort we are defending against), and
  :data:`FaultKind.ENTRY_HANG` wedges the entry longer than the
  per-entry watchdog allows.  Targeting is per ``(coords, attempt)``:
  a spec with ``attempts=1`` fires on the first attempt only, so a
  retrying campaign heals deterministically.
* **store faults** (:meth:`FaultPlan.store_fault`) fire inside
  :class:`~repro.testbed.store.CampaignStore` —
  :data:`FaultKind.CORRUPT_WRITE` / :data:`FaultKind.PARTIAL_WRITE`
  tear an entry on disk (the *next* campaign must quarantine and
  re-execute it), and :data:`FaultKind.IO_ERROR` raises a transient
  ``OSError`` on reads.  Store faults happen parent-side only (the
  parent is the single store writer), so a per-key occurrence counter
  is deterministic: each targeted key faults ``attempts`` times, then
  heals.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..seeding import SeedPart, stable_unit


class FaultKind(enum.Enum):
    """The injectable fault vocabulary."""

    #: Kill the worker process mid-entry (``BrokenProcessPool`` in the
    #: parent); serial execution raises :class:`InjectedFault` instead.
    WORKER_CRASH = "crash"
    #: Wedge the entry (sleep ``hang_s``, then fail) — exercises the
    #: per-entry watchdog, or degrades to a slow transient failure.
    ENTRY_HANG = "hang"
    #: Replace an entry write with truncated garbage bytes.
    CORRUPT_WRITE = "corrupt"
    #: Write the entry without its completeness marker (a torn write).
    PARTIAL_WRITE = "partial"
    #: Raise a transient ``OSError`` on an entry read or write.
    IO_ERROR = "io-error"


#: Kinds injected at the run-execution seam.
ENTRY_KINDS = frozenset({FaultKind.WORKER_CRASH, FaultKind.ENTRY_HANG})
#: Kinds injected inside the campaign store.
STORE_KINDS = frozenset({FaultKind.CORRUPT_WRITE, FaultKind.PARTIAL_WRITE,
                         FaultKind.IO_ERROR})
#: Store kinds that fire on writes (the rest fire on reads).
WRITE_KINDS = frozenset({FaultKind.CORRUPT_WRITE, FaultKind.PARTIAL_WRITE})


class InjectedFault(RuntimeError):
    """A fault fired by a :class:`FaultPlan` (always transient: the
    retry machinery treats it exactly like a real harness failure)."""


class FaultPlanError(ValueError):
    """A fault-plan specification is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault stream within a plan."""

    kind: FaultKind
    #: Fraction of coordinates targeted (deterministic per-coordinate
    #: draw, not a global quota).
    rate: float = 0.25
    #: Entry faults fire while ``attempt < attempts``; store faults
    #: fire on the first ``attempts`` occurrences per key.  A plan is
    #: *recoverable* when every spec's ``attempts`` <= the campaign's
    #: retry budget.
    attempts: int = 1
    #: How long an injected hang wedges the entry, in seconds.
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"rate must be in [0, 1]: {self.rate}")
        if self.attempts < 1:
            raise FaultPlanError(f"attempts must be >= 1: {self.attempts}")
        if self.hang_s < 0:
            raise FaultPlanError(f"hang_s must be >= 0: {self.hang_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault streams, consulted at the two seams.

    Frozen so it travels by value (pickled into pool workers alongside
    the runner); the store-occurrence counter is deliberately excluded
    from equality and only meaningful parent-side, where all store
    traffic happens.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()
    #: Parent-side occurrence counters for store faults, keyed by
    #: ``(kind, key)`` — mutation on a frozen dataclass is fine for a
    #: dict field, and worker copies never consult it.
    _occurrences: Dict[Tuple[FaultKind, str], int] = field(
        default_factory=dict, compare=False, repr=False)

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``kind[:rate[:attempts[:hang_s]]]`` streams, comma
        separated — e.g. ``"crash:0.3,corrupt:0.5,hang:0.2:1:0.4"``.
        """
        specs = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields = chunk.split(":")
            try:
                kind = FaultKind(fields[0].strip())
            except ValueError as exc:
                valid = sorted(k.value for k in FaultKind)
                raise FaultPlanError(
                    f"unknown fault kind {fields[0]!r} "
                    f"(valid: {valid})") from exc
            if len(fields) > 4:
                raise FaultPlanError(
                    f"too many fields in fault spec {chunk!r} "
                    "(kind[:rate[:attempts[:hang_s]]])")
            try:
                spec = FaultSpec(
                    kind=kind,
                    rate=float(fields[1]) if len(fields) > 1 else 0.25,
                    attempts=int(fields[2]) if len(fields) > 2 else 1,
                    hang_s=float(fields[3]) if len(fields) > 3 else 0.25)
            except ValueError as exc:
                raise FaultPlanError(
                    f"bad fault spec {chunk!r}: {exc}") from exc
            specs.append(spec)
        if not specs:
            raise FaultPlanError(f"empty fault plan: {text!r}")
        return cls(seed=seed, specs=tuple(specs))

    # -- targeting -------------------------------------------------------------

    def targets(self, spec: FaultSpec, *coords: SeedPart) -> bool:
        """Whether ``spec`` targets ``coords`` — a pure function of the
        plan seed, the spec kind, and the coordinates, so serial and
        parallel execution (and every replay) agree exactly."""
        return stable_unit(self.seed, spec.kind.value, *coords) < spec.rate

    def entry_fault(self, coords: "Sequence[SeedPart]",
                    attempt: int) -> Optional[FaultSpec]:
        """The entry fault to inject for ``coords`` at ``attempt``, or
        None.  Bounded per coordinate: once ``attempt`` reaches the
        spec's ``attempts`` the stream is exhausted and the entry runs
        clean — which is what makes a retrying campaign heal."""
        for spec in self.specs:
            if (spec.kind in ENTRY_KINDS and attempt < spec.attempts
                    and self.targets(spec, *coords)):
                return spec
        return None

    def store_fault(self, op: str, key: str) -> Optional[FaultSpec]:
        """The store fault to inject for this ``op`` (``"read"`` or
        ``"write"``) on ``key``, or None.  Consumes one occurrence:
        each targeted key faults ``attempts`` times, then heals."""
        for spec in self.specs:
            if spec.kind not in STORE_KINDS:
                continue
            # Torn writes fire on writes only; io-error is transient
            # I/O and can hit either side of the store.
            if op == "write" and not (spec.kind in WRITE_KINDS
                                      or spec.kind is FaultKind.IO_ERROR):
                continue
            if op == "read" and spec.kind in WRITE_KINDS:
                continue
            if not self.targets(spec, key):
                continue
            slot = (spec.kind, key)
            seen = self._occurrences.get(slot, 0)
            self._occurrences[slot] = seen + 1
            if seen < spec.attempts:
                return spec
        return None


def inject_entry_fault(spec: FaultSpec, in_worker: bool) -> None:
    """Fire an entry fault at the execution seam.

    ``in_worker`` distinguishes a pool worker (where a crash really
    kills the process, producing a genuine ``BrokenProcessPool``
    parent-side) from in-process serial execution (where the crash is
    simulated as a raised :class:`InjectedFault` — killing the parent
    would abort the campaign, which is exactly the failure mode the
    resilient runtime exists to prevent).
    """
    if spec.kind is FaultKind.ENTRY_HANG:
        time.sleep(spec.hang_s)
        raise InjectedFault(
            f"injected entry hang ({spec.hang_s:.3f}s)")
    if spec.kind is FaultKind.WORKER_CRASH:
        if in_worker:
            import os

            os._exit(70)  # hard kill: no atexit, no cleanup, no mercy
        raise InjectedFault("injected worker crash (serial simulation)")
    raise FaultPlanError(
        f"{spec.kind} is not an entry fault")  # pragma: no cover
