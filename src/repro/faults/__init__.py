"""Deterministic fault injection for the campaign runtime.

See :mod:`repro.faults.plan` for the model.  The package exists so
chaos tooling (CLI ``--fault-plan``, spec ``faults`` stanzas, the
robustness battery) shares one vocabulary of injectable faults.
"""

from .plan import (ENTRY_KINDS, STORE_KINDS, WRITE_KINDS, FaultKind,
                   FaultPlan, FaultPlanError, FaultSpec, InjectedFault,
                   inject_entry_fault)

__all__ = [
    "ENTRY_KINDS", "STORE_KINDS", "WRITE_KINDS", "FaultKind", "FaultPlan",
    "FaultPlanError", "FaultSpec", "InjectedFault", "inject_entry_fault",
]
