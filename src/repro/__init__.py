"""Lazy Eye Inspection — a Happy Eyeballs measurement framework.

Reproduction of Sattler et al., "Lazy Eye Inspection: Capturing the
State of Happy Eyeballs Implementations" (ACM IMC 2025) as a complete
Python library:

* :mod:`repro.core` — the HE algorithms (RFC 6555, RFC 8305, HEv3 draft),
* :mod:`repro.simnet` / :mod:`repro.transport` / :mod:`repro.dns` — the
  simulated substrate (network, TCP/UDP/QUIC, full DNS),
* :mod:`repro.clients` / :mod:`repro.resolvers` — behavioral models of
  every measured client and resolver,
* :mod:`repro.testbed` / :mod:`repro.webtool` — the paper's two
  measurement setups,
* :mod:`repro.analysis` — table/figure regeneration,
* :mod:`repro.experiments` — the unified Experiment API: every
  artifact as a registered plan/execute/render experiment behind one
  Session.
"""

__version__ = "1.6.0"

__all__ = [
    "analysis", "clients", "conformance", "core", "dns", "experiments",
    "resolvers", "simnet", "testbed", "transport", "webtool",
]
