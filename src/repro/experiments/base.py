"""The Experiment API: Session, Knob, Artifact, Experiment.

Every artifact the reproduction can produce — the paper's tables and
figures, the conformance battery, diagnostic traces — is an
:class:`Experiment`: a named, registered object with three separable
phases:

* :meth:`Experiment.plan` — the content address of every campaign run
  the experiment would reference, **without executing anything**.
  ``repro cache gc`` marks the union of all registered plans as live,
  so a newly registered experiment can never be silently collected,
  and warm runs can resolve the whole key universe in one batch
  (:meth:`~repro.testbed.store.CampaignStore.get_many`).
* :meth:`Experiment.execute` — run the measurement and return a
  result object (pure data, no I/O besides the campaign store).
* :meth:`Experiment.render` — turn a result into an :class:`Artifact`
  (text, optionally with a machine-readable JSON form).

A single :class:`Session` carries everything an invocation shares —
seed, worker count, campaign store, and the experiment's knob values —
replacing the per-command ``(seed, workers, cache_dir)`` threading the
CLI used to hand-wire.  The session also owns cache-summary reporting,
so worker-merged store counters are printed exactly once per
invocation instead of being copy-pasted into every command.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, Mapping, Optional,
                    Tuple)

from ..testbed.resilience import Resilience
from ..testbed.store import CampaignStore


@dataclass(frozen=True)
class Knob:
    """One declared experiment parameter, CLI-mappable.

    Knobs are the single source of truth for an experiment's options:
    the generic ``repro run <name>`` verb *and* the legacy command
    alias both generate their argparse arguments from the same
    declarations, which is what keeps them flag-compatible and
    byte-identical.
    """

    name: str
    type: Callable[[str], Any] = int
    default: Any = None
    help: str = ""
    #: ``store_true`` boolean switch (``--no-web`` style).
    flag: bool = False
    #: Positional argument (``repro fingerprint <client>`` style).
    positional: bool = False
    metavar: Optional[str] = None

    @property
    def option(self) -> str:
        """The CLI spelling: ``delay_ms`` → ``--delay-ms``."""
        return "--" + self.name.replace("_", "-")

    def add_to_parser(self, parser, required: bool = False) -> None:
        """Materialize this knob on an argparse parser."""
        if self.positional:
            if required:
                parser.add_argument(self.name, help=self.help,
                                    metavar=self.metavar or self.name)
            else:
                parser.add_argument(self.name, nargs="?",
                                    default=self.default, help=self.help,
                                    metavar=self.metavar or self.name)
        elif self.flag:
            parser.add_argument(self.option, dest=self.name,
                                action="store_true", help=self.help)
        else:
            parser.add_argument(self.option, dest=self.name,
                                type=self.type, default=self.default,
                                help=self.help, metavar=self.metavar)


@dataclass
class Artifact:
    """What an experiment renders: text, plus an optional JSON form."""

    text: str
    #: JSON-serializable machine-readable form, or None when the
    #: experiment has no meaningful one (``--json`` then falls back
    #: to the text rendering).
    data: Any = None

    def json_text(self, indent: int = 2) -> str:
        """Deterministic JSON (sorted keys — byte-identical across
        serial, parallel, and warm-cache invocations)."""
        return json.dumps(self.data, indent=indent, sort_keys=True)


@dataclass
class Session:
    """Everything one experiment invocation shares.

    Replaces the per-command ``(seed, workers, cache_dir)`` threading:
    experiments read their inputs from here, and the CLI (or any other
    host — tests, notebooks, batch drivers) builds exactly one Session
    per invocation.
    """

    seed: int = 0
    workers: Optional[int] = None
    store: Optional[CampaignStore] = None
    knobs: Dict[str, Any] = field(default_factory=dict)
    #: The fault-tolerant runtime bundle (retry policy, fault plan,
    #: campaign journal, resume mode) — None runs every campaign in
    #: the historical fail-fast mode.  Campaign experiments thread
    #: this into their :class:`~repro.testbed.runner.TestRunner`.
    resilience: Optional[Resilience] = None

    def knob(self, name: str, default: Any = None) -> Any:
        """The invocation's value for ``name``, else ``default``.

        ``None`` stored under a knob (an argparse default that was
        never overridden) also falls back — so experiment defaults
        hold unless the caller actually set something.
        """
        value = self.knobs.get(name)
        return default if value is None else value

    def with_knobs(self, **overrides: Any) -> "Session":
        """A session sharing seed/workers/store with knobs replaced —
        how ``repro cache gc`` plans every experiment at its own
        defaults (plus targeted overrides) against one store."""
        return Session(seed=self.seed, workers=self.workers,
                       store=self.store, knobs=dict(overrides),
                       resilience=self.resilience)

    def cache_line(self) -> Optional[str]:
        """The one-per-invocation ``[cache]`` summary, or None.

        Worker handles merge their counters into ``store.stats``
        inside the campaign helpers; this is the single place the
        merged totals get rendered.  A session whose store was never
        touched (e.g. ``conformance --list``) reports nothing, so
        pure commands stay byte-identical with and without a
        configured cache directory.
        """
        store = self.store
        if store is None:
            return None
        if store.stats.lookups == 0 and store.stats.stores == 0:
            return None
        return f"[cache] {store.stats.summary()} root={store.root}"

    def fault_line(self) -> Optional[str]:
        """The one-per-invocation ``[faults]`` summary, or None.

        Printed only when resilience was *explicitly* requested (a
        retry/timeout/fault-plan/resume flag) and the runtime actually
        observed something — a plain cached run stays byte-identical
        to its pre-resilience output.
        """
        res = self.resilience
        if res is None or not res.explicit or not res.manifest.touched:
            return None
        return f"[faults] {res.manifest.summary()}"

    def fault_detail_lines(self) -> "list[str]":
        """Per-failure detail lines for graceful degradation (empty
        when every entry completed)."""
        res = self.resilience
        if res is None or not res.explicit:
            return []
        return res.manifest.failure_lines()


class Experiment:
    """Base class: one registered, enumerable, runnable artifact.

    Subclasses declare metadata as class attributes and implement
    :meth:`execute` / :meth:`render`; :meth:`plan` defaults to an
    empty plan (pure experiments reference no campaign store keys).
    """

    #: Registry name (also the ``repro run <name>`` spelling).
    name: str = ""
    #: One-line description (CLI help and ``repro ls``).
    title: str = ""
    #: Where in the paper (or RFC) this artifact comes from.
    paper: str = ""
    #: Declared parameters, in CLI order.
    knobs: Tuple[Knob, ...] = ()
    #: Whether render() produces a machine-readable Artifact.data.
    json_capable: bool = False

    def default_knobs(self) -> Dict[str, Any]:
        return {knob.name: knob.default for knob in self.knobs}

    # -- the three phases ------------------------------------------------------

    def plan(self, session: Session) -> Iterator[str]:
        """Every store key this experiment's campaigns would
        reference under ``session`` — pure, no execution."""
        return iter(())

    def execute(self, session: Session) -> Any:
        raise NotImplementedError

    def render(self, result: Any) -> Artifact:
        raise NotImplementedError

    # -- conveniences ----------------------------------------------------------

    def run(self, session: Session) -> Artifact:
        """execute + render in one call (the common host path)."""
        return self.render(self.execute(session))

    def planned_keys(self, session: Session) -> int:
        """Distinct planned keys under ``session`` (``repro ls``)."""
        return len(set(self.plan(session)))

    def sample_space(self, session: Session
                     ) -> "Optional[Tuple[int, str]]":
        """``(sample-space size, distribution digest)`` for
        sample-indexed experiments (the population family), None for
        experiments that enumerate fixed configurations.  ``repro ls``
        renders this next to the planned-key count."""
        return None


def knob_mapping(experiment: Experiment,
                 values: Mapping[str, Any]) -> Dict[str, Any]:
    """The experiment's declared knobs resolved against ``values``
    (undeclared names in ``values`` are ignored)."""
    resolved = experiment.default_knobs()
    for name in resolved:
        if name in values and values[name] is not None:
            resolved[name] = values[name]
    return resolved
