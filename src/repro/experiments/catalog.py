"""The registered experiment catalogue: every artifact, one registry.

Each entry ports one former hand-wired CLI command onto the
:class:`~repro.experiments.base.Experiment` contract — declared knobs,
a pure :meth:`plan`, an :meth:`execute` producing data, a
:meth:`render` producing the byte-identical artifact text the old
command printed.  Heavy modules import *inside* the phase methods, so
building the catalogue (parser construction, ``repro ls``) stays as
light as the old lazy-importing CLI.

Adding a scenario to the framework is now one subclass + one
:func:`~repro.experiments.registry.register` call: the CLI verbs
(``repro ls``, ``repro run``), key planning, and ``repro cache gc``
liveness all pick it up from the registry with no plumbing changes.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from .base import Artifact, Experiment, Knob, Session
from .registry import register

#: The UA combinations the Table 2 web-validation campaign visits
#: (planned by the table2 experiment, kept live by ``repro cache gc``).
TABLE2_WEB_ENTRIES = (
    ("Linux", "", "Chrome", "130.0.0"),
    ("Linux", "", "Chromium", "130.0.0"),
    ("Windows", "10", "Edge", "130.0.0"),
    ("Linux", "", "Firefox", "132.0"),
    ("Mac OS X", "10.15.7", "Safari", "17.6"),
)

#: The client/version rows of the Figure 5 rendering.
FIGURE5_CLIENTS = (
    ("wget", "1.21.3"), ("curl", "7.88.1"), ("Safari", "17.6"),
    ("Firefox", "132.0"), ("Edge", "130.0"), ("Chromium", "130.0"),
    ("Chrome", "130.0"))


# --------------------------------------------------------------------------
# tables
# --------------------------------------------------------------------------


class Table1Experiment(Experiment):
    name = "table1"
    title = "HE parameter comparison across versions"
    paper = "Table 1"
    json_capable = True

    def execute(self, session: Session) -> Any:
        from ..analysis import table1_parameters

        return table1_parameters()

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_table

        headers, rows = result
        return Artifact(
            text=render_table(headers, rows,
                              title="Table 1: HE parameters across "
                                    "versions"),
            data={"headers": headers, "rows": rows})


class Table2Experiment(Experiment):
    name = "table2"
    title = "client HE feature matrix"
    paper = "Table 2"
    knobs = (
        Knob("repetitions", type=int, default=10,
             help="web-validation sessions per UA entry"),
        Knob("no_web", flag=True, default=False,
             help="skip the web-validation campaign"),
    )

    def execute(self, session: Session) -> Any:
        from ..analysis import table2_features
        from ..webtool import UAEntry, WebCampaign

        web = None
        if not session.knob("no_web", False):
            campaign = WebCampaign(
                seed=session.seed + 1,
                repetitions=session.knob("repetitions", 10))
            web = campaign.run(
                entries=tuple(UAEntry(*entry)
                              for entry in TABLE2_WEB_ENTRIES),
                workers=session.workers, store=session.store)
        return table2_features(seed=session.seed, web_campaign=web,
                               workers=session.workers,
                               store=session.store)

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_table2

        return Artifact(text=render_table2(result))

    def plan(self, session: Session) -> Iterator[str]:
        from ..analysis import table2_local_runner
        from ..clients.registry import table2_clients
        from ..webtool import UAEntry, WebCampaign

        for profile in table2_clients():
            if profile.supports_local_tests:
                yield from table2_local_runner(
                    profile, seed=session.seed).store_keys()
        yield from WebCampaign(
            seed=session.seed + 1,
            repetitions=session.knob("repetitions", 10)).store_keys(
                tuple(UAEntry(*entry) for entry in TABLE2_WEB_ENTRIES))


class Table3Experiment(Experiment):
    name = "table3"
    title = "resolver IPv6 usage"
    paper = "Table 3"
    knobs = (Knob("repetitions", type=int, default=160,
                  help="share-campaign repetitions per resolver"),)

    def _repetitions(self, session: Session) -> "tuple":
        share = session.knob("repetitions", 160)
        return share, max(3, share // 20)

    def execute(self, session: Session) -> Any:
        from ..analysis import table3_resolvers

        share, delay = self._repetitions(session)
        return table3_resolvers(seed=session.seed,
                                share_repetitions=share,
                                delay_repetitions=delay,
                                workers=session.workers,
                                store=session.store)

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_table3

        return Artifact(text=render_table3(result))

    def plan(self, session: Session) -> Iterator[str]:
        from ..analysis import table3_store_keys

        share, delay = self._repetitions(session)
        return iter(table3_store_keys(seed=session.seed,
                                      share_repetitions=share,
                                      delay_repetitions=delay))


class Table4Experiment(Experiment):
    name = "table4"
    title = "open resolver inventory"
    paper = "Table 4"

    def execute(self, session: Session) -> Any:
        from ..analysis import table4_inventory

        return table4_inventory(seed=session.seed)

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_table4

        return Artifact(text=render_table4(result))


class Table5Experiment(Experiment):
    name = "table5"
    title = "web campaign UA matrix"
    paper = "Table 5"
    knobs = (Knob("repetitions", type=int, default=5,
                  help="sessions per OS/browser combination"),)

    def execute(self, session: Session) -> Any:
        from ..webtool import TABLE5_MATRIX, WebCampaign

        campaign = WebCampaign(seed=session.seed,
                               repetitions=session.knob("repetitions", 5))
        return campaign.run(entries=TABLE5_MATRIX,
                            workers=session.workers, store=session.store)

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_table, table5_matrix

        headers, rows = table5_matrix(result)
        table = render_table(headers, rows,
                             title="Table 5: web-measured OS/browser "
                                   "matrix")
        return Artifact(
            text=(f"{table}\n\n{len(result)} sessions, "
                  f"{result.combinations()} OS/browser combinations"))

    def plan(self, session: Session) -> Iterator[str]:
        from ..webtool import TABLE5_MATRIX, WebCampaign

        return iter(WebCampaign(
            seed=session.seed,
            repetitions=session.knob("repetitions", 5))
            .store_keys(TABLE5_MATRIX))


# --------------------------------------------------------------------------
# figures
# --------------------------------------------------------------------------


class Figure2Experiment(Experiment):
    name = "figure2"
    title = "CAD sweep per client version"
    paper = "Figure 2"
    knobs = (
        Knob("step", type=int, default=25,
             help="delay step in ms (paper: 5)"),
        Knob("stop", type=int, default=400,
             help="sweep upper bound in ms"),
    )

    def execute(self, session: Session) -> Any:
        from ..analysis import figure2_sweep

        return figure2_sweep(step_ms=session.knob("step", 25),
                             stop_ms=session.knob("stop", 400),
                             seed=session.seed, workers=session.workers,
                             store=session.store,
                             resilience=session.resilience)

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_figure2

        return Artifact(text=render_figure2(result))

    def plan(self, session: Session) -> Iterator[str]:
        from ..analysis import figure2_runner
        from ..clients.registry import figure2_clients

        return figure2_runner(figure2_clients(),
                              step_ms=session.knob("step", 25),
                              stop_ms=session.knob("stop", 400),
                              seed=session.seed).store_keys()


class Figure4Experiment(Experiment):
    name = "figure4"
    title = "web tool ladders"
    paper = "Figure 4"

    def execute(self, session: Session) -> Any:
        from ..clients import get_profile
        from ..webtool import WebToolDeployment, WebToolSession

        deployment = WebToolDeployment(seed=session.seed)
        return [WebToolSession(deployment,
                               get_profile(name, version)).run()
                for name, version in (("Chrome", "130.0"),
                                      ("Safari", "17.6"))]

    def render(self, result: Any) -> Artifact:
        from ..webtool import render_session_ladder

        return Artifact(text="\n\n".join(render_session_ladder(session)
                                         for session in result) + "\n")


class Figure5Experiment(Experiment):
    name = "figure5"
    title = "address selection attempts"
    paper = "Figure 5"

    def _clients(self) -> List:
        from ..clients import get_profile

        return [get_profile(name, version)
                for name, version in FIGURE5_CLIENTS]

    def execute(self, session: Session) -> Any:
        from ..analysis import figure5_attempts

        return figure5_attempts(self._clients(), seed=session.seed,
                                workers=session.workers,
                                store=session.store,
                                resilience=session.resilience)

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_figure5

        return Artifact(text=render_figure5(result))

    def plan(self, session: Session) -> Iterator[str]:
        from ..analysis import figure5_runner

        return figure5_runner(self._clients(),
                              seed=session.seed).store_keys()


# --------------------------------------------------------------------------
# diagnostics
# --------------------------------------------------------------------------


class DelayedAExperiment(Experiment):
    name = "delayed-a"
    title = "the §5.2 delayed-A pathology"
    paper = "§5.2"

    def execute(self, session: Session) -> Any:
        from ..clients import Client, get_profile
        from ..dns import RdataType
        from ..testbed.topology import LocalTestbed

        rows = []
        for name, version, flag in (("Chrome", "130.0", False),
                                    ("Firefox", "132.0", False),
                                    ("Safari", "17.6", False),
                                    ("Chrome", "130.0", True)):
            testbed = LocalTestbed(seed=session.seed)
            testbed.set_dns_delay(RdataType.A, 2.0)
            client = Client(testbed.client, get_profile(name, version),
                            testbed.resolver_addresses[:1],
                            hev3_flag=flag)
            result = testbed.sim.run_until(
                client.fetch("www.he-test.example"))
            label = f"{name} {version}" + (" +HEv3 flag" if flag else "")
            rows.append((label, result.he.time_to_connect * 1000,
                         result.used_family.label))
        return rows

    def render(self, result: Any) -> Artifact:
        lines = [f"  {label:<26} connected after {ms:7.1f} ms via "
                 f"{family}" for label, ms, family in result]
        return Artifact(
            text="A record delayed 2 s; IPv6 and AAAA fully healthy:"
                 "\n\n" + "\n".join(lines))


class TraceExperiment(Experiment):
    name = "trace"
    title = "one HE run's event trace"
    paper = "App. Figure 3"
    knobs = (Knob("delay_ms", type=int, default=400,
                  help="configured IPv6 TCP delay in ms"),)

    def execute(self, session: Session) -> Any:
        from ..core import rfc8305_params
        from ..core.engine import HappyEyeballsEngine
        from ..dns.stub import StubResolver
        from ..testbed.topology import LocalTestbed

        testbed = LocalTestbed(seed=session.seed)
        testbed.delay_ipv6_tcp(session.knob("delay_ms", 400) / 1000.0)
        stub = StubResolver(testbed.client,
                            testbed.resolver_addresses[:1],
                            timeout=3600.0, retries=0)
        engine = HappyEyeballsEngine(testbed.client, stub,
                                     rfc8305_params())
        return testbed.sim.run_until(
            engine.connect("www.he-test.example"))

    def render(self, result: Any) -> Artifact:
        return Artifact(
            text=(f"{result.trace.render()}\n\nwinner: "
                  f"{result.winning_family.label}, time to connect "
                  f"{result.time_to_connect * 1000:.1f} ms"))


# --------------------------------------------------------------------------
# conformance
# --------------------------------------------------------------------------


def _fingerprint_profiles(selector: str) -> List:
    """Local-testbed profiles for a CLI selector, with the same error
    text the old ``repro fingerprint`` command produced."""
    from ..clients.registry import resolve_profiles

    try:
        profiles = resolve_profiles(selector)
    except KeyError as exc:
        raise SystemExit(str(exc))
    unsupported = [p.full_name for p in profiles
                   if not p.supports_local_tests]
    profiles = [p for p in profiles if p.supports_local_tests]
    if not profiles:
        raise SystemExit(
            f"{', '.join(unsupported)} cannot run on the local testbed "
            "(mobile browsers are web-tool only); nothing to fingerprint")
    return profiles


class FingerprintExperiment(Experiment):
    name = "fingerprint"
    title = "RFC 8305 fingerprint report for one client"
    paper = "§4.3, RFC 8305"
    json_capable = True
    knobs = (
        Knob("client", type=str, default="all", positional=True,
             help="client selector: 'Name version', 'Name' (latest), "
                  "or 'all'"),
        Knob("stop", type=int, default=400,
             help="CAD sweep upper bound in ms (default 400)"),
    )

    def execute(self, session: Session) -> Any:
        from ..conformance import fingerprint_client, scenario_battery

        battery = scenario_battery(stop_ms=session.knob("stop", 400))
        return [fingerprint_client(profile, seed=session.seed,
                                   store=session.store,
                                   workers=session.workers,
                                   battery=battery)
                for profile in _fingerprint_profiles(
                    session.knob("client", "all"))]

    def render(self, result: Any) -> Artifact:
        from ..conformance import fingerprint_to_dict, render_fingerprint

        return Artifact(
            text="\n\n".join(render_fingerprint(fp) for fp in result),
            data=[fingerprint_to_dict(fp) for fp in result])

    def plan(self, session: Session) -> Iterator[str]:
        from ..conformance import ConformanceProbe, scenario_battery

        battery = scenario_battery(stop_ms=session.knob("stop", 400))
        for profile in _fingerprint_profiles(
                session.knob("client", "all")):
            probe = ConformanceProbe(profile, seed=session.seed,
                                     store=session.store,
                                     battery=battery)
            yield from probe.store_keys()


class ConformanceExperiment(Experiment):
    name = "conformance"
    title = "conformance summary across every local-testbed client"
    paper = "§4.3, RFC 8305"
    json_capable = True
    knobs = (
        Knob("stop", type=int, default=400,
             help="CAD sweep upper bound in ms"),
        Knob("list", flag=True, default=False,
             help="print the scenario catalog and exit"),
    )

    def execute(self, session: Session) -> Any:
        from ..clients.registry import local_testbed_clients
        from ..conformance import fingerprint_client, scenario_battery

        battery = scenario_battery(stop_ms=session.knob("stop", 400))
        if session.knob("list", False):
            return {"catalog": battery}
        return {"fingerprints": [
            fingerprint_client(profile, seed=session.seed,
                               store=session.store,
                               workers=session.workers, battery=battery)
            for profile in local_testbed_clients()]}

    def render(self, result: Any) -> Artifact:
        from ..conformance import (fingerprint_to_dict,
                                   render_conformance_summary,
                                   render_scenario_catalog)

        if "catalog" in result:
            return Artifact(
                text=render_scenario_catalog(result["catalog"]))
        fingerprints = result["fingerprints"]
        return Artifact(
            text=render_conformance_summary(fingerprints),
            data=[fingerprint_to_dict(fp) for fp in fingerprints])

    def plan(self, session: Session) -> Iterator[str]:
        from ..clients.registry import local_testbed_clients
        from ..conformance import ConformanceProbe, scenario_battery

        battery = scenario_battery(stop_ms=session.knob("stop", 400))
        for profile in local_testbed_clients():
            probe = ConformanceProbe(profile, seed=session.seed,
                                     store=session.store,
                                     battery=battery)
            yield from probe.store_keys()


class StageBatteryExperiment(Experiment):
    """One policy-stage scenario battery across every local client.

    Base for the three batteries the staged client API lights up:
    subclasses pick the battery constructor; plan/execute/render ride
    the same probe + store machinery as the main conformance battery,
    so cold==warm byte-identity and gc liveness hold by construction.
    """

    json_capable = True
    battery_name = ""  # subclass: hev3 | svcb | sortlist

    def _battery(self):
        from .. import conformance

        return getattr(conformance, f"{self.battery_name}_battery")()

    def execute(self, session: Session) -> Any:
        from ..clients.registry import local_testbed_clients
        from ..conformance import fingerprint_client

        battery = self._battery()
        return {"battery": battery, "fingerprints": [
            fingerprint_client(profile, seed=session.seed,
                               store=session.store,
                               workers=session.workers, battery=battery)
            for profile in local_testbed_clients()]}

    def render(self, result: Any) -> Artifact:
        from ..conformance import fingerprint_to_dict, render_battery_summary

        return Artifact(
            text=render_battery_summary(self.title, result["fingerprints"],
                                        result["battery"]),
            data=[fingerprint_to_dict(fp)
                  for fp in result["fingerprints"]])

    def plan(self, session: Session) -> Iterator[str]:
        from ..clients.registry import local_testbed_clients
        from ..conformance import ConformanceProbe

        battery = self._battery()
        for profile in local_testbed_clients():
            probe = ConformanceProbe(profile, seed=session.seed,
                                     store=session.store, battery=battery)
            yield from probe.store_keys()


class HEv3BatteryExperiment(StageBatteryExperiment):
    name = "conformance-hev3"
    title = "HEv3/QUIC protocol-racing battery (racing stage)"
    paper = "HEv3 §2, §4"
    battery_name = "hev3"


class SvcbBatteryExperiment(StageBatteryExperiment):
    name = "conformance-svcb"
    title = "SVCB/HTTPS-record discovery battery (resolution stage)"
    paper = "HEv3 §3, RFC 9460"
    battery_name = "svcb"


class SortlistBatteryExperiment(StageBatteryExperiment):
    name = "conformance-sortlist"
    title = "per-OS RFC 6724 sortlist battery (sorting stage)"
    paper = "RFC 8305 §4, RFC 6724"
    battery_name = "sortlist"


class FingerprintDiffExperiment(Experiment):
    name = "fingerprint-diff"
    title = "what changed between two clients' fingerprints"
    paper = "§6 (longitudinal), RFC 8305"
    json_capable = True
    knobs = (
        Knob("client_a", type=str, default=None, positional=True,
             metavar="client-a",
             help="baseline client selector ('Name version')"),
        Knob("client_b", type=str, default=None, positional=True,
             metavar="client-b",
             help="comparison client selector ('Name version')"),
        Knob("stop", type=int, default=400,
             help="CAD sweep upper bound in ms"),
    )

    def _profiles(self, session: Session) -> List:
        selectors = (session.knob("client_a"), session.knob("client_b"))
        if not all(selectors):
            raise SystemExit(
                "fingerprint-diff needs two client selectors "
                "(e.g. repro fingerprint --diff 'Chrome 88.0' "
                "'Chrome 130.0')")
        profiles = []
        for selector in selectors:
            matches = _fingerprint_profiles(selector)
            if len(matches) != 1:
                raise SystemExit(
                    f"selector {selector!r} must match exactly one "
                    f"client, got {len(matches)}")
            profiles.append(matches[0])
        return profiles

    def execute(self, session: Session) -> Any:
        from ..conformance import (diff_fingerprints, fingerprint_client,
                                   scenario_battery)

        battery = scenario_battery(stop_ms=session.knob("stop", 400))
        first, second = [
            fingerprint_client(profile, seed=session.seed,
                               store=session.store,
                               workers=session.workers, battery=battery)
            for profile in self._profiles(session)]
        return diff_fingerprints(first, second)

    def render(self, result: Any) -> Artifact:
        from ..conformance import (fingerprint_diff_to_dict,
                                   render_fingerprint_diff)

        return Artifact(text=render_fingerprint_diff(result),
                        data=fingerprint_diff_to_dict(result))

    def plan(self, session: Session) -> Iterator[str]:
        from ..conformance import ConformanceProbe, scenario_battery

        if not (session.knob("client_a") and session.knob("client_b")):
            return  # no clients selected: nothing beyond other plans
        battery = scenario_battery(stop_ms=session.knob("stop", 400))
        for profile in self._profiles(session):
            probe = ConformanceProbe(profile, seed=session.seed,
                                     store=session.store,
                                     battery=battery)
            yield from probe.store_keys()


# --------------------------------------------------------------------------
# registration (presentation order: tables, figures, diagnostics,
# conformance, population, synthesis)
# --------------------------------------------------------------------------

from ..population.experiments import (  # noqa: E402 - registration order
    PopulationFamilyShareExperiment, PopulationLatencyExperiment)
from ..synthesis.experiments import (  # noqa: E402 - registration order
    SynthesizeReportExperiment, SynthesizeScenariosExperiment)

for _experiment in (Table1Experiment(), Table2Experiment(),
                    Table3Experiment(), Table4Experiment(),
                    Table5Experiment(), Figure2Experiment(),
                    Figure4Experiment(), Figure5Experiment(),
                    DelayedAExperiment(), TraceExperiment(),
                    FingerprintExperiment(), ConformanceExperiment(),
                    HEv3BatteryExperiment(), SvcbBatteryExperiment(),
                    SortlistBatteryExperiment(),
                    FingerprintDiffExperiment(),
                    PopulationLatencyExperiment(),
                    PopulationFamilyShareExperiment(),
                    SynthesizeScenariosExperiment(),
                    SynthesizeReportExperiment()):
    register(_experiment)
