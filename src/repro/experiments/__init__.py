"""The unified Experiment API.

Every artifact the reproduction produces — tables, figures,
conformance reports, diagnostics — is a first-class, enumerable
:class:`Experiment` living in one process-wide registry:

* :meth:`Experiment.plan` enumerates the content address of every
  campaign run the experiment would reference (pure — nothing
  executes), which powers ``repro ls`` key counts, batch warm-run
  lookups, and a ``repro cache gc`` that can never silently collect a
  registered experiment's entries;
* :meth:`Experiment.execute` runs the measurement through one shared
  :class:`Session` (seed, workers, campaign store);
* :meth:`Experiment.render` turns the result into an
  :class:`Artifact` (text + optional machine-readable JSON).

Registering a new experiment (subclass + :func:`register`) is all it
takes to surface it in the CLI — ``repro ls``, ``repro run <name>``,
and gc liveness come from the registry, not from command plumbing.

Importing this package loads the built-in catalogue
(:mod:`repro.experiments.catalog`).
"""

from .base import Artifact, Experiment, Knob, Session, knob_mapping
from .registry import (all_experiments, experiment_names, get_experiment,
                       register)
from . import catalog  # noqa: F401  (registers the built-in catalogue)
from .catalog import FIGURE5_CLIENTS, TABLE2_WEB_ENTRIES

__all__ = [
    "Artifact", "Experiment", "FIGURE5_CLIENTS", "Knob", "Session",
    "TABLE2_WEB_ENTRIES", "all_experiments", "experiment_names",
    "get_experiment", "knob_mapping", "register",
]
