"""The process-wide experiment registry.

One flat namespace of every :class:`~repro.experiments.base.Experiment`
the package knows how to produce.  Registration order is presentation
order (``repro ls`` lists the catalogue the way the paper does:
tables, figures, diagnostics, conformance).  The registry is the
*only* authority on what exists: the CLI dispatches through it, and
``repro cache gc`` computes its live-key universe as the union of
every registered experiment's plan — so registering an experiment is
all it takes to make it runnable, listable, and gc-safe.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .base import Experiment

_REGISTRY: "Dict[str, Experiment]" = {}
_ORDER: "List[str]" = []


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (import-time, once).

    Raises :class:`ValueError` on a duplicate name — two experiments
    silently shadowing each other would make ``repro run`` ambiguous
    and gc planning wrong.
    """
    if not experiment.name:
        raise ValueError("experiment needs a non-empty name")
    if experiment.name in _REGISTRY:
        raise ValueError(
            f"experiment {experiment.name!r} is already registered")
    _REGISTRY[experiment.name] = experiment
    _ORDER.append(experiment.name)
    return experiment


def get_experiment(name: str) -> Experiment:
    """Look up one experiment; KeyError lists the valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_ORDER)
        raise KeyError(f"no experiment named {name!r} (known: {known})")


def all_experiments() -> "List[Experiment]":
    """Every registered experiment, in registration order."""
    return [_REGISTRY[name] for name in _ORDER]


def experiment_names() -> "Iterator[str]":
    return iter(_ORDER)
