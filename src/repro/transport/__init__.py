"""Transport protocols over the simulated network.

TCP and QUIC expose the handshake observables the study measures
(connection-attempt packets, success/refusal/timeout); UDP carries DNS.
"""

from .errors import (ConnectError, ConnectRefused, ConnectTimeout,
                     ConnectionAborted, PortInUse, SocketClosed,
                     TransportError)
from .quic import (QUICConnection, QUICConnectionState, QUICListener,
                   QUICStack)
from .tcp import (TCPConnection, TCPListener, TCPStack, TCPState,
                  DEFAULT_INITIAL_RTO, DEFAULT_SYN_RETRIES)
from .udp import Datagram, UDPSocket, UDPStack

__all__ = [
    "ConnectError", "ConnectRefused", "ConnectTimeout", "ConnectionAborted",
    "Datagram", "DEFAULT_INITIAL_RTO", "DEFAULT_SYN_RETRIES", "PortInUse",
    "QUICConnection", "QUICConnectionState", "QUICListener", "QUICStack",
    "SocketClosed", "TCPConnection", "TCPListener", "TCPStack", "TCPState",
    "TransportError", "UDPSocket", "UDPStack",
]
