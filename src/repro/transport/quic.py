"""Minimal QUIC handshake model for Happy Eyeballs v3 racing.

HEv3 (draft-ietf-happy-happyeyeballs-v3) races QUIC against TCP and
prefers QUIC when SVCB/HTTPS records advertise it.  The racing engine
needs exactly one observable from QUIC: an Initial packet (the
connection attempt) answered by a Handshake packet (success), with
PTO-style retransmission when unanswered.  Everything else about QUIC
is out of scope (see DESIGN.md §7).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from ..simnet.addr import IPAddress, parse_address
from ..simnet.events import Event
from ..simnet.iface import Interface
from ..simnet.packet import Packet, Protocol, QUICPacketType
from ..simnet.scheduler import ScheduledCall
from .errors import ConnectTimeout, ConnectionAborted, PortInUse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simnet.host import Host

DEFAULT_INITIAL_PTO = 1.0
DEFAULT_MAX_PROBES = 5

ConnKey = Tuple[IPAddress, int, IPAddress, int]


class QUICConnectionState(enum.Enum):
    IDLE = "idle"
    CONNECTING = "connecting"
    ESTABLISHED = "established"
    FAILED = "failed"
    ABORTED = "aborted"


class QUICConnection:
    """Client-side QUIC handshake attempt."""

    def __init__(self, stack: "QUICStack", local_addr: IPAddress,
                 local_port: int, remote_addr: IPAddress,
                 remote_port: int) -> None:
        self.stack = stack
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = QUICConnectionState.IDLE
        self.established: Event = stack.host.sim.event(
            name=f"quic-connect:{remote_addr}:{remote_port}")
        self.initial_sent_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.initial_transmissions = 0
        self._pto_timer: Optional[ScheduledCall] = None
        self._deadline_timer: Optional[ScheduledCall] = None
        self._pto = DEFAULT_INITIAL_PTO
        self._probes_left = DEFAULT_MAX_PROBES

    @property
    def key(self) -> ConnKey:
        return (self.local_addr, self.local_port,
                self.remote_addr, self.remote_port)

    def _packet(self, quic_type: QUICPacketType) -> Packet:
        return Packet(src=self.local_addr, dst=self.remote_addr,
                      protocol=Protocol.QUIC, sport=self.local_port,
                      dport=self.remote_port, quic_type=quic_type)

    def _start(self, timeout: Optional[float], initial_pto: float,
               max_probes: int) -> None:
        sim = self.stack.host.sim
        self.state = QUICConnectionState.CONNECTING
        self._pto = initial_pto
        self._probes_left = max_probes
        self.initial_sent_at = sim.now
        self._transmit_initial()
        if timeout is not None:
            self._deadline_timer = sim.schedule(timeout, self._on_deadline)

    def _transmit_initial(self) -> None:
        self.initial_transmissions += 1
        self.stack.host.send(self._packet(QUICPacketType.INITIAL))
        self._pto_timer = self.stack.host.sim.schedule(
            self._pto, self._on_pto)

    def _on_pto(self) -> None:
        if self.state is not QUICConnectionState.CONNECTING:
            return
        if self._probes_left <= 0:
            self._fail(ConnectTimeout(
                f"QUIC handshake to {self.remote_addr}:{self.remote_port} "
                f"timed out after {self.initial_transmissions} Initials"))
            return
        self._probes_left -= 1
        self._pto *= 2.0
        self._transmit_initial()

    def _on_deadline(self) -> None:
        if self.state is QUICConnectionState.CONNECTING:
            self._fail(ConnectTimeout(
                f"QUIC attempt to {self.remote_addr}:{self.remote_port} "
                f"hit the attempt deadline"))

    def _fail(self, error: Exception) -> None:
        self._cancel_timers()
        self.state = QUICConnectionState.FAILED
        self.stack._forget(self)
        if not self.established.triggered:
            self.established.fail(error)

    def _cancel_timers(self) -> None:
        if self._pto_timer is not None:
            self._pto_timer.cancel()
            self._pto_timer = None
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()
            self._deadline_timer = None

    def handle(self, packet: Packet) -> None:
        if (self.state is QUICConnectionState.CONNECTING
                and packet.quic_type is QUICPacketType.HANDSHAKE):
            self._cancel_timers()
            self.state = QUICConnectionState.ESTABLISHED
            self.established_at = self.stack.host.sim.now
            self.stack.host.send(self._packet(QUICPacketType.ONE_RTT))
            if not self.established.triggered:
                self.established.succeed(self)

    def abort(self) -> None:
        if self.state in (QUICConnectionState.FAILED,
                          QUICConnectionState.ABORTED):
            return
        self._cancel_timers()
        self.state = QUICConnectionState.ABORTED
        self.stack._forget(self)
        if not self.established.triggered:
            self.established.defused = True
            self.established.fail(ConnectionAborted(
                f"QUIC attempt to {self.remote_addr} aborted"))

    def __repr__(self) -> str:
        return (f"<QUICConnection {self.local_addr}:{self.local_port} -> "
                f"{self.remote_addr}:{self.remote_port} {self.state.value}>")


class QUICListener:
    """Server side: answers Initials with Handshakes."""

    def __init__(self, stack: "QUICStack", local_addr: Optional[IPAddress],
                 port: int) -> None:
        self.stack = stack
        self.local_addr = local_addr
        self.port = port
        self.closed = False
        self.handshakes_answered = 0

    def _on_initial(self, packet: Packet) -> None:
        if self.closed:
            return
        self.handshakes_answered += 1
        self.stack.host.send(Packet(quic_type=QUICPacketType.HANDSHAKE,
                                    **packet.reply_template()))

    def close(self) -> None:
        self.closed = True
        self.stack._remove_listener(self)


class QUICStack:
    """Per-host QUIC demultiplexer."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._connections: Dict[ConnKey, QUICConnection] = {}
        self._listeners: Dict[Tuple[Optional[IPAddress], int],
                              QUICListener] = {}
        host.register_handler(Protocol.QUIC, self._on_packet)

    def connect(self, dst: Union[str, IPAddress], dport: int,
                src: Optional[Union[str, IPAddress]] = None,
                timeout: Optional[float] = None,
                initial_pto: float = DEFAULT_INITIAL_PTO,
                max_probes: int = DEFAULT_MAX_PROBES) -> QUICConnection:
        dst = parse_address(dst)
        src_addr = (parse_address(src) if src is not None
                    else self.host.source_address_for(dst))
        connection = QUICConnection(self, src_addr,
                                    self.host.allocate_port(), dst, dport)
        self._connections[connection.key] = connection
        connection._start(timeout, initial_pto, max_probes)
        return connection

    def listen(self, port: int,
               addr: Optional[Union[str, IPAddress]] = None) -> QUICListener:
        local = parse_address(addr) if addr is not None else None
        key = (local, port)
        if key in self._listeners:
            raise PortInUse(f"quic listener {key} exists on {self.host.name}")
        listener = QUICListener(self, local, port)
        self._listeners[key] = listener
        return listener

    def _forget(self, connection: QUICConnection) -> None:
        self._connections.pop(connection.key, None)

    def _remove_listener(self, listener: QUICListener) -> None:
        self._listeners.pop((listener.local_addr, listener.port), None)

    def _on_packet(self, packet: Packet, interface: Interface) -> None:
        key: ConnKey = (packet.dst, packet.dport, packet.src, packet.sport)
        connection = self._connections.get(key)
        if connection is not None:
            connection.handle(packet)
            return
        if packet.quic_type is QUICPacketType.INITIAL:
            listener = (self._listeners.get((packet.dst, packet.dport))
                        or self._listeners.get((None, packet.dport)))
            if listener is not None:
                listener._on_initial(packet)
