"""Transport-level error types.

Happy Eyeballs distinguishes *how* an attempt failed: an immediate RST
(refused) lets the client move to the next address right away, while a
blackholed address only fails after retransmissions time out — the
difference drives the paper's address-selection experiment, where all
configured addresses "do not respond at all" (§4.1(iii)).
"""

from __future__ import annotations


class TransportError(Exception):
    """Base class for simulated transport errors."""


class ConnectError(TransportError):
    """A connection attempt failed."""

    def __init__(self, message: str, elapsed: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed = elapsed


class ConnectTimeout(ConnectError):
    """No answer before the attempt deadline (blackhole / silent drop)."""


class ConnectRefused(ConnectError):
    """The peer answered with RST (closed port)."""


class ConnectionAborted(TransportError):
    """The local side aborted the connection (e.g. losing HE attempt)."""


class SocketClosed(TransportError):
    """Operation on a closed socket."""


class PortInUse(TransportError):
    """bind() collision."""
