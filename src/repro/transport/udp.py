"""UDP datagram service over the simulated network.

DNS — both the clients' stub queries and the recursive resolvers'
iterative queries — runs on these sockets, carrying real RFC 1035 wire
bytes as payloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple, Union

from ..simnet.addr import IPAddress, family_of, parse_address
from ..simnet.events import Event
from ..simnet.iface import Interface
from ..simnet.packet import Packet, Protocol
from .errors import PortInUse, SocketClosed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simnet.host import Host

# Demux key: (local address or None for wildcard, local port)
BindKey = Tuple[Optional[IPAddress], int]


@dataclass(frozen=True)
class Datagram:
    """A received UDP payload with its addressing context."""

    payload: bytes
    src: IPAddress
    sport: int
    dst: IPAddress
    dport: int

    @property
    def sender(self) -> Tuple[IPAddress, int]:
        return (self.src, self.sport)


class UDPSocket:
    """A bound UDP endpoint with event-based receive."""

    def __init__(self, stack: "UDPStack", local_addr: Optional[IPAddress],
                 local_port: int) -> None:
        self._stack = stack
        self.local_addr = local_addr
        self.local_port = local_port
        self._backlog: Deque[Datagram] = deque()
        self._waiters: Deque[Event] = deque()
        self.closed = False
        self.sent_count = 0
        self.received_count = 0

    # -- sending -----------------------------------------------------------

    def sendto(self, payload: bytes, dst: Union[str, IPAddress],
               dport: int,
               src: Optional[Union[str, IPAddress]] = None) -> Packet:
        """Send ``payload`` to ``(dst, dport)``; returns the packet sent.

        ``src`` pins the source address — servers answering on a
        wildcard socket use it to reply from the address that was
        queried, like a real UDP service.
        """
        if self.closed:
            raise SocketClosed(f"sendto on closed socket :{self.local_port}")
        dst = parse_address(dst)
        if src is not None:
            src = parse_address(src)
        elif self.local_addr is not None and (
                family_of(self.local_addr) is family_of(dst)):
            src = self.local_addr
        else:
            src = self._stack.host.source_address_for(dst)
        packet = Packet(src=src, dst=dst, protocol=Protocol.UDP,
                        sport=self.local_port, dport=dport, payload=payload)
        self._stack.host.send(packet)
        self.sent_count += 1
        return packet

    # -- receiving ----------------------------------------------------------

    def recv(self) -> Event:
        """Event that succeeds with the next :class:`Datagram`."""
        event = self._stack.host.sim.event(name=f"udp-recv:{self.local_port}")
        if self.closed:
            event.fail(SocketClosed(f"recv on closed :{self.local_port}"))
        elif self._backlog:
            event.succeed(self._backlog.popleft())
        else:
            self._waiters.append(event)
        return event

    def discard_waiter(self, event: Event) -> None:
        """Abandon a pending :meth:`recv` event (it lost a race).

        Without this, a ``recv`` raced against a timeout would stay in
        the waiter queue and silently consume the next datagram.
        """
        try:
            self._waiters.remove(event)
        except ValueError:
            pass

    def _deliver(self, datagram: Datagram) -> None:
        self.received_count += 1
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(datagram)
                return
        self._backlog.append(datagram)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._stack._unbind(self)
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.defused = True
                waiter.fail(SocketClosed("socket closed while receiving"))

    def __repr__(self) -> str:
        addr = self.local_addr if self.local_addr is not None else "*"
        return f"<UDPSocket {addr}:{self.local_port}>"


class UDPStack:
    """Per-host UDP demultiplexer."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._bindings: Dict[BindKey, UDPSocket] = {}
        host.register_handler(Protocol.UDP, self._on_packet)

    def socket(self, local_addr: Optional[Union[str, IPAddress]] = None,
               local_port: Optional[int] = None) -> UDPSocket:
        """Create and bind a socket; ephemeral port when none is given."""
        addr = parse_address(local_addr) if local_addr is not None else None
        if addr is not None and not self.host.owns_address(addr):
            raise ValueError(f"{self.host.name} does not own {addr}")
        port = local_port if local_port is not None else self.host.allocate_port()
        key: BindKey = (addr, port)
        if key in self._bindings:
            raise PortInUse(f"udp {key} already bound on {self.host.name}")
        sock = UDPSocket(self, addr, port)
        self._bindings[key] = sock
        return sock

    def _unbind(self, sock: UDPSocket) -> None:
        self._bindings.pop((sock.local_addr, sock.local_port), None)

    def _on_packet(self, packet: Packet, interface: Interface) -> None:
        sock = (self._bindings.get((packet.dst, packet.dport))
                or self._bindings.get((None, packet.dport)))
        if sock is None or sock.closed:
            return  # no ICMP port-unreachable in this model
        sock._deliver(Datagram(payload=packet.payload, src=packet.src,
                               sport=packet.sport, dst=packet.dst,
                               dport=packet.dport))
