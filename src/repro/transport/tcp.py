"""Simplified TCP over the simulated network.

The model covers exactly what the study observes: the three-way
handshake (first SYN per family is the connection-attempt timestamp the
testbed's CAD inference reads), SYN retransmission with exponential
backoff (Linux-style: initial RTO 1 s, doubling), RST-based refusal,
connection abort (the discarded losers of a Happy Eyeballs race), and
enough data transfer for an HTTP-ish echo exchange.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple, Union

from ..simnet.addr import IPAddress, parse_address
from ..simnet.events import Event
from ..simnet.iface import Interface
from ..simnet.packet import Packet, Protocol, TCPFlags
from ..simnet.scheduler import ScheduledCall
from .errors import (ConnectError, ConnectRefused, ConnectTimeout,
                     ConnectionAborted, PortInUse, SocketClosed)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simnet.host import Host

DEFAULT_INITIAL_RTO = 1.0
DEFAULT_SYN_RETRIES = 6
DEFAULT_MAX_RTO = 60.0

ConnKey = Tuple[IPAddress, int, IPAddress, int]
ListenKey = Tuple[Optional[IPAddress], int]


class TCPState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_SENT = "fin-sent"
    ABORTED = "aborted"


class TCPConnection:
    """One connection endpoint (client or server side)."""

    def __init__(self, stack: "TCPStack", local_addr: IPAddress,
                 local_port: int, remote_addr: IPAddress,
                 remote_port: int) -> None:
        self.stack = stack
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = TCPState.CLOSED
        sim = stack.host.sim
        self.established: Event = sim.event(
            name=f"tcp-connect:{remote_addr}:{remote_port}")
        self.syn_sent_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.syn_transmissions = 0
        self._recv_backlog: Deque[bytes] = deque()
        self._recv_waiters: Deque[Event] = deque()
        self._retransmit_timer: Optional[ScheduledCall] = None
        self._deadline_timer: Optional[ScheduledCall] = None
        self._current_rto = DEFAULT_INITIAL_RTO
        self.remote_closed = False

    # -- identity -----------------------------------------------------------

    @property
    def key(self) -> ConnKey:
        return (self.local_addr, self.local_port,
                self.remote_addr, self.remote_port)

    @property
    def family(self):
        from ..simnet.addr import family_of

        return family_of(self.remote_addr)

    def _packet(self, flags: TCPFlags, payload: bytes = b"") -> Packet:
        return Packet(src=self.local_addr, dst=self.remote_addr,
                      protocol=Protocol.TCP, sport=self.local_port,
                      dport=self.remote_port, flags=flags, payload=payload)

    # -- client-side handshake ------------------------------------------------

    def _start_connect(self, timeout: Optional[float], initial_rto: float,
                       syn_retries: int) -> None:
        sim = self.stack.host.sim
        self.state = TCPState.SYN_SENT
        self._current_rto = initial_rto
        self._syn_retries_left = syn_retries
        self.syn_sent_at = sim.now
        self._transmit_syn()
        if timeout is not None:
            self._deadline_timer = sim.schedule(timeout, self._on_deadline)

    def _transmit_syn(self) -> None:
        sim = self.stack.host.sim
        self.syn_transmissions += 1
        self.stack.host.send(self._packet(TCPFlags.SYN))
        self._retransmit_timer = sim.schedule(
            self._current_rto, self._on_retransmit_timer)

    def _on_retransmit_timer(self) -> None:
        if self.state is not TCPState.SYN_SENT:
            return
        if self._syn_retries_left <= 0:
            elapsed = self.stack.host.sim.now - (self.syn_sent_at or 0.0)
            self._fail_connect(ConnectTimeout(
                f"connect to {self.remote_addr}:{self.remote_port} "
                f"timed out after {self.syn_transmissions} SYNs",
                elapsed=elapsed))
            return
        self._syn_retries_left -= 1
        self._current_rto = min(self._current_rto * 2.0, DEFAULT_MAX_RTO)
        self._transmit_syn()

    def _on_deadline(self) -> None:
        if self.state is TCPState.SYN_SENT:
            elapsed = self.stack.host.sim.now - (self.syn_sent_at or 0.0)
            self._fail_connect(ConnectTimeout(
                f"connect to {self.remote_addr}:{self.remote_port} "
                f"hit the attempt deadline", elapsed=elapsed))

    def _fail_connect(self, error: ConnectError) -> None:
        self._cancel_timers()
        self.state = TCPState.CLOSED
        self.stack._forget(self)
        if not self.established.triggered:
            self.established.fail(error)

    def _cancel_timers(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None
        if self._deadline_timer is not None:
            self._deadline_timer.cancel()
            self._deadline_timer = None

    # -- packet handling -------------------------------------------------------

    def handle(self, packet: Packet) -> None:
        if packet.is_rst:
            self._on_rst(packet)
            return
        if self.state is TCPState.SYN_SENT and packet.is_syn_ack:
            self._cancel_timers()
            self.state = TCPState.ESTABLISHED
            self.established_at = self.stack.host.sim.now
            self.stack.host.send(self._packet(TCPFlags.ACK))
            if not self.established.triggered:
                self.established.succeed(self)
            return
        if self.state is TCPState.SYN_RCVD:
            if packet.is_syn:
                # Duplicate SYN: our SYN-ACK was lost; resend.
                self.stack.host.send(
                    self._packet(TCPFlags.SYN | TCPFlags.ACK))
                return
            if TCPFlags.ACK in packet.flags:
                self.state = TCPState.ESTABLISHED
                self.established_at = self.stack.host.sim.now
                if not self.established.triggered:
                    self.established.succeed(self)
                self.stack._connection_accepted(self)
                if packet.payload:
                    self._deliver(packet.payload)
                return
        if self.state in (TCPState.ESTABLISHED, TCPState.FIN_SENT):
            if packet.payload:
                self._deliver(packet.payload)
            if TCPFlags.FIN in packet.flags:
                self.remote_closed = True
                self._deliver(b"")  # EOF marker

    def _on_rst(self, packet: Packet) -> None:
        if self.state is TCPState.SYN_SENT:
            elapsed = self.stack.host.sim.now - (self.syn_sent_at or 0.0)
            self._fail_connect(ConnectRefused(
                f"connection to {self.remote_addr}:{self.remote_port} refused",
                elapsed=elapsed))
            return
        self._cancel_timers()
        self.state = TCPState.CLOSED
        self.stack._forget(self)
        self._fail_receivers(ConnectionAborted("connection reset by peer"))

    # -- data transfer -----------------------------------------------------------

    def send(self, payload: bytes) -> None:
        if self.state is not TCPState.ESTABLISHED:
            raise SocketClosed(
                f"send on {self.state.value} connection {self.key}")
        self.stack.host.send(
            self._packet(TCPFlags.PSH | TCPFlags.ACK, payload=payload))

    def recv(self) -> Event:
        """Event succeeding with the next payload (b'' marks EOF)."""
        event = self.stack.host.sim.event(name="tcp-recv")
        if self._recv_backlog:
            event.succeed(self._recv_backlog.popleft())
        elif self.state in (TCPState.CLOSED, TCPState.ABORTED):
            event.fail(SocketClosed("recv on closed connection"))
        else:
            self._recv_waiters.append(event)
        return event

    def _deliver(self, payload: bytes) -> None:
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(payload)
                return
        self._recv_backlog.append(payload)

    def _fail_receivers(self, error: Exception) -> None:
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.defused = True
                waiter.fail(error)

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        """Orderly shutdown (FIN)."""
        if self.state is TCPState.ESTABLISHED:
            self.state = TCPState.FIN_SENT
            self.stack.host.send(self._packet(TCPFlags.FIN | TCPFlags.ACK))

    def abort(self) -> None:
        """Hard abort (RST) — how an HE loser is discarded."""
        if self.state in (TCPState.CLOSED, TCPState.ABORTED):
            return
        self._cancel_timers()
        previous = self.state
        self.state = TCPState.ABORTED
        self.stack._forget(self)
        if previous in (TCPState.ESTABLISHED, TCPState.SYN_RCVD,
                        TCPState.FIN_SENT):
            self.stack.host.send(self._packet(TCPFlags.RST))
        if not self.established.triggered:
            self.established.defused = True
            self.established.fail(ConnectionAborted(
                f"attempt to {self.remote_addr}:{self.remote_port} aborted"))
        self._fail_receivers(ConnectionAborted("connection aborted"))

    def __repr__(self) -> str:
        return (f"<TCPConnection {self.local_addr}:{self.local_port} -> "
                f"{self.remote_addr}:{self.remote_port} {self.state.value}>")


class TCPListener:
    """A passive socket with an accept queue."""

    def __init__(self, stack: "TCPStack", local_addr: Optional[IPAddress],
                 port: int) -> None:
        self.stack = stack
        self.local_addr = local_addr
        self.port = port
        self._accept_backlog: Deque[TCPConnection] = deque()
        self._accept_waiters: Deque[Event] = deque()
        self.closed = False

    def accept(self) -> Event:
        """Event succeeding with the next established connection."""
        event = self.stack.host.sim.event(name=f"tcp-accept:{self.port}")
        if self.closed:
            event.fail(SocketClosed("accept on closed listener"))
        elif self._accept_backlog:
            event.succeed(self._accept_backlog.popleft())
        else:
            self._accept_waiters.append(event)
        return event

    def _enqueue(self, connection: TCPConnection) -> None:
        while self._accept_waiters:
            waiter = self._accept_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(connection)
                return
        self._accept_backlog.append(connection)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.stack._remove_listener(self)
        while self._accept_waiters:
            waiter = self._accept_waiters.popleft()
            if not waiter.triggered:
                waiter.defused = True
                waiter.fail(SocketClosed("listener closed"))


class TCPStack:
    """Per-host TCP connection and listener tables."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._connections: Dict[ConnKey, TCPConnection] = {}
        self._listeners: Dict[ListenKey, TCPListener] = {}
        host.register_handler(Protocol.TCP, self._on_packet)

    # -- API -----------------------------------------------------------------

    def connect(self, dst: Union[str, IPAddress], dport: int,
                src: Optional[Union[str, IPAddress]] = None,
                timeout: Optional[float] = None,
                initial_rto: float = DEFAULT_INITIAL_RTO,
                syn_retries: int = DEFAULT_SYN_RETRIES) -> TCPConnection:
        """Begin a connection attempt; wait on ``.established``."""
        dst = parse_address(dst)
        src_addr = (parse_address(src) if src is not None
                    else self.host.source_address_for(dst))
        connection = TCPConnection(self, src_addr, self.host.allocate_port(),
                                   dst, dport)
        self._connections[connection.key] = connection
        connection._start_connect(timeout, initial_rto, syn_retries)
        return connection

    def listen(self, port: int,
               addr: Optional[Union[str, IPAddress]] = None) -> TCPListener:
        local = parse_address(addr) if addr is not None else None
        key: ListenKey = (local, port)
        if key in self._listeners:
            raise PortInUse(f"tcp listener {key} exists on {self.host.name}")
        listener = TCPListener(self, local, port)
        self._listeners[key] = listener
        return listener

    # -- internals --------------------------------------------------------------

    def _forget(self, connection: TCPConnection) -> None:
        self._connections.pop(connection.key, None)

    def _remove_listener(self, listener: TCPListener) -> None:
        self._listeners.pop((listener.local_addr, listener.port), None)

    def _find_listener(self, packet: Packet) -> Optional[TCPListener]:
        return (self._listeners.get((packet.dst, packet.dport))
                or self._listeners.get((None, packet.dport)))

    def _connection_accepted(self, connection: TCPConnection) -> None:
        listener = self._listeners.get(
            (connection.local_addr, connection.local_port)) or \
            self._listeners.get((None, connection.local_port))
        if listener is not None and not listener.closed:
            listener._enqueue(connection)

    def _on_packet(self, packet: Packet, interface: Interface) -> None:
        key: ConnKey = (packet.dst, packet.dport, packet.src, packet.sport)
        connection = self._connections.get(key)
        if connection is not None:
            connection.handle(packet)
            return
        if packet.is_syn:
            listener = self._find_listener(packet)
            if listener is None or listener.closed:
                self.host.send(Packet(flags=TCPFlags.RST | TCPFlags.ACK,
                                      **packet.reply_template()))
                return
            child = TCPConnection(self, packet.dst, packet.dport,
                                  packet.src, packet.sport)
            child.state = TCPState.SYN_RCVD
            self._connections[child.key] = child
            self.host.send(child._packet(TCPFlags.SYN | TCPFlags.ACK))
            return
        if not packet.is_rst:
            # Stray segment for an unknown connection: refuse.
            self.host.send(Packet(flags=TCPFlags.RST,
                                  **packet.reply_template()))
