"""The adaptive scenario driver (coarse→fine, cache-aware).

The probe runs each scenario of the battery against one client through
the regular campaign machinery — :class:`~repro.testbed.runner
.TestRunner`, the process-global worker pool, and the content-addressed
:class:`~repro.testbed.store.CampaignStore`.  Sweep scenarios use the
paper's two-phase strategy (§4.3(i)): a coarse pass over the full
range, then a fine pass bounded to the window around the observed
family crossover.  Because run digests are independent of the sweep
shape, the fine pass replays every coarse value it overlaps from the
store and executes only genuinely new values — the ROADMAP's
"cache-aware sweep refinement" is this loop.

Everything is deterministic: the fine window is a pure function of the
coarse records, which are a pure function of the run coordinates — so
serial, parallel, and warm-cache probes produce byte-identical
fingerprints, which the conformance tests and the CI smoke enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..clients.profile import ClientProfile
from ..simnet.addr import Family
from ..testbed.config import SweepSpec, TestCaseConfig
from ..testbed.runner import RunRecord, TestRunner, series_flap_window
from ..testbed.store import CampaignStore
from .scenarios import Scenario, scenario_battery


@dataclass
class ScenarioOutcome:
    """Everything one scenario observed for one client."""

    scenario: Scenario
    records: List[RunRecord] = field(default_factory=list)
    #: ``(lo_ms, hi_ms)`` the fine pass covered, for sweep scenarios.
    refined_window_ms: Optional[Tuple[int, int]] = None
    #: Present when the coarse series flapped (IPv4 below an IPv6 win).
    flap_window_ms: Optional[Tuple[int, int]] = None

    @property
    def family_series(self) -> Dict[int, Family]:
        """delay_ms → established family, majority over repetitions."""
        votes: Dict[int, Dict[Family, int]] = {}
        for record in self.records:
            if record.winning_family is None:
                continue
            per_value = votes.setdefault(record.value_ms, {})
            per_value[record.winning_family] = \
                per_value.get(record.winning_family, 0) + 1
        from ..testbed.runner import majority_family

        return {value: majority_family(per_value)
                for value, per_value in sorted(votes.items())}

    @property
    def crossover_ms(self) -> Optional[int]:
        """Largest delay still established via IPv6, or None."""
        v6 = [value for value, family in self.family_series.items()
              if family is Family.V6]
        return max(v6) if v6 else None


def refinement_window(series: "Dict[int, Family]", coarse_step_ms: int,
                      stop_ms: int) -> Optional[Tuple[int, int]]:
    """The delay window a fine pass should cover, or None.

    A pure function of the coarse family series: the window spans from
    the largest IPv6 win to the smallest IPv4 win above it (the
    crossover hides in between).  A flapping series widens the window
    to the whole flap plus one coarse step on each side; a series that
    never reaches IPv4 (no fallback observed) needs no refinement.
    """
    flap = series_flap_window(series)
    if flap is not None:
        lo, hi = flap
        return (max(0, lo - coarse_step_ms),
                min(stop_ms, hi + coarse_step_ms))
    v4 = [value for value, family in series.items()
          if family is Family.V4]
    if not v4:
        return None
    v6 = [value for value, family in series.items()
          if family is Family.V6]
    lo = max(v6) if v6 else 0
    above = [value for value in v4 if value > lo]
    hi = min(above) if above else stop_ms
    if hi <= lo:
        return None
    return (lo, hi)


class ConformanceProbe:
    """Runs the scenario battery against one client profile."""

    def __init__(self, profile: ClientProfile, seed: int = 0,
                 store: Optional[CampaignStore] = None,
                 workers: Optional[int] = None,
                 battery: "Optional[Sequence[Scenario]]" = None) -> None:
        self.profile = profile
        self.seed = seed
        self.store = store
        self.workers = workers
        self.battery: "Tuple[Scenario, ...]" = tuple(
            battery if battery is not None else scenario_battery())

    # -- execution -------------------------------------------------------------

    def run(self) -> "List[ScenarioOutcome]":
        return [self.run_scenario(scenario) for scenario in self.battery]

    def run_scenario(self, scenario: Scenario) -> ScenarioOutcome:
        coarse = self._run_case(scenario.case)
        outcome = ScenarioOutcome(scenario=scenario, records=coarse)
        if not scenario.adaptive:
            return outcome
        series = outcome.family_series
        outcome.flap_window_ms = series_flap_window(series)
        window = refinement_window(
            series, scenario.coarse_step_ms, max(scenario.case.sweep))
        if window is None:
            return outcome
        fine_case = self._fine_case(scenario, window)
        if fine_case is None:
            return outcome
        outcome.refined_window_ms = window
        fine = self._run_case(fine_case)
        outcome.records = _merge_records(coarse, fine)
        return outcome

    def _run_case(self, case: TestCaseConfig) -> "List[RunRecord]":
        runner = TestRunner([self.profile], [case], seed=self.seed,
                            store=self.store)
        return list(runner.stream(workers=self.workers))

    @staticmethod
    def _fine_case(scenario: Scenario,
                   window: "Tuple[int, int]"
                   ) -> Optional[TestCaseConfig]:
        lo, hi = window
        if hi - lo <= scenario.fine_step_ms:
            return None  # the coarse grid is already that fine
        return replace(scenario.case,
                       sweep=SweepSpec.range(lo, hi, scenario.fine_step_ms))

    # -- planning (cache gc) ---------------------------------------------------

    def store_keys(self) -> "Iterator[str]":
        """Content address of every run the battery would reference.

        Coarse keys are enumerable unconditionally — with no store
        attached (``repro ls`` planning a cold catalogue), they are
        all there is.  Fine keys exist only once the coarse pass ran,
        so they are resolved *from the store*: when every coarse
        record of an adaptive scenario is cached, the same pure
        refinement logic reproduces the fine window — without
        executing anything.  ``repro cache gc`` uses this to keep a
        warm conformance battery alive.
        """
        for scenario in self.battery:
            runner = TestRunner([self.profile], [scenario.case],
                                seed=self.seed, store=self.store)
            keys = list(runner.store_keys())
            yield from keys
            if not scenario.adaptive or self.store is None:
                continue
            cached_map = self.store.get_many_records(keys)
            if len(cached_map) < len(keys):
                continue  # cold coarse pass: fine window unknowable
            outcome = ScenarioOutcome(
                scenario=scenario,
                records=[cached_map[key] for key in keys])
            window = refinement_window(
                outcome.family_series, scenario.coarse_step_ms,
                max(scenario.case.sweep))
            if window is None:
                continue
            fine_case = self._fine_case(scenario, window)
            if fine_case is None:
                continue
            fine_runner = TestRunner([self.profile], [fine_case],
                                     seed=self.seed, store=self.store)
            yield from fine_runner.store_keys()


def _merge_records(coarse: "List[RunRecord]",
                   fine: "List[RunRecord]") -> "List[RunRecord]":
    """Coarse + fine records, deduplicated on coordinates and sorted.

    Overlapping values come back byte-identical from the store either
    way, so keeping the first sighting is arbitrary but deterministic.
    """
    seen = set()
    merged: "List[RunRecord]" = []
    for record in coarse + fine:
        key = (record.value_ms, record.repetition)
        if key in seen:
            continue
        seen.add(key)
        merged.append(record)
    merged.sort(key=lambda r: (r.value_ms, r.repetition))
    return merged
