"""Rendering of conformance fingerprints (table + machine-readable).

Two faithful views of the same :class:`ClientFingerprint`: a diff-able
text table in the house style of :mod:`repro.analysis.render`, and a
deterministic JSON document (sorted keys, no timestamps, no cache
counters) — the CI smoke diffs cold vs warm output byte-for-byte, so
nothing environment-dependent may leak into either form.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from ..analysis.render import format_ms, render_mark, render_table
from .fingerprint import ClientFingerprint, ParameterVerdict
from .scenarios import Scenario


def _ms(value: "Optional[float]") -> Optional[str]:
    return None if value is None else format_ms(value / 1000.0, digits=1)


def render_fingerprint(fingerprint: ClientFingerprint) -> str:
    """One client's full report: verdict table + deviation flags."""
    title = (f"RFC 8305 fingerprint — {fingerprint.client} "
             f"({fingerprint.engine_family})")
    headers = ["Scenario", "Parameter", "Impl.", "Measured", "Nominal",
               "Delta", "Detail"]
    rows = []
    for verdict in fingerprint.verdicts:
        delta = verdict.delta_ms
        rows.append([
            verdict.scenario,
            verdict.parameter.short,
            render_mark(verdict.implemented),
            _ms(verdict.measured_ms),
            _ms(verdict.nominal_ms),
            None if delta is None else f"{delta:+.1f} ms",
            verdict.detail or None,
        ])
    lines = [render_table(headers, rows, title=title)]
    lines.append("")
    if fingerprint.deviations:
        lines.append("deviations:")
        for deviation in fingerprint.deviations:
            lines.append(f"  [{deviation.requirement.value}] "
                         f"{deviation.clause} — {deviation.description}")
    else:
        lines.append("deviations: (none)")
    return "\n".join(lines)


def render_conformance_summary(
        fingerprints: "Sequence[ClientFingerprint]") -> str:
    """The battery over many clients as one summary table."""
    from .fingerprint import RFC8305Parameter as P

    headers = ["Client", "CAD", "RD", "AAAA first", "v6 blackhole",
               "MUST dev.", "SHOULD dev."]
    rows = []
    for fingerprint in fingerprints:
        cad = fingerprint.verdict_for(P.CONNECTION_ATTEMPT_DELAY,
                                      "v6-delay-sweep")
        rd = fingerprint.verdict_for(P.RESOLUTION_DELAY)
        first = fingerprint.verdict_for(P.FIRST_ADDRESS_FAMILY)
        blackhole = fingerprint.verdict_for(P.FALLBACK, "v6-blackhole")
        rows.append([
            fingerprint.client,
            _ms(cad.measured_ms) if cad is not None else None,
            _ms(rd.measured_ms) if rd is not None else None,
            render_mark(first.implemented) if first is not None else None,
            (("survived" if blackhole.implemented else "FAILED")
             if blackhole is not None else None),
            len(fingerprint.must_deviations) or None,
            len(fingerprint.should_deviations) or None,
        ])
    return render_table(
        headers, rows,
        title="Conformance summary: RFC 8305 across clients")


def render_battery_summary(title: str,
                           fingerprints: "Sequence[ClientFingerprint]",
                           battery: "Sequence[Scenario]") -> str:
    """One scenario battery across clients: per-stage verdict matrix.

    One column per scenario (✓/✗ for the per-stage verdict, the
    measured value when one exists), one row per client — how the
    HEv3/SVCB/sortlist batteries show that the policy stages actually
    discriminate.
    """
    headers = ["Client", "Stage"] + [s.name for s in battery]
    rows = []
    for fingerprint in fingerprints:
        cells = []
        stages = sorted({s.discriminates.stage for s in battery})
        for scenario in battery:
            verdict = fingerprint.verdict_for(scenario.discriminates,
                                              scenario.name)
            if verdict is None:
                cells.append(None)
                continue
            mark = render_mark(verdict.implemented)
            measured = _ms(verdict.measured_ms)
            cells.append(f"{mark} {measured}" if measured else mark)
        rows.append([fingerprint.client, "/".join(stages)] + cells)
    lines = [render_table(headers, rows, title=title), ""]
    for fingerprint in fingerprints:
        relevant = [d for d in fingerprint.deviations]
        for deviation in relevant:
            lines.append(f"  {fingerprint.client}: "
                         f"[{deviation.requirement.value}] "
                         f"{deviation.clause} — {deviation.description}")
    if len(lines) == 2:
        lines.append("deviations: (none)")
    return "\n".join(lines)


def render_scenario_catalog(battery: "Sequence[Scenario]") -> str:
    """The battery as a table (README / ``repro conformance --list``)."""
    headers = ["Scenario", "Discriminates", "Impairment", "Sweep",
               "Adaptive"]
    rows = []
    for scenario in battery:
        values = scenario.case.sweep.values_ms
        if len(values) == 1:
            sweep = f"{values[0]} ms"
        else:
            sweep = (f"{values[0]}-{values[-1]} ms "
                     f"({len(values)} values)")
        if scenario.case.repetitions > 1:
            sweep += f" x{scenario.case.repetitions}"
        rows.append([
            scenario.name,
            scenario.discriminates.short,
            scenario.impairment_label,
            sweep,
            f"fine {scenario.fine_step_ms} ms" if scenario.adaptive
            else None,
        ])
    return render_table(headers, rows,
                        title="Conformance scenario battery")


# --------------------------------------------------------------------------
# machine-readable form
# --------------------------------------------------------------------------


def verdict_to_dict(verdict: ParameterVerdict) -> dict:
    return {
        "parameter": verdict.parameter.value,
        "scenario": verdict.scenario,
        "implemented": verdict.implemented,
        "measured_ms": verdict.measured_ms,
        "nominal_ms": verdict.nominal_ms,
        "delta_ms": verdict.delta_ms,
        "detail": verdict.detail,
    }


def fingerprint_to_dict(fingerprint: ClientFingerprint) -> dict:
    return {
        "client": fingerprint.client,
        "engine_family": fingerprint.engine_family,
        "scenarios_run": list(fingerprint.scenarios_run),
        "verdicts": [verdict_to_dict(v) for v in fingerprint.verdicts],
        "deviations": [{
            "requirement": d.requirement.value,
            "clause": d.clause,
            "description": d.description,
        } for d in fingerprint.deviations],
    }


def fingerprints_to_json(fingerprints: "Sequence[ClientFingerprint]",
                         indent: int = 2) -> str:
    """Deterministic JSON: stable key order, content only — identical
    across serial/parallel/warm-cache runs by construction."""
    return json.dumps([fingerprint_to_dict(f) for f in fingerprints],
                      indent=indent, sort_keys=True)
