"""Fingerprint assembly: scenario outcomes → RFC 8305 verdicts.

The verdicts are strictly black-box: every ``measured`` value comes
from wire observables (the :class:`~repro.testbed.runner.RunRecord`
fields the capture inference produced), and the profile's declared
parameters appear only as the ``nominal`` column the measurement is
checked against — exactly the paper's Table 1-vs-measured comparison.
Deviation flags carry the RFC 8305 requirement level: a client that
cannot reach a dual-stack host with IPv6 blackholed violates a MUST;
a 300 ms CAD merely deviates from the SHOULD-level recommendation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence

from ..clients.profile import ClientProfile
from ..simnet.addr import Family
from ..testbed.runner import RunRecord
from ..testbed.store import CampaignStore
from .probe import ConformanceProbe, ScenarioOutcome
from .scenarios import RFC8305Parameter, SYNTH_PREFIX, Scenario

#: RFC 8305 §5: recommended fixed CAD and its hard bounds.
RECOMMENDED_CAD_MS = 250.0
MIN_CAD_MS = 10.0
MAX_CAD_MS = 2000.0
#: RFC 8305 §3: recommended Resolution Delay.
RECOMMENDED_RD_MS = 50.0
#: Tolerance when comparing a measured value against a recommendation
#: (simulated timings are sharp; this absorbs capture granularity).
RECOMMENDATION_TOLERANCE_MS = 10.0
#: An IPv4 attempt starting less than this after the A answer (with
#: the AAAA answer still outstanding for another second) means the
#: client implements the Resolution Delay rather than waiting.
RD_IMPLEMENTED_THRESHOLD_MS = 500.0


class Requirement(enum.Enum):
    """RFC 2119 requirement level of a deviation."""

    MUST = "MUST"
    SHOULD = "SHOULD"


@dataclass(frozen=True)
class Deviation:
    """One RFC 8305 deviation observed on the wire."""

    requirement: Requirement
    clause: str
    description: str


@dataclass
class ParameterVerdict:
    """One scenario's verdict on one RFC 8305 parameter."""

    parameter: RFC8305Parameter
    scenario: str
    implemented: Optional[bool] = None
    measured_ms: Optional[float] = None
    nominal_ms: Optional[float] = None
    detail: str = ""

    @property
    def delta_ms(self) -> Optional[float]:
        if self.measured_ms is None or self.nominal_ms is None:
            return None
        return self.measured_ms - self.nominal_ms


@dataclass
class ClientFingerprint:
    """The assembled conformance report for one client."""

    client: str
    engine_family: str
    scenarios_run: List[str] = field(default_factory=list)
    verdicts: List[ParameterVerdict] = field(default_factory=list)
    deviations: List[Deviation] = field(default_factory=list)

    def verdict_for(self, parameter: RFC8305Parameter,
                    scenario: Optional[str] = None
                    ) -> Optional[ParameterVerdict]:
        for verdict in self.verdicts:
            if verdict.parameter is parameter and (
                    scenario is None or verdict.scenario == scenario):
                return verdict
        return None

    @property
    def must_deviations(self) -> List[Deviation]:
        return [d for d in self.deviations
                if d.requirement is Requirement.MUST]

    @property
    def should_deviations(self) -> List[Deviation]:
        return [d for d in self.deviations
                if d.requirement is Requirement.SHOULD]


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------


def fingerprint_client(profile: ClientProfile, seed: int = 0,
                       store: Optional[CampaignStore] = None,
                       workers: Optional[int] = None,
                       battery: "Optional[Sequence[Scenario]]" = None
                       ) -> ClientFingerprint:
    """Probe one client with the battery and assemble its fingerprint."""
    probe = ConformanceProbe(profile, seed=seed, store=store,
                             workers=workers, battery=battery)
    return assemble_fingerprint(profile, probe.run())


def outcomes_from_records(battery: "Sequence[Scenario]",
                          records: "Sequence[RunRecord]"
                          ) -> "List[ScenarioOutcome]":
    """Bucket pre-recorded runs into scenario outcomes (replay path).

    Any recorded campaign — a store replay, a results file, another
    session's probe — can be fingerprinted without re-executing, as
    long as its case names match the battery's.
    """
    by_case: Dict[str, List[RunRecord]] = {}
    for record in records:
        by_case.setdefault(record.case, []).append(record)
    outcomes = []
    for scenario in battery:
        bucket = sorted(by_case.get(scenario.case.name, []),
                        key=lambda r: (r.value_ms, r.repetition))
        outcomes.append(ScenarioOutcome(scenario=scenario, records=bucket))
    return outcomes


def assemble_fingerprint(profile: ClientProfile,
                         outcomes: "Sequence[ScenarioOutcome]"
                         ) -> ClientFingerprint:
    """Turn scenario outcomes into verdicts and deviation flags."""
    fingerprint = ClientFingerprint(client=profile.full_name,
                                    engine_family=profile.engine_family)
    for outcome in outcomes:
        fingerprint.scenarios_run.append(outcome.scenario.name)
        # Synthesized scenarios compose arbitrary dimension mixes, so
        # the hand-written judges' scenario-name branches do not apply
        # — a generic reachability judge covers all of them.
        if outcome.scenario.name.startswith(SYNTH_PREFIX):
            _judge_synthesized(fingerprint, profile, outcome)
            continue
        judge = _JUDGES.get(outcome.scenario.discriminates)
        if judge is not None:
            judge(fingerprint, profile, outcome)
    return fingerprint


# --------------------------------------------------------------------------
# per-parameter judges
# --------------------------------------------------------------------------


def _deviate(fingerprint: ClientFingerprint, requirement: Requirement,
             clause: str, description: str) -> None:
    fingerprint.deviations.append(
        Deviation(requirement=requirement, clause=clause,
                  description=description))


def _judge_cad(fingerprint: ClientFingerprint, profile: ClientProfile,
               outcome: ScenarioOutcome) -> None:
    scenario = outcome.scenario
    cads = [r.cad_s for r in outcome.records if r.cad_s is not None]
    fallback_seen = any(r.winning_family is Family.V4
                        for r in outcome.records)
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.CONNECTION_ATTEMPT_DELAY,
        scenario=scenario.name)
    verdict.implemented = bool(cads) and fallback_seen
    nominal = profile.nominal_cad  # None for dynamic/serial/no-HE stacks
    if nominal is not None:
        verdict.nominal_ms = nominal * 1000.0
    if verdict.implemented:
        verdict.measured_ms = median(cads) * 1000.0
        crossover = outcome.crossover_ms
        parts = []
        if crossover is not None:
            parts.append(f"IPv6 up to {crossover} ms")
        if outcome.refined_window_ms is not None:
            lo, hi = outcome.refined_window_ms
            parts.append(f"refined {lo}-{hi} ms")
        if outcome.flap_window_ms is not None:
            parts.append("coarse series flapped")
        verdict.detail = "; ".join(parts)
    else:
        verdict.detail = ("no IPv4 fallback observed across the sweep"
                          if not fallback_seen else "no CAD measurable")
    fingerprint.verdicts.append(verdict)

    # Deviation flags only from the primary (jitter-free) sweep; the
    # jittery variant cross-checks stability in its detail column.
    if scenario.name != "v6-delay-sweep":
        base = fingerprint.verdict_for(
            RFC8305Parameter.CONNECTION_ATTEMPT_DELAY, "v6-delay-sweep")
        if (base is not None and base.measured_ms is not None
                and verdict.measured_ms is not None):
            drift = verdict.measured_ms - base.measured_ms
            stable = abs(drift) <= 30.0
            note = (f"{'stable' if stable else 'UNSTABLE'} under jitter "
                    f"(drift {drift:+.1f} ms)")
            verdict.detail = (verdict.detail + "; " + note
                              if verdict.detail else note)
        return
    if not verdict.implemented:
        sweep_hi = max(scenario.case.sweep)
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 f"no IPv4 race observed with IPv6 delayed up to "
                 f"{sweep_hi} ms (CAD absent or beyond the sweep)")
        return
    measured = verdict.measured_ms
    if measured < MIN_CAD_MS or measured > MAX_CAD_MS:
        _deviate(fingerprint, Requirement.MUST, scenario.rfc_clause,
                 f"CAD {measured:.0f} ms outside the {MIN_CAD_MS:.0f} ms"
                 f"-{MAX_CAD_MS:.0f} ms bounds")
    elif abs(measured - RECOMMENDED_CAD_MS) > RECOMMENDATION_TOLERANCE_MS:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 f"CAD {measured:.0f} ms differs from the recommended "
                 f"{RECOMMENDED_CAD_MS:.0f} ms")


def _judge_rd(fingerprint: ClientFingerprint, profile: ClientProfile,
              outcome: ScenarioOutcome) -> None:
    scenario = outcome.scenario
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.RESOLUTION_DELAY,
        scenario=scenario.name)
    rds = [r.rd_s for r in outcome.records if r.rd_s is not None]
    nominal = profile.nominal_rd
    if nominal is not None:
        verdict.nominal_ms = nominal * 1000.0
    if not rds:
        verdict.implemented = False
        verdict.detail = "no IPv4 attempt during the held-back AAAA"
    else:
        rd_ms = median(rds) * 1000.0
        verdict.implemented = rd_ms < RD_IMPLEMENTED_THRESHOLD_MS
        if verdict.implemented:
            verdict.measured_ms = rd_ms
            verdict.detail = f"IPv4 started {rd_ms:.0f} ms after the A answer"
        else:
            verdict.detail = (f"waited {rd_ms:.0f} ms after the A answer "
                              "(no Resolution Delay; resolver-paced)")
    fingerprint.verdicts.append(verdict)
    if not verdict.implemented:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 "does not implement the Resolution Delay (waits for "
                 "the AAAA answer instead of starting IPv4 ~50 ms "
                 "after the A answer)")
    elif abs(verdict.measured_ms
             - RECOMMENDED_RD_MS) > RECOMMENDATION_TOLERANCE_MS:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 f"Resolution Delay {verdict.measured_ms:.0f} ms differs "
                 f"from the recommended {RECOMMENDED_RD_MS:.0f} ms")


def _judge_resolution_policy(fingerprint: ClientFingerprint,
                             profile: ClientProfile,
                             outcome: ScenarioOutcome) -> None:
    scenario = outcome.scenario
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.RESOLUTION_POLICY,
        scenario=scenario.name)
    waits = [r.time_to_first_attempt_s for r in outcome.records
             if r.time_to_first_attempt_s is not None]
    if not waits:
        verdict.detail = "no connection attempt observed"
    else:
        wait_ms = median(waits) * 1000.0
        verdict.measured_ms = wait_ms
        verdict.implemented = wait_ms < RD_IMPLEMENTED_THRESHOLD_MS
        verdict.detail = (
            f"first attempt {wait_ms:.0f} ms after the first query"
            + ("" if verdict.implemented
               else " — stalled on the held-back A answer"))
    fingerprint.verdicts.append(verdict)
    if verdict.implemented is False:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 "waits for both DNS answers before connecting: a "
                 "delayed A answer stalls healthy IPv6 (the §5.2 "
                 "pathology)")


def _judge_first_family(fingerprint: ClientFingerprint,
                        profile: ClientProfile,
                        outcome: ScenarioOutcome) -> None:
    scenario = outcome.scenario
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.FIRST_ADDRESS_FAMILY,
        scenario=scenario.name)
    aaaa_first = [r.aaaa_first for r in outcome.records
                  if r.aaaa_first is not None]
    winners = [r.winning_family for r in outcome.records
               if r.winning_family is not None]
    v6_prefers = winners.count(Family.V6)
    queries_aaaa_first = bool(aaaa_first) and all(aaaa_first)
    prefers_v6 = bool(winners) and v6_prefers * 2 >= len(winners)
    verdict.implemented = queries_aaaa_first and prefers_v6
    parts = []
    if aaaa_first:
        parts.append("AAAA queried first"
                     if queries_aaaa_first else "A queried first")
    if winners:
        parts.append(f"established {winners[0].label} on pristine "
                     "dual stack under 300 ms DNS latency")
    verdict.detail = "; ".join(parts)
    fingerprint.verdicts.append(verdict)
    if aaaa_first and not queries_aaaa_first:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 "sends the A query before the AAAA query")
    if winners and not prefers_v6:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 "prefers IPv4 although IPv6 is fully healthy")


def _judge_fallback(fingerprint: ClientFingerprint,
                    profile: ClientProfile,
                    outcome: ScenarioOutcome) -> None:
    scenario = outcome.scenario
    verdict = ParameterVerdict(parameter=RFC8305Parameter.FALLBACK,
                               scenario=scenario.name)
    winners = [r.winning_family for r in outcome.records
               if r.winning_family is not None]
    established = len(winners)
    total = len(outcome.records)
    durations = [r.duration_s for r in outcome.records
                 if r.duration_s is not None]
    if durations:
        verdict.measured_ms = median(durations) * 1000.0
    if scenario.name == "v6-blackhole":
        verdict.implemented = bool(winners) and all(
            family is Family.V4 for family in winners)
        if not verdict.implemented:
            verdict.detail = "never reached the host with IPv6 blackholed"
        elif verdict.measured_ms is not None:
            verdict.detail = ("reached the host via IPv4 in "
                              f"{verdict.measured_ms:.0f} ms")
        else:
            verdict.detail = "reached the host via IPv4"
        if not verdict.implemented:
            _deviate(fingerprint, Requirement.MUST, scenario.rfc_clause,
                     "cannot reach a dual-stack host whose IPv6 path "
                     "is blackholed (no IPv4 fallback)")
    elif scenario.name == "v6-reorder":
        spurious = sum(1 for family in winners if family is Family.V4)
        verdict.implemented = established == total and spurious == 0
        verdict.detail = (f"{established}/{total} established, "
                          f"{spurious} spurious IPv4 fallbacks under "
                          "25 % reordering")
        if established == total and spurious:
            _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                     "falls back to IPv4 although reordered IPv6 "
                     "completes well inside its own CAD")
    else:  # rate-limited-v6
        verdict.implemented = established == total and total > 0
        family = winners[0].label if winners else "none"
        verdict.detail = (f"established via {family} with IPv6 "
                          "serialized at 1 kbit/s")
        if not verdict.implemented:
            _deviate(fingerprint, Requirement.MUST, scenario.rfc_clause,
                     "fails to connect when the IPv6 path is "
                     "rate-limited instead of racing IPv4")
    fingerprint.verdicts.append(verdict)


def _judge_retry(fingerprint: ClientFingerprint, profile: ClientProfile,
                 outcome: ScenarioOutcome) -> None:
    scenario = outcome.scenario
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.RETRY_ROBUSTNESS,
        scenario=scenario.name)
    established = sum(1 for r in outcome.records
                      if r.winning_family is not None)
    total = len(outcome.records)
    verdict.implemented = total > 0 and established == total
    durations = [r.duration_s for r in outcome.records
                 if r.duration_s is not None]
    if durations:
        verdict.measured_ms = median(durations) * 1000.0
    verdict.detail = (f"{established}/{total} repetitions established "
                      "under 40 % IPv6 loss")
    fingerprint.verdicts.append(verdict)
    if not verdict.implemented:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 f"connection setup not robust to asymmetric loss "
                 f"({established}/{total} repetitions established)")


def _judge_protocol_racing(fingerprint: ClientFingerprint,
                           profile: ClientProfile,
                           outcome: ScenarioOutcome) -> None:
    """HEv3 racing stage: QUIC raced when advertised, TCP fallback
    when the QUIC path dies."""
    from ..simnet.packet import Protocol

    scenario = outcome.scenario
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.PROTOCOL_RACING,
        scenario=scenario.name)
    raced = any(r.attempts_quic > 0 for r in outcome.records)
    winners = [r.winning_protocol for r in outcome.records
               if r.winning_protocol is not None]
    established = len(winners)
    total = len(outcome.records)
    declares_quic = profile.stack.racing.race_quic
    durations = [r.duration_s for r in outcome.records
                 if r.duration_s is not None]
    if durations:
        verdict.measured_ms = median(durations) * 1000.0
    if scenario.name == "quic-advertised":
        verdict.implemented = bool(raced and winners and all(
            protocol is Protocol.QUIC for protocol in winners))
        if verdict.implemented:
            verdict.detail = "raced QUIC and established over it"
        elif raced:
            verdict.detail = "raced QUIC but established over TCP"
        else:
            verdict.detail = "never attempted QUIC (TCP only)"
    else:  # quic-blackholed
        survived = established == total and total > 0 and all(
            protocol is Protocol.TCP for protocol in winners)
        verdict.implemented = raced and survived
        if verdict.implemented:
            verdict.detail = ("raced QUIC into the blackhole, fell "
                              "back to TCP")
        elif raced:
            verdict.detail = "raced QUIC but never completed over TCP"
        else:
            verdict.detail = "no QUIC attempt (plain TCP connect)"
        if declares_quic and raced and not survived:
            _deviate(fingerprint, Requirement.MUST, scenario.rfc_clause,
                     "cannot reach the host over TCP when the "
                     "advertised QUIC path is blackholed")
        if total and established != total:
            _deviate(fingerprint, Requirement.MUST, scenario.rfc_clause,
                     f"only {established}/{total} repetitions "
                     "established with QUIC blackholed")
    fingerprint.verdicts.append(verdict)
    if declares_quic and not raced:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 "declares QUIC racing but never attempted QUIC "
                 "although the HTTPS record advertised h3")


def _judge_svcb(fingerprint: ClientFingerprint, profile: ClientProfile,
                outcome: ScenarioOutcome) -> None:
    """HEv3 resolution stage: SVCB/HTTPS record consumption."""
    scenario = outcome.scenario
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.SVCB_DISCOVERY,
        scenario=scenario.name)
    queried = [r.queried_https for r in outcome.records]
    asked = bool(queried) and all(queried)
    declares_svcb = profile.stack.resolution.use_svcb
    if scenario.name == "https-query":
        verdict.implemented = asked
        verdict.detail = ("sent the HTTPS (type-65) query" if asked
                          else "never asked for HTTPS records")
    else:  # svcb-alt-port
        advertised = scenario.case.service.https_port
        ports = [r.first_attempt_port for r in outcome.records
                 if r.first_attempt_port is not None]
        honored = bool(ports) and all(port == advertised
                                      for port in ports)
        verdict.implemented = asked and honored
        if verdict.implemented:
            verdict.detail = f"connected to the advertised :{advertised}"
        elif asked:
            verdict.detail = (f"queried HTTPS but connected to "
                              f":{ports[0] if ports else '?'}")
            if declares_svcb:
                _deviate(fingerprint, Requirement.SHOULD,
                         scenario.rfc_clause,
                         f"consumes HTTPS records but ignores the "
                         f"advertised port {advertised}")
        else:
            verdict.detail = (f"stayed on :{ports[0]}" if ports
                              else "no attempt observed")
    fingerprint.verdicts.append(verdict)


def _judge_sorting(fingerprint: ClientFingerprint, profile: ClientProfile,
                   outcome: ScenarioOutcome) -> None:
    """Sorting stage: which sortlist ordered the destination set.

    RFC 6724's table puts IPv4 (precedence 35) above every special
    prefix the battery serves, so the conforming first attempt is
    IPv4; a legacy RFC 3484 ordering leads with the special-prefix
    IPv6 destination instead.
    """
    scenario = outcome.scenario
    verdict = ParameterVerdict(
        parameter=RFC8305Parameter.DESTINATION_SORTING,
        scenario=scenario.name)
    first_families = [r.first_attempt_family for r in outcome.records
                      if r.first_attempt_family is not None]
    established = sum(1 for r in outcome.records
                      if r.winning_family is not None)
    total = len(outcome.records)
    if not first_families:
        verdict.detail = "no connection attempt observed"
        fingerprint.verdicts.append(verdict)
        return
    leads_v4 = all(family is Family.V4 for family in first_families)
    verdict.implemented = leads_v4
    prefix = scenario.name.split("-vs-")[0]
    verdict.detail = (
        f"first attempt {first_families[0].label} "
        f"({'RFC 6724 order' if leads_v4 else f'{prefix} above IPv4'}); "
        f"{established}/{total} established")
    fingerprint.verdicts.append(verdict)
    if not leads_v4:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 f"destination sorting ranks {prefix} space above "
                 "IPv4 (legacy RFC 3484 sortlist, not the RFC 6724 "
                 "default policy table)")


def _judge_synthesized(fingerprint: ClientFingerprint,
                       profile: ClientProfile,
                       outcome: ScenarioOutcome) -> None:
    """Generic judge for search-promoted (``synth-``) scenarios.

    A synthesized scenario is an arbitrary dimension mix without a
    per-scenario expectation table, so the verdict is the black-box
    floor every mix shares: the host is dual-stack and at least one
    path is viable, so a conforming client establishes *something*.
    Never establishing under the mix is the MUST-level deviation the
    search scored as a failure discovery; partial establishment across
    repetitions is SHOULD-level robustness drift.
    """
    scenario = outcome.scenario
    verdict = ParameterVerdict(parameter=scenario.discriminates,
                               scenario=scenario.name)
    winners = [r.winning_family for r in outcome.records
               if r.winning_family is not None]
    established = len(winners)
    total = len(outcome.records)
    verdict.implemented = total > 0 and established == total
    durations = [r.duration_s for r in outcome.records
                 if r.duration_s is not None]
    if durations:
        verdict.measured_ms = median(durations) * 1000.0
    family = winners[0].label if winners else "none"
    verdict.detail = (f"{established}/{total} established "
                      f"(first winner {family}) under synthesized mix")
    fingerprint.verdicts.append(verdict)
    if total and established == 0:
        _deviate(fingerprint, Requirement.MUST, scenario.rfc_clause,
                 f"never reached the dual-stack host under the "
                 f"synthesized impairment mix {scenario.name}")
    elif total and established < total:
        _deviate(fingerprint, Requirement.SHOULD, scenario.rfc_clause,
                 f"only {established}/{total} repetitions established "
                 f"under the synthesized impairment mix {scenario.name}")


_JUDGES = {
    RFC8305Parameter.CONNECTION_ATTEMPT_DELAY: _judge_cad,
    RFC8305Parameter.RESOLUTION_DELAY: _judge_rd,
    RFC8305Parameter.RESOLUTION_POLICY: _judge_resolution_policy,
    RFC8305Parameter.FIRST_ADDRESS_FAMILY: _judge_first_family,
    RFC8305Parameter.FALLBACK: _judge_fallback,
    RFC8305Parameter.RETRY_ROBUSTNESS: _judge_retry,
    RFC8305Parameter.PROTOCOL_RACING: _judge_protocol_racing,
    RFC8305Parameter.SVCB_DISCOVERY: _judge_svcb,
    RFC8305Parameter.DESTINATION_SORTING: _judge_sorting,
}
