"""Blackbox conformance engine: scenario battery → RFC 8305 fingerprint.

The paper treats every client as a black box and infers its Happy
Eyeballs parameters from the wire; this subsystem turns that inference
into *verdicts*.  An adaptive battery of impairment scenarios (IPv6
delay sweeps, blackholes, loss, DNS pathologies, jitter, reordering,
rate limits — :mod:`repro.conformance.scenarios`) probes a client
profile through the regular campaign machinery, the coarse→fine sweep
refinement rides the content-addressed store
(:mod:`repro.conformance.probe`), and the observables assemble into
per-parameter verdicts with measured-vs-nominal deltas and explicit
RFC 8305 MUST/SHOULD deviation flags
(:mod:`repro.conformance.fingerprint`, rendered by
:mod:`repro.conformance.report`).
"""

from .drift import (DriftRow, FingerprintDiff, diff_fingerprints,
                    fingerprint_diff_to_dict, render_fingerprint_diff)
from .fingerprint import (ClientFingerprint, Deviation, ParameterVerdict,
                          Requirement, assemble_fingerprint,
                          fingerprint_client, outcomes_from_records)
from .probe import (ConformanceProbe, ScenarioOutcome,
                    refinement_window)
from .report import (fingerprint_to_dict, fingerprints_to_json,
                     render_battery_summary, render_conformance_summary,
                     render_fingerprint, render_scenario_catalog)
from .scenarios import (RFC8305Parameter, SYNTH_PREFIX, Scenario,
                        hev3_battery, scenario_battery, scenario_by_name,
                        sortlist_battery, svcb_battery)

__all__ = [
    "ClientFingerprint", "ConformanceProbe", "Deviation", "DriftRow",
    "FingerprintDiff", "ParameterVerdict", "RFC8305Parameter",
    "Requirement", "SYNTH_PREFIX", "Scenario", "ScenarioOutcome",
    "assemble_fingerprint", "diff_fingerprints", "fingerprint_client",
    "fingerprint_diff_to_dict", "fingerprint_to_dict",
    "fingerprints_to_json", "hev3_battery", "outcomes_from_records",
    "refinement_window", "render_battery_summary",
    "render_conformance_summary", "render_fingerprint",
    "render_fingerprint_diff", "render_scenario_catalog",
    "scenario_battery", "scenario_by_name", "sortlist_battery",
    "svcb_battery",
]
