"""The conformance scenario catalog.

Each :class:`Scenario` is one impairment the battery subjects a client
to, declared as data: the test case (composed from
:class:`~repro.testbed.config.ImpairmentSpec` netem stanzas or the
paper's §4.1 case kinds), the RFC 8305 parameter the scenario
*discriminates*, and — for sweep scenarios — how the adaptive probe
refines the coarse pass.  The catalog mirrors the blackbox philosophy
of the paper and of the QUIC noncompliance checker it cites: nothing
here knows how any client is implemented; a scenario only shapes the
wire and declares which parameter its observables pin down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..simnet.addr import Family
from ..simnet.packet import Protocol
from ..testbed.config import (ImpairmentSpec, ServiceSpec, SweepSpec,
                              TestCaseConfig, TestCaseKind)

#: Case-name prefix: conformance cases share the campaign store with
#: every other campaign, so their names must not collide.
CASE_PREFIX = "conf-"

#: Case/scenario-name prefix for adversarially *synthesized* scenarios
#: (see :mod:`repro.synthesis`): the fingerprint assembler dispatches
#: on it, and it keeps search-probe keys disjoint from every
#: hand-written battery.
SYNTH_PREFIX = "synth-"


class RFC8305Parameter(enum.Enum):
    """The RFC 8305 (and HEv3 / RFC 6724) knobs a scenario can
    discriminate — one per policy stage the staged client API models."""

    CONNECTION_ATTEMPT_DELAY = "connection-attempt-delay"
    RESOLUTION_DELAY = "resolution-delay"
    RESOLUTION_POLICY = "resolution-policy"
    FIRST_ADDRESS_FAMILY = "first-address-family"
    FALLBACK = "fallback"
    RETRY_ROBUSTNESS = "retry-robustness"
    #: HEv3 racing stage: does the client race QUIC when advertised?
    PROTOCOL_RACING = "protocol-racing"
    #: HEv3 resolution stage: does the client consume SVCB/HTTPS records?
    SVCB_DISCOVERY = "svcb-discovery"
    #: Sorting stage: which RFC 6724 sortlist orders the destinations?
    DESTINATION_SORTING = "destination-sorting"

    @property
    def short(self) -> str:
        return {
            "CONNECTION_ATTEMPT_DELAY": "CAD",
            "RESOLUTION_DELAY": "RD",
            "RESOLUTION_POLICY": "res. policy",
            "FIRST_ADDRESS_FAMILY": "first family",
            "FALLBACK": "fallback",
            "RETRY_ROBUSTNESS": "retry",
            "PROTOCOL_RACING": "quic racing",
            "SVCB_DISCOVERY": "svcb",
            "DESTINATION_SORTING": "sortlist",
        }[self.name]

    @property
    def stage(self) -> str:
        """The policy stage the parameter belongs to (report grouping)."""
        return {
            "CONNECTION_ATTEMPT_DELAY": "racing",
            "RESOLUTION_DELAY": "resolution",
            "RESOLUTION_POLICY": "resolution",
            "FIRST_ADDRESS_FAMILY": "sorting",
            "FALLBACK": "racing",
            "RETRY_ROBUSTNESS": "racing",
            "PROTOCOL_RACING": "racing",
            "SVCB_DISCOVERY": "resolution",
            "DESTINATION_SORTING": "sorting",
        }[self.name]


@dataclass(frozen=True)
class Scenario:
    """One impairment scenario of the conformance battery."""

    name: str
    discriminates: RFC8305Parameter
    rfc_clause: str
    description: str
    case: TestCaseConfig
    #: Set on sweep scenarios: the probe refines the coarse crossover
    #: with a second pass at this step, bounded by the coarse step.
    fine_step_ms: Optional[int] = None
    coarse_step_ms: Optional[int] = None

    @property
    def adaptive(self) -> bool:
        return self.fine_step_ms is not None

    @property
    def impairment_label(self) -> str:
        """Human-readable shaping summary for catalogs and reports."""
        if self.case.kind is TestCaseKind.RESOLUTION_DELAY:
            return "AAAA answer delayed by sweep value"
        if self.case.kind is TestCaseKind.DELAYED_A:
            return "A answer delayed by sweep value"
        if self.case.kind is TestCaseKind.CONNECTION_ATTEMPT_DELAY:
            return "IPv6 TCP delayed by sweep value"
        parts = [spec.label() for spec in self.case.impairments]
        if self.case.service is not None:
            parts.append(self.case.service.label())
        if not parts:
            return "none (pristine dual stack)"
        return "; ".join(parts)


def scenario_battery(stop_ms: int = 400, coarse_step_ms: int = 50,
                     fine_step_ms: int = 5,
                     loss_repetitions: int = 5) -> "Tuple[Scenario, ...]":
    """The default battery: ≥8 scenarios covering every parameter.

    All scenarios run through the regular campaign machinery (runner,
    store, worker pool), so a warm cache replays the whole battery
    without executing a single run.
    """
    sweep = SweepSpec.range(0, stop_ms, coarse_step_ms)
    return (
        Scenario(
            name="v6-delay-sweep",
            discriminates=RFC8305Parameter.CONNECTION_ATTEMPT_DELAY,
            rfc_clause="RFC 8305 §5",
            description="Sweep the IPv6 TCP delay; the gap between the "
                        "first IPv6 and first IPv4 attempt is the CAD, "
                        "refined around the coarse family crossover.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "v6-delay-sweep",
                kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                sweep=sweep),
            fine_step_ms=fine_step_ms, coarse_step_ms=coarse_step_ms),
        Scenario(
            name="jittery-dual-stack",
            discriminates=RFC8305Parameter.CONNECTION_ATTEMPT_DELAY,
            rfc_clause="RFC 8305 §5",
            description="The same delay sweep under ±15 ms correlated "
                        "jitter: the CAD estimate must survive an "
                        "unsteady path.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "jittery-dual-stack",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=sweep,
                impairments=(ImpairmentSpec(
                    family=Family.V6, protocol=Protocol.TCP,
                    value_scaled=True, jitter_s=0.015,
                    jitter_correlation=0.25, name="v6-jitter"),)),
            fine_step_ms=fine_step_ms, coarse_step_ms=coarse_step_ms),
        Scenario(
            name="v6-blackhole",
            discriminates=RFC8305Parameter.FALLBACK,
            rfc_clause="RFC 8305 §4",
            description="Drop every IPv6 TCP packet: a conforming "
                        "client must still reach the host over IPv4.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "v6-blackhole",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                impairments=(ImpairmentSpec(
                    family=Family.V6, protocol=Protocol.TCP, loss=1.0,
                    name="v6-blackhole"),)),
        ),
        Scenario(
            name="asymmetric-loss",
            discriminates=RFC8305Parameter.RETRY_ROBUSTNESS,
            rfc_clause="RFC 8305 §4",
            description="Drop 40 % of IPv6 TCP packets: retransmits "
                        "or the IPv4 race must still complete every "
                        "repetition.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "asymmetric-loss",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                repetitions=loss_repetitions,
                impairments=(ImpairmentSpec(
                    family=Family.V6, protocol=Protocol.TCP, loss=0.4,
                    name="v6-loss-40"),)),
        ),
        Scenario(
            name="delayed-aaaa",
            discriminates=RFC8305Parameter.RESOLUTION_DELAY,
            rfc_clause="RFC 8305 §3",
            description="Hold the AAAA answer back 1.5 s: a client "
                        "implementing the Resolution Delay starts "
                        "IPv4 ~50 ms after the A answer instead of "
                        "waiting.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "delayed-aaaa",
                kind=TestCaseKind.RESOLUTION_DELAY,
                sweep=SweepSpec.fixed(1500)),
        ),
        Scenario(
            name="delayed-a",
            discriminates=RFC8305Parameter.RESOLUTION_POLICY,
            rfc_clause="RFC 8305 §3",
            description="Hold the A answer back 1.5 s with IPv6 fully "
                        "healthy: waiting for both answers is the "
                        "§5.2 stall.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "delayed-a",
                kind=TestCaseKind.DELAYED_A,
                sweep=SweepSpec.fixed(1500)),
        ),
        Scenario(
            name="slow-resolver",
            discriminates=RFC8305Parameter.FIRST_ADDRESS_FAMILY,
            rfc_clause="RFC 8305 §3–4",
            description="Delay every DNS answer 300 ms: query order "
                        "(AAAA first) and the IPv6 preference must "
                        "not depend on a fast resolver.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "slow-resolver",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                impairments=(ImpairmentSpec(
                    protocol=Protocol.UDP, delay_s=0.3,
                    name="slow-dns"),)),
        ),
        Scenario(
            name="v6-reorder",
            discriminates=RFC8305Parameter.FALLBACK,
            rfc_clause="RFC 8305 §4",
            description="50 ms IPv6 delay with 25 % reordering: "
                        "overtaking packets must not trigger a "
                        "spurious IPv4 fallback.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "v6-reorder",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                repetitions=3,
                impairments=(ImpairmentSpec(
                    family=Family.V6, protocol=Protocol.TCP,
                    delay_s=0.050, reorder_probability=0.25,
                    name="v6-reorder"),)),
        ),
        Scenario(
            name="rate-limited-v6",
            discriminates=RFC8305Parameter.FALLBACK,
            rfc_clause="RFC 8305 §4–5",
            description="Serialize IPv6 TCP at 1 kbit/s (~480 ms per "
                        "handshake packet): clients whose CAD is "
                        "shorter must win over IPv4.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "rate-limited-v6",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                impairments=(ImpairmentSpec(
                    family=Family.V6, protocol=Protocol.TCP,
                    rate_bps=1000.0, name="v6-rate-1k"),)),
        ),
    )


def hev3_battery(repetitions: int = 1) -> "Tuple[Scenario, ...]":
    """The HEv3/QUIC protocol-racing battery (racing stage).

    Both scenarios publish an HTTPS record advertising h3 alongside
    http/1.1 and answer QUIC on the web port; the second blackholes
    the QUIC return path so a racing client must fall back to TCP
    within its own CAD.  Clients that never query HTTPS (every
    pre-HEv3 client) connect plain TCP — the per-stage verdicts
    discriminate exactly that.
    """
    return (
        Scenario(
            name="quic-advertised",
            discriminates=RFC8305Parameter.PROTOCOL_RACING,
            rfc_clause="HEv3 §2, §4",
            description="HTTPS record advertises h3 and the server "
                        "answers QUIC: an HEv3 client prefers the QUIC "
                        "candidate; everything else stays on TCP.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "quic-advertised",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                repetitions=repetitions,
                service=ServiceSpec(https_alpn=("h3", "http/1.1"),
                                    quic_listener=True)),
        ),
        Scenario(
            name="quic-blackholed",
            discriminates=RFC8305Parameter.PROTOCOL_RACING,
            rfc_clause="HEv3 §4",
            description="The same advertisement with the QUIC return "
                        "path dropped: a racing client must still "
                        "reach the host over TCP one CAD later.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "quic-blackholed",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                repetitions=repetitions,
                service=ServiceSpec(https_alpn=("h3", "http/1.1"),
                                    quic_listener=True),
                impairments=(ImpairmentSpec(
                    protocol=Protocol.QUIC, loss=1.0,
                    name="quic-blackhole"),)),
        ),
    )


def svcb_battery(repetitions: int = 1) -> "Tuple[Scenario, ...]":
    """The SVCB/HTTPS-record battery (resolution stage).

    Discriminates whether a client *asks* for HTTPS records at all,
    and whether it honors an advertised alternative port.
    """
    return (
        Scenario(
            name="https-query",
            discriminates=RFC8305Parameter.SVCB_DISCOVERY,
            rfc_clause="HEv3 §3, RFC 9460",
            description="A plain HTTPS record is published: does the "
                        "client even send the type-65 query?",
            case=TestCaseConfig(
                name=CASE_PREFIX + "https-query",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                repetitions=repetitions,
                service=ServiceSpec(https_alpn=("http/1.1",))),
        ),
        Scenario(
            name="svcb-alt-port",
            discriminates=RFC8305Parameter.SVCB_DISCOVERY,
            rfc_clause="HEv3 §3, RFC 9460 §7.2",
            description="The HTTPS record advertises port 8443 (also "
                        "served): an SVCB-consuming client connects "
                        "there, everything else stays on :80.",
            case=TestCaseConfig(
                name=CASE_PREFIX + "svcb-alt-port",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                repetitions=repetitions,
                service=ServiceSpec(https_alpn=("http/1.1",),
                                    https_port=8443)),
        ),
    )


#: The special-prefix destinations of the sortlist battery, answered
#: alongside the standard IPv4 server address and attached to the
#: server node so either choice connects.
SORTLIST_DESTINATIONS = {
    "ula-vs-ipv4": "fd00:db8:cafe::10",       # ULA fc00::/7
    "site-local-vs-ipv4": "fec0:db8::10",     # deprecated site-local
    "teredo-vs-ipv4": "2001:0:db8::10",       # Teredo 2001::/32
}


def sortlist_battery(repetitions: int = 1) -> "Tuple[Scenario, ...]":
    """The per-OS RFC 6724 sortlist battery (sorting stage).

    Each scenario answers the test hostname with one special-prefix
    IPv6 destination plus the ordinary IPv4 one, both responsive.  An
    RFC 6724 sortlist puts IPv4 (precedence 35) above ULA (3),
    site-local (1), and Teredo (5); the legacy RFC 3484 table ranks
    all three *above* IPv4 — so the family of the first wire attempt
    reads the client's policy table straight off the capture.
    """
    from ..testbed.topology import SERVER_V4

    def scenario(name: str, description: str) -> Scenario:
        return Scenario(
            name=name,
            discriminates=RFC8305Parameter.DESTINATION_SORTING,
            rfc_clause="RFC 8305 §4, RFC 6724 §2.1",
            description=description,
            case=TestCaseConfig(
                name=CASE_PREFIX + name,
                kind=TestCaseKind.IMPAIRMENT,
                sweep=SweepSpec.fixed(0),
                repetitions=repetitions,
                service=ServiceSpec(addresses=(
                    SORTLIST_DESTINATIONS[name], SERVER_V4))),
        )

    return (
        scenario("ula-vs-ipv4",
                 "ULA vs IPv4: RFC 6724 prefers IPv4 over fc00::/7; "
                 "RFC 3484-era sortlists still lead with the ULA."),
        scenario("site-local-vs-ipv4",
                 "Deprecated site-local vs IPv4: precedence 1 under "
                 "RFC 6724, above IPv4 under RFC 3484."),
        scenario("teredo-vs-ipv4",
                 "Teredo vs IPv4: transitional space is precedence 5 "
                 "under RFC 6724; legacy tables have no Teredo row."),
    )


def scenario_by_name(name: str,
                     battery: "Optional[Tuple[Scenario, ...]]" = None
                     ) -> Scenario:
    for scenario in (battery if battery is not None else scenario_battery()):
        if scenario.name == name:
            return scenario
    raise KeyError(f"no scenario named {name!r}")
