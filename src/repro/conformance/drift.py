"""Fingerprint drift: what changed between two measured clients.

The ROADMAP scenario the paper's longitudinal framing implies: probe
two clients (typically two versions of one engine family) with the
same battery and diff their :class:`ClientFingerprint`s into a
per-parameter "what changed" table — implementation status flips,
measured-value drift, and RFC 8305 deviations appearing or
disappearing between releases.  Pure data-to-data: any two
fingerprints diff, whether they came from live probes, the campaign
store, or a results file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.render import format_ms, render_mark, render_table
from .fingerprint import ClientFingerprint, Deviation, ParameterVerdict

#: Measured values within this much of each other count as unchanged —
#: the same capture-granularity tolerance the verdict judges use.
DRIFT_TOLERANCE_MS = 1.0


@dataclass
class DriftRow:
    """One (parameter, scenario) pair compared across two clients."""

    parameter: str
    scenario: str
    verdict_a: Optional[ParameterVerdict] = None
    verdict_b: Optional[ParameterVerdict] = None

    @property
    def measured_delta_ms(self) -> Optional[float]:
        if (self.verdict_a is None or self.verdict_b is None
                or self.verdict_a.measured_ms is None
                or self.verdict_b.measured_ms is None):
            return None
        return self.verdict_b.measured_ms - self.verdict_a.measured_ms

    @property
    def changed(self) -> bool:
        a, b = self.verdict_a, self.verdict_b
        if (a is None) != (b is None):
            return True
        if a is None or b is None:
            return False
        if a.implemented != b.implemented:
            return True
        if (a.measured_ms is None) != (b.measured_ms is None):
            return True
        delta = self.measured_delta_ms
        return delta is not None and abs(delta) > DRIFT_TOLERANCE_MS


@dataclass
class FingerprintDiff:
    """The assembled drift report between two fingerprints."""

    client_a: str
    client_b: str
    rows: List[DriftRow] = field(default_factory=list)
    deviations_added: List[Deviation] = field(default_factory=list)
    deviations_removed: List[Deviation] = field(default_factory=list)

    @property
    def changed_rows(self) -> List[DriftRow]:
        return [row for row in self.rows if row.changed]

    @property
    def has_drift(self) -> bool:
        return bool(self.changed_rows or self.deviations_added
                    or self.deviations_removed)


def diff_fingerprints(a: ClientFingerprint,
                      b: ClientFingerprint) -> FingerprintDiff:
    """Pair up verdicts by (parameter, scenario) and diff them.

    Row order follows ``a``'s verdict order (the battery order), with
    any verdict only ``b`` produced appended — so two fingerprints of
    the same battery diff in a stable, diffable order.
    """
    diff = FingerprintDiff(client_a=a.client, client_b=b.client)
    by_key_b = {(v.parameter, v.scenario): v for v in b.verdicts}
    seen = set()
    for verdict in a.verdicts:
        key = (verdict.parameter, verdict.scenario)
        seen.add(key)
        diff.rows.append(DriftRow(
            parameter=verdict.parameter.short, scenario=verdict.scenario,
            verdict_a=verdict, verdict_b=by_key_b.get(key)))
    for verdict in b.verdicts:
        key = (verdict.parameter, verdict.scenario)
        if key not in seen:
            diff.rows.append(DriftRow(
                parameter=verdict.parameter.short,
                scenario=verdict.scenario, verdict_b=verdict))
    flags_a = {(d.requirement, d.clause, d.description)
               for d in a.deviations}
    flags_b = {(d.requirement, d.clause, d.description)
               for d in b.deviations}
    diff.deviations_added = [d for d in b.deviations
                             if (d.requirement, d.clause, d.description)
                             not in flags_a]
    diff.deviations_removed = [d for d in a.deviations
                               if (d.requirement, d.clause, d.description)
                               not in flags_b]
    return diff


# --------------------------------------------------------------------------
# rendering
# --------------------------------------------------------------------------


def _ms(value: "Optional[float]") -> Optional[str]:
    return None if value is None else format_ms(value / 1000.0, digits=1)


def _impl_cell(row: DriftRow) -> str:
    def mark(verdict: "Optional[ParameterVerdict]") -> str:
        return "-" if verdict is None else render_mark(verdict.implemented)

    return f"{mark(row.verdict_a)} -> {mark(row.verdict_b)}"


def _measured_cell(row: DriftRow) -> Optional[str]:
    a = _ms(row.verdict_a.measured_ms) if row.verdict_a else None
    b = _ms(row.verdict_b.measured_ms) if row.verdict_b else None
    if a is None and b is None:
        return None
    return f"{a or '-'} -> {b or '-'}"


def render_fingerprint_diff(diff: FingerprintDiff) -> str:
    """The "what changed" table plus deviation churn."""
    title = (f"Fingerprint drift: {diff.client_a} -> {diff.client_b}")
    headers = ["Scenario", "Parameter", "Impl.", "Measured", "Delta",
               "Changed"]
    rows = []
    for row in diff.rows:
        delta = row.measured_delta_ms
        rows.append([
            row.scenario,
            row.parameter,
            _impl_cell(row),
            _measured_cell(row),
            None if delta is None else f"{delta:+.1f} ms",
            "CHANGED" if row.changed else None,
        ])
    lines = [render_table(headers, rows, title=title), ""]
    if diff.deviations_added:
        lines.append(f"deviations gained by {diff.client_b}:")
        for deviation in diff.deviations_added:
            lines.append(f"  [{deviation.requirement.value}] "
                         f"{deviation.clause} — {deviation.description}")
    if diff.deviations_removed:
        lines.append(f"deviations resolved since {diff.client_a}:")
        for deviation in diff.deviations_removed:
            lines.append(f"  [{deviation.requirement.value}] "
                         f"{deviation.clause} — {deviation.description}")
    if not diff.has_drift:
        lines.append("no behavioural drift: every verdict and "
                     "deviation matches")
    else:
        lines.append(f"{len(diff.changed_rows)} of {len(diff.rows)} "
                     f"verdicts drifted; "
                     f"+{len(diff.deviations_added)}/"
                     f"-{len(diff.deviations_removed)} deviations")
    return "\n".join(lines)


def fingerprint_diff_to_dict(diff: FingerprintDiff) -> dict:
    """Deterministic machine-readable form of the drift report."""
    def verdict_dict(verdict: "Optional[ParameterVerdict]"):
        if verdict is None:
            return None
        return {"implemented": verdict.implemented,
                "measured_ms": verdict.measured_ms,
                "nominal_ms": verdict.nominal_ms}

    return {
        "client_a": diff.client_a,
        "client_b": diff.client_b,
        "rows": [{
            "parameter": row.parameter,
            "scenario": row.scenario,
            "a": verdict_dict(row.verdict_a),
            "b": verdict_dict(row.verdict_b),
            "measured_delta_ms": row.measured_delta_ms,
            "changed": row.changed,
        } for row in diff.rows],
        "deviations_added": [{
            "requirement": d.requirement.value, "clause": d.clause,
            "description": d.description} for d in diff.deviations_added],
        "deviations_removed": [{
            "requirement": d.requirement.value, "clause": d.clause,
            "description": d.description}
            for d in diff.deviations_removed],
        "has_drift": diff.has_drift,
    }
