"""Declarative population distributions (the sampling subsystem's specs).

A :class:`PopulationSpec` describes a whole client population — OS and
sortlist shares, client-stack shares, CAD/RD parameter distributions,
resolver behaviours, and network-impairment mixes — as a composition of
small frozen distribution dataclasses.  The spec is *digest-able*: its
:meth:`~PopulationSpec.digest` runs the same canonical rendering the
campaign store uses for run configurations
(:func:`repro.testbed.store.config_digest`), so two specs with the same
content produce the same digest no matter the field or weight ordering
they were written in — categorical choices are sorted by name at
construction, and JSON objects parse into named dataclass fields.

Every distribution maps a uniform draw in ``[0, 1)`` through its
inverse CDF (:meth:`sample`).  The sampler keeps the uniform draw a
pure function of ``(population seed, field, sample index)`` —
independent of the distribution's *parameters* — so editing a
distribution remaps only the samples whose uniforms land in the region
that actually moved: the store keys of unchanged concrete samples stay
identical, and a spec edit invalidates exactly the affected sample
keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import NormalDist
from typing import Any, Dict, Mapping, Tuple, Union

from ..testbed.store import config_digest

#: Operating systems a population may contain, with their RFC 6724
#: policy table (android ships the linux table).
OS_SORTLISTS: "Mapping[str, str]" = {
    "linux": "linux",
    "windows": "windows",
    "macos": "macos",
    "android": "linux",
}

#: Client-stack families a population may mix (the engine taxonomy of
#: :mod:`repro.clients.profile`, plus the HEv3 draft reference).
STACK_FAMILIES = ("chromium", "gecko", "webkit", "curl", "wget", "hev3")

#: Resolver behaviours (mapped to DNS answer-delay impairments by the
#: sampler).
RESOLVER_BEHAVIORS = ("responsive", "slow", "lame-aaaa")

#: Named network-impairment mixes (mapped to netem stanzas by the
#: sampler).
IMPAIRMENT_MIXES = ("healthy", "jittery", "v6-jittery", "v6-lossy",
                    "congested")


class PopulationSpecError(ValueError):
    """A population spec failed to parse or validate."""


@dataclass(frozen=True)
class Categorical:
    """Weighted categorical shares, sampled by inverse CDF.

    Choices are normalized to name-sorted order at construction, so the
    digest of ``{"a": 1, "b": 3}`` equals the digest of
    ``{"b": 3, "a": 1}`` — share *content*, not spelling order, is what
    addresses the samples.
    """

    choices: "Tuple[Tuple[str, float], ...]"

    def __post_init__(self) -> None:
        if not self.choices:
            raise PopulationSpecError("categorical needs at least one "
                                      "choice")
        for name, weight in self.choices:
            if weight <= 0:
                raise PopulationSpecError(
                    f"categorical weight for {name!r} must be positive: "
                    f"{weight!r}")
        object.__setattr__(
            self, "choices",
            tuple(sorted((str(name), float(weight))
                         for name, weight in self.choices)))

    def sample(self, u: float) -> str:
        """The choice whose CDF interval contains ``u`` in [0, 1)."""
        total = sum(weight for _, weight in self.choices)
        acc = 0.0
        for name, weight in self.choices:
            acc += weight
            if u * total < acc:
                return name
        return self.choices[-1][0]  # u == 1 - eps rounding guard

    @property
    def names(self) -> "Tuple[str, ...]":
        return tuple(name for name, _ in self.choices)


@dataclass(frozen=True)
class Fixed:
    """A degenerate numeric distribution: every sample is ``value``."""

    value: float

    def sample(self, u: float) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform:
    """Uniform over ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise PopulationSpecError(
                f"uniform needs low <= high: [{self.low!r}, {self.high!r})")

    def sample(self, u: float) -> float:
        return self.low + u * (self.high - self.low)


@dataclass(frozen=True)
class Normal:
    """Normal via inverse CDF, clamped into ``[minimum, maximum]``."""

    mean: float
    stddev: float
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.stddev <= 0:
            raise PopulationSpecError(
                f"normal stddev must be positive: {self.stddev!r}")
        if self.maximum < self.minimum:
            raise PopulationSpecError(
                f"normal needs minimum <= maximum: "
                f"[{self.minimum!r}, {self.maximum!r}]")

    def sample(self, u: float) -> float:
        # inv_cdf is undefined at 0 and 1; the clamp bounds the tails
        # anyway, so squeezing u into the open interval loses nothing.
        u = min(max(u, 1e-9), 1.0 - 1e-9)
        value = NormalDist(self.mean, self.stddev).inv_cdf(u)
        return min(max(value, self.minimum), self.maximum)


@dataclass(frozen=True)
class Choice:
    """Weighted discrete numeric values (e.g. the fixed CADs clients
    actually ship), sampled like :class:`Categorical` but returning the
    value itself."""

    values: "Tuple[Tuple[float, float], ...]"  # (value, weight), value-sorted

    def __post_init__(self) -> None:
        if not self.values:
            raise PopulationSpecError("choice needs at least one value")
        for value, weight in self.values:
            if weight <= 0:
                raise PopulationSpecError(
                    f"choice weight for {value!r} must be positive: "
                    f"{weight!r}")
        object.__setattr__(
            self, "values",
            tuple(sorted((float(value), float(weight))
                         for value, weight in self.values)))

    def sample(self, u: float) -> float:
        total = sum(weight for _, weight in self.values)
        acc = 0.0
        for value, weight in self.values:
            acc += weight
            if u * total < acc:
                return value
        return self.values[-1][0]


NumericDistribution = Union[Fixed, Uniform, Normal, Choice]


def parse_numeric(data: Any, field: str) -> NumericDistribution:
    """One numeric distribution from its JSON form.

    Accepted forms: a bare number (→ :class:`Fixed`), or an object
    with a ``kind`` of ``fixed`` / ``uniform`` / ``normal`` /
    ``choice``.
    """
    if isinstance(data, (int, float)) and not isinstance(data, bool):
        return Fixed(float(data))
    if not isinstance(data, Mapping):
        raise PopulationSpecError(
            f"{field}: expected a number or a distribution object, got "
            f"{data!r}")
    kind = data.get("kind")
    try:
        if kind == "fixed":
            return Fixed(float(data["value"]))
        if kind == "uniform":
            return Uniform(float(data["low"]), float(data["high"]))
        if kind == "normal":
            return Normal(float(data["mean"]), float(data["stddev"]),
                          float(data["minimum"]), float(data["maximum"]))
        if kind == "choice":
            values = data["values"]
            weights = data.get("weights", [1.0] * len(values))
            if len(weights) != len(values):
                raise PopulationSpecError(
                    f"{field}: {len(values)} values but {len(weights)} "
                    "weights")
            return Choice(tuple(zip(map(float, values),
                                    map(float, weights))))
    except KeyError as exc:
        raise PopulationSpecError(
            f"{field}: {kind!r} distribution is missing field {exc}")
    raise PopulationSpecError(
        f"{field}: unknown distribution kind {kind!r} (expected fixed, "
        "uniform, normal, or choice)")


def _parse_shares(data: Any, field: str,
                  domain: "Tuple[str, ...]") -> Categorical:
    if not isinstance(data, Mapping) or not data:
        raise PopulationSpecError(
            f"{field}: expected a non-empty object of name → weight, "
            f"got {data!r}")
    unknown = sorted(set(data) - set(domain))
    if unknown:
        raise PopulationSpecError(
            f"{field}: unknown names {unknown} (expected a subset of "
            f"{sorted(domain)})")
    return Categorical(tuple(data.items()))


@dataclass(frozen=True)
class PopulationSpec:
    """A whole client population, declaratively.

    The digest is stable under field/weight reordering (see module
    docstring) and addresses the population in ``repro ls`` and the
    rendered artifacts; the *store* keys of individual samples are
    deliberately **not** derived from it — they digest each sample's
    concrete configuration, which is what makes spec edits invalidate
    exactly the samples they actually change.
    """

    os_shares: Categorical
    stack_shares: Categorical
    cad_ms: NumericDistribution
    rd_ms: NumericDistribution
    resolver_shares: Categorical
    impairment_shares: Categorical

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "PopulationSpec":
        """Parse the JSON object form (the ``--spec`` stanza)."""
        if not isinstance(data, Mapping):
            raise PopulationSpecError(
                f"population spec must be an object, got {data!r}")
        known = {"os", "stacks", "cad_ms", "rd_ms", "resolvers",
                 "impairments"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise PopulationSpecError(
                f"population spec: unknown fields {unknown} (expected "
                f"a subset of {sorted(known)})")
        missing = sorted(known - set(data))
        if missing:
            raise PopulationSpecError(
                f"population spec: missing fields {missing}")
        return cls(
            os_shares=_parse_shares(data["os"], "os",
                                    tuple(OS_SORTLISTS)),
            stack_shares=_parse_shares(data["stacks"], "stacks",
                                       STACK_FAMILIES),
            cad_ms=parse_numeric(data["cad_ms"], "cad_ms"),
            rd_ms=parse_numeric(data["rd_ms"], "rd_ms"),
            resolver_shares=_parse_shares(data["resolvers"], "resolvers",
                                          RESOLVER_BEHAVIORS),
            impairment_shares=_parse_shares(data["impairments"],
                                            "impairments",
                                            IMPAIRMENT_MIXES),
        )

    def digest(self) -> str:
        """Content digest over the canonical spec rendering — stable
        under field reordering by construction."""
        return config_digest(self)

    def short_digest(self) -> str:
        return self.digest()[:12]


#: Named population presets: JSON-shaped (so presets exercise the same
#: parser as ``--spec @file``), keyed by the name ``--spec`` accepts.
PRESETS: "Dict[str, Dict[str, Any]]" = {
    # A rough mix of today's client landscape: mostly Chromium-family
    # on Linux/Windows, fixed CADs near the values clients actually
    # ship, mostly healthy networks with a tail of impaired eyeballs.
    "default": {
        "os": {"linux": 0.52, "windows": 0.28, "macos": 0.12,
               "android": 0.08},
        "stacks": {"chromium": 0.55, "gecko": 0.18, "webkit": 0.14,
                   "curl": 0.06, "wget": 0.04, "hev3": 0.03},
        "cad_ms": {"kind": "choice", "values": [150, 200, 250, 300],
                   "weights": [0.10, 0.15, 0.35, 0.40]},
        "rd_ms": {"kind": "normal", "mean": 50, "stddev": 15,
                  "minimum": 10, "maximum": 100},
        "resolvers": {"responsive": 0.80, "slow": 0.15,
                      "lame-aaaa": 0.05},
        "impairments": {"healthy": 0.60, "v6-jittery": 0.20,
                        "v6-lossy": 0.15, "congested": 0.05},
    },
    # A population on struggling IPv6 paths: lame delegations, lossy
    # and jittery v6, aggressive CAD spread — the stress sweep for the
    # family-share experiment.
    "v6-challenged": {
        "os": {"linux": 0.45, "windows": 0.35, "macos": 0.10,
               "android": 0.10},
        "stacks": {"chromium": 0.50, "gecko": 0.20, "webkit": 0.10,
                   "curl": 0.08, "wget": 0.07, "hev3": 0.05},
        "cad_ms": {"kind": "uniform", "low": 100, "high": 400},
        "rd_ms": {"kind": "normal", "mean": 80, "stddev": 40,
                  "minimum": 10, "maximum": 250},
        "resolvers": {"responsive": 0.55, "slow": 0.25,
                      "lame-aaaa": 0.20},
        "impairments": {"healthy": 0.25, "jittery": 0.15,
                        "v6-jittery": 0.25, "v6-lossy": 0.25,
                        "congested": 0.10},
    },
}


def resolve_spec(text: "str | None") -> PopulationSpec:
    """The ``--spec`` knob: a preset name, ``@path`` to a JSON file,
    or an inline JSON object."""
    if text is None or text == "":
        text = "default"
    if text in PRESETS:
        return PopulationSpec.from_dict(PRESETS[text])
    if text.startswith("@"):
        path = Path(text[1:])
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise PopulationSpecError(f"spec file not found: {path}")
        except ValueError as exc:
            raise PopulationSpecError(f"spec file {path}: bad JSON: {exc}")
        return PopulationSpec.from_dict(data)
    if text.lstrip().startswith("{"):
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise PopulationSpecError(f"inline spec: bad JSON: {exc}")
        return PopulationSpec.from_dict(data)
    raise PopulationSpecError(
        f"unknown population spec {text!r}: expected a preset "
        f"({', '.join(sorted(PRESETS))}), '@path/to/spec.json', or an "
        "inline JSON object")
