"""The registered population experiments.

Two experiments share one campaign — same knobs, same sampled users,
same store keys — and differ only in what they aggregate from the
streamed records:

* ``population-latency`` — CDFs and quantiles of time-to-connect per
  IPv6-degradation level;
* ``population-family-share`` — which address family the population
  establishes over, overall and by client-stack family.

Both aggregate *incrementally* while the record stream drains
(:class:`~repro.analysis.stats.StreamingCDF` plus plain counters), so
a million-user campaign renders in memory proportional to its level
count, never its run count.  Heavy modules import inside the phase
methods, like every other catalogue entry, so registry construction
stays light.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..experiments.base import Artifact, Experiment, Knob, Session

#: CDF thresholds rendered per degradation level (ms).
CDF_THRESHOLDS_MS = (50, 100, 250, 500, 1000, 2500)

#: Quantiles rendered per degradation level.
QUANTILES = (0.10, 0.50, 0.90, 0.99)


class PopulationExperiment(Experiment):
    """Base: knobs, campaign construction, and streamed aggregation
    shared by both population experiments."""

    paper = "§7 outlook; Piraux 2023 (population CDFs)"
    json_capable = True
    knobs = (
        Knob("samples", type=int, default=250,
             help="sampled users in the population (default 250)"),
        Knob("spec", type=str, default="default",
             help="population spec: a preset name (default, "
                  "v6-challenged), '@path/to/spec.json', or an inline "
                  "JSON object"),
        Knob("degrade_stop", type=int, default=200,
             help="IPv6 degradation sweep upper bound in ms "
                  "(default 200)"),
        Knob("degrade_step", type=int, default=100,
             help="IPv6 degradation sweep step in ms (default 100)"),
    )

    def _spec(self, session: Session):
        from .distributions import PopulationSpecError, resolve_spec

        try:
            return resolve_spec(session.knob("spec", "default"))
        except PopulationSpecError as exc:
            raise SystemExit(f"repro {self.name}: {exc}")

    def _runner(self, session: Session):
        from ..testbed.config import SweepSpec
        from .campaign import PopulationRunner

        samples = session.knob("samples", 250)
        if samples < 1:
            raise SystemExit(
                f"repro {self.name}: --samples must be >= 1: {samples}")
        sweep = SweepSpec.range(0, session.knob("degrade_stop", 200),
                                session.knob("degrade_step", 100))
        return PopulationRunner(self._spec(session), samples,
                                seed=session.seed, degradation=sweep,
                                store=session.store,
                                resilience=session.resilience)

    def plan(self, session: Session) -> Iterator[str]:
        return self._runner(session).store_keys()

    def sample_space(self, session: Session
                     ) -> "Optional[Tuple[int, str]]":
        return (session.knob("samples", 250),
                self._spec(session).short_digest())

    def execute(self, session: Session) -> Any:
        runner = self._runner(session)
        levels = {value_ms: self._level_aggregate()
                  for value_ms in runner.degradation}
        for record in runner.stream(workers=session.workers):
            self._aggregate(levels[record.value_ms], record)
        return {
            "experiment": self.name,
            "samples": runner.samples,
            "seed": session.seed,
            "spec_digest": runner.population_spec.digest(),
            "spec_label": self._spec_label(session),
            "levels": [dict(self._level_result(aggregate),
                            value_ms=value_ms)
                       for value_ms, aggregate in levels.items()],
        }

    def _spec_label(self, session: Session) -> str:
        from .distributions import PRESETS

        text = session.knob("spec", "default") or "default"
        return text if text in PRESETS else "custom"

    def _header(self, result: "Dict[str, Any]") -> str:
        return (f"{len(result['levels'])} IPv6 degradation levels · "
                f"{result['samples']} sampled users · spec "
                f"{result['spec_label']} "
                f"(digest {result['spec_digest'][:12]}) · seed "
                f"{result['seed']}")

    # subclass hooks ---------------------------------------------------------

    def _level_aggregate(self) -> Any:
        raise NotImplementedError

    def _aggregate(self, aggregate: Any, record) -> None:
        raise NotImplementedError

    def _level_result(self, aggregate: Any) -> "Dict[str, Any]":
        raise NotImplementedError


def _stack_family(client_name: str) -> str:
    """``"pop-chromium mix"`` → ``"chromium"`` (the sampled stack)."""
    head = client_name.split(" ", 1)[0]
    return head[4:] if head.startswith("pop-") else head


class PopulationLatencyExperiment(PopulationExperiment):
    name = "population-latency"
    title = "population time-to-connect CDFs under IPv6 degradation"

    def _level_aggregate(self) -> Any:
        from ..analysis.stats import StreamingCDF

        # 1 ms bins over latency in ms: quantiles deterministic to the
        # millisecond, memory bounded by the latency spread.
        return {"cdf": StreamingCDF(bin_width=1.0), "failed": 0}

    def _aggregate(self, aggregate: Any, record) -> None:
        if (record.completed and record.error is None
                and record.duration_s is not None):
            aggregate["cdf"].add(record.duration_s * 1000.0)
        else:
            aggregate["failed"] += 1

    def _level_result(self, aggregate: Any) -> "Dict[str, Any]":
        cdf = aggregate["cdf"]
        return {
            "established": cdf.count,
            "failed": aggregate["failed"],
            "mean_ms": cdf.mean(),
            "quantiles_ms": {f"p{int(q * 100)}": cdf.quantile(q)
                             for q in QUANTILES},
            "cdf": {f"le_{t}ms": cdf.cdf_at(float(t))
                    for t in CDF_THRESHOLDS_MS},
        }

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_table

        def ms(value: "Optional[float]") -> "Optional[str]":
            return None if value is None else f"{value:.1f} ms"

        def pct(value: "Optional[float]") -> "Optional[str]":
            return None if value is None else f"{value * 100:.1f}%"

        quantile_rows = []
        cdf_rows = []
        for level in result["levels"]:
            label = f"+{level['value_ms']} ms"
            quantiles = level["quantiles_ms"]
            quantile_rows.append(
                [label, str(level["established"]),
                 str(level["failed"]) if level["failed"] else None,
                 ms(quantiles["p10"]), ms(quantiles["p50"]),
                 ms(quantiles["p90"]), ms(quantiles["p99"]),
                 ms(level["mean_ms"])])
            cdf = level["cdf"]
            cdf_rows.append([label] + [pct(cdf[f"le_{t}ms"])
                                       for t in CDF_THRESHOLDS_MS])
        quantile_table = render_table(
            ["v6 degradation", "established", "failed", "p10", "p50",
             "p90", "p99", "mean"], quantile_rows,
            title="Population time-to-connect quantiles")
        cdf_table = render_table(
            ["v6 degradation"] + [f"≤{t}ms"
                                  for t in CDF_THRESHOLDS_MS],
            cdf_rows, title="Time-to-connect CDF (share established "
                            "within threshold)")
        return Artifact(
            text=(f"{quantile_table}\n\n{cdf_table}\n\n"
                  f"{self._header(result)}"),
            data=result)


class PopulationFamilyShareExperiment(PopulationExperiment):
    name = "population-family-share"
    title = "population address-family share under IPv6 degradation"

    def _level_aggregate(self) -> Any:
        return {"v6": 0, "v4": 0, "none": 0,
                "families": {}}  # stack family -> {"v6": n, "total": n}

    def _aggregate(self, aggregate: Any, record) -> None:
        from ..simnet.addr import Family

        family = record.winning_family
        if family is Family.V6:
            aggregate["v6"] += 1
        elif family is Family.V4:
            aggregate["v4"] += 1
        else:
            aggregate["none"] += 1
        stack = _stack_family(record.client)
        per_stack = aggregate["families"].setdefault(
            stack, {"v6": 0, "total": 0})
        per_stack["total"] += 1
        if family is Family.V6:
            per_stack["v6"] += 1

    def _level_result(self, aggregate: Any) -> "Dict[str, Any]":
        total = aggregate["v6"] + aggregate["v4"] + aggregate["none"]
        return {
            "v6": aggregate["v6"],
            "v4": aggregate["v4"],
            "none": aggregate["none"],
            "v6_share": aggregate["v6"] / total if total else None,
            "families": {
                stack: {"v6": counts["v6"], "total": counts["total"],
                        "v6_share": counts["v6"] / counts["total"]}
                for stack, counts in sorted(
                    aggregate["families"].items())},
        }

    def render(self, result: Any) -> Artifact:
        from ..analysis import render_table

        def pct(value: "Optional[float]") -> "Optional[str]":
            return None if value is None else f"{value * 100:.1f}%"

        share_rows = []
        for level in result["levels"]:
            share_rows.append(
                [f"+{level['value_ms']} ms", str(level["v6"]),
                 str(level["v4"]),
                 str(level["none"]) if level["none"] else None,
                 pct(level["v6_share"])])
        share_table = render_table(
            ["v6 degradation", "IPv6", "IPv4", "none", "IPv6 share"],
            share_rows, title="Established address family per "
                              "degradation level")

        stacks: "List[str]" = sorted(
            {stack for level in result["levels"]
             for stack in level["families"]})
        stack_rows = []
        for stack in stacks:
            row = [stack]
            for level in result["levels"]:
                counts = level["families"].get(stack)
                row.append(None if counts is None
                           else pct(counts["v6_share"]))
            stack_rows.append(row)
        stack_table = render_table(
            ["stack family"] + [f"+{level['value_ms']} ms"
                                for level in result["levels"]],
            stack_rows,
            title="IPv6 share by client-stack family")
        return Artifact(
            text=(f"{share_table}\n\n{stack_table}\n\n"
                  f"{self._header(result)}"),
            data=result)
