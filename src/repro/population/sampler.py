"""Seeded deterministic population sampling.

:class:`PopulationSampler` maps the coordinate ``(population seed,
sample index)`` to one concrete simulated user: a
:class:`~repro.clients.profile.ClientProfile` whose
:class:`~repro.core.policy.PolicyStack` is composed from the sampled
stack family, OS sortlist, and CAD/RD parameters, plus the impairment
stanzas of the sampled resolver behaviour and network mix.

Determinism and targeted invalidation both come from the same design:
every spec field gets its own uniform draw
``derive_rng(seed, "population", field, index).random()`` — a pure
function of the coordinate, *independent of the distribution's
parameters* — which is then mapped through the distribution's inverse
CDF.  Same coordinate → same user, across interpreters and pool
workers; and editing one distribution remaps only the samples whose
uniforms fall in the probability region that moved, so the campaign
store keys of every unchanged sample survive the edit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..clients.profile import (ClientProfile, chromium_stack, curl_stack,
                               gecko_stack, hev3_reference_stack,
                               webkit_stack, wget_stack)
from ..core.policy import PolicyStack
from ..dns.rdata import RdataType
from ..seeding import derive_rng
from ..simnet.addr import Family
from ..testbed.config import ImpairmentSpec
from .distributions import OS_SORTLISTS, PopulationSpec

#: Cosmetic OS label carried on sampled profiles (matches the
#: registry's ``os_hint`` spellings where one exists).
_OS_HINTS: "Mapping[str, str]" = {
    "linux": "Linux",
    "windows": "Windows 10",
    "macos": "Mac OS X 10.15.7",
    "android": "Android 10",
}

#: DNS answer-delay stanzas per resolver behaviour: a slow resolver
#: delays both record types; a lame-AAAA delegation stalls only the
#: AAAA answer (the §5.2 pathology, population-scaled).
RESOLVER_IMPAIRMENTS: "Mapping[str, Tuple[ImpairmentSpec, ...]]" = {
    "responsive": (),
    "slow": (
        ImpairmentSpec(dns_rtype=RdataType.A, delay_s=0.150,
                       name="resolver-slow-a"),
        ImpairmentSpec(dns_rtype=RdataType.AAAA, delay_s=0.150,
                       name="resolver-slow-aaaa"),
    ),
    "lame-aaaa": (
        ImpairmentSpec(dns_rtype=RdataType.AAAA, delay_s=2.5,
                       name="resolver-lame-aaaa"),
    ),
}

#: Netem stanzas per network-impairment mix, applied on top of the
#: campaign's value-scaled IPv6 degradation.
MIX_IMPAIRMENTS: "Mapping[str, Tuple[ImpairmentSpec, ...]]" = {
    "healthy": (),
    "jittery": (
        ImpairmentSpec(delay_s=0.015, jitter_s=0.010,
                       jitter_correlation=0.25, name="mix-jittery"),
    ),
    "v6-jittery": (
        ImpairmentSpec(family=Family.V6, delay_s=0.030, jitter_s=0.020,
                       jitter_correlation=0.25, name="mix-v6-jittery"),
    ),
    "v6-lossy": (
        ImpairmentSpec(family=Family.V6, loss=0.05, name="mix-v6-lossy"),
    ),
    "congested": (
        ImpairmentSpec(delay_s=0.010, rate_bps=5_000_000.0,
                       name="mix-congested"),
    ),
}


@dataclass(frozen=True)
class SampledUser:
    """One concrete simulated user: the sample's label coordinates
    plus the derived profile and impairment stanzas."""

    index: int
    os: str
    stack_family: str
    cad_ms: float
    rd_ms: float
    resolver: str
    impairment: str
    profile: ClientProfile
    impairments: "Tuple[ImpairmentSpec, ...]"


def _stack_for(family: str, sortlist: str, cad_s: float,
               rd_s: float) -> PolicyStack:
    """Compose the sampled stack: family picks the architecture, the
    sampled CAD/RD parameterize the stages that implement them."""
    if family == "chromium":
        return chromium_stack(cad=cad_s, sortlist=sortlist)
    if family == "gecko":
        return gecko_stack(cad=cad_s, sortlist=sortlist)
    if family == "webkit":
        # Dynamic CAD falls back to its maximum on a pristine testbed
        # (§5.1), so the sampled CAD parameterizes the cap — floored
        # at the RFC's recommended 100 ms to keep min <= rec <= max.
        return webkit_stack(maximum_cad=max(cad_s, 0.100),
                            sortlist=sortlist).with_resolution(
                                resolution_delay=rd_s)
    if family == "curl":
        return curl_stack(sortlist=sortlist).with_racing(
            connection_attempt_delay=cad_s)
    if family == "wget":
        # Strictly serial, no HE: the sampled CAD/RD do not apply, and
        # its destination ordering stays the legacy RFC 3484 table.
        return wget_stack()
    if family == "hev3":
        return hev3_reference_stack().with_racing(
            connection_attempt_delay=cad_s).with_resolution(
                resolution_delay=rd_s)
    raise ValueError(f"unknown stack family {family!r}")


class PopulationSampler:
    """Maps ``(spec, seed, index)`` to a :class:`SampledUser`."""

    def __init__(self, spec: PopulationSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def _unit(self, field: str, index: int) -> float:
        """The per-field uniform draw — a pure function of the
        coordinate, never of the distribution parameters."""
        return derive_rng(self.seed, "population", field, index).random()

    def user(self, index: int) -> SampledUser:
        if index < 0:
            raise ValueError(f"sample index must be >= 0: {index}")
        spec = self.spec
        os = spec.os_shares.sample(self._unit("os", index))
        family = spec.stack_shares.sample(self._unit("stack", index))
        cad_ms = spec.cad_ms.sample(self._unit("cad", index))
        rd_ms = spec.rd_ms.sample(self._unit("rd", index))
        resolver = spec.resolver_shares.sample(
            self._unit("resolver", index))
        impairment = spec.impairment_shares.sample(
            self._unit("impairment", index))

        # Floors keep every sampled value inside the stage validators:
        # CAD must be strictly positive, RD non-negative.
        cad_s = max(cad_ms, 1.0) / 1000.0
        rd_s = max(rd_ms, 0.0) / 1000.0
        profile = ClientProfile(
            name=f"pop-{family}",
            version="mix",
            released="01-2026",
            engine_family="reference" if family == "hev3" else family,
            kind=("browser" if family in ("chromium", "gecko", "webkit")
                  else "cli"),
            query_first=(RdataType.A if family in ("gecko", "wget")
                         else RdataType.AAAA),
            implements_happy_eyeballs=family != "wget",
            os_hint=_OS_HINTS[os],
            supports_web_tests=False,
            stack=_stack_for(family, OS_SORTLISTS[os], cad_s, rd_s),
        )
        return SampledUser(
            index=index, os=os, stack_family=family, cad_ms=cad_ms,
            rd_ms=rd_ms, resolver=resolver, impairment=impairment,
            profile=profile,
            impairments=(RESOLVER_IMPAIRMENTS[resolver]
                         + MIX_IMPAIRMENTS[impairment]))
