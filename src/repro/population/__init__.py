"""Population-mix Monte-Carlo campaigns.

Sample whole client populations from declarative distributions
(:mod:`repro.population.distributions`), map each ``(spec, seed,
index)`` coordinate to a concrete policy stack + impairment scenario
(:mod:`repro.population.sampler`), and stream the resulting paired
campaign through the existing store/executor/resilience machinery
(:mod:`repro.population.campaign`).  The registered experiments live
in :mod:`repro.population.experiments`.

Submodules import lazily so that building the experiment catalogue
(CLI parser construction, ``repro ls``) stays light.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "Categorical": "distributions",
    "Choice": "distributions",
    "Fixed": "distributions",
    "IMPAIRMENT_MIXES": "distributions",
    "Normal": "distributions",
    "OS_SORTLISTS": "distributions",
    "PRESETS": "distributions",
    "PopulationSpec": "distributions",
    "PopulationSpecError": "distributions",
    "RESOLVER_BEHAVIORS": "distributions",
    "STACK_FAMILIES": "distributions",
    "Uniform": "distributions",
    "parse_numeric": "distributions",
    "resolve_spec": "distributions",
    "PopulationSampler": "sampler",
    "SampledUser": "sampler",
    "DEGRADATION_SPEC": "campaign",
    "DEFAULT_DEGRADATION": "campaign",
    "PopulationRunner": "campaign",
    "PopulationFamilyShareExperiment": "experiments",
    "PopulationLatencyExperiment": "experiments",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .campaign import (DEFAULT_DEGRADATION, DEGRADATION_SPEC,
                           PopulationRunner)
    from .distributions import (IMPAIRMENT_MIXES, OS_SORTLISTS, PRESETS,
                                RESOLVER_BEHAVIORS, STACK_FAMILIES,
                                Categorical, Choice, Fixed, Normal,
                                PopulationSpec, PopulationSpecError,
                                Uniform, parse_numeric, resolve_spec)
    from .experiments import (PopulationFamilyShareExperiment,
                              PopulationLatencyExperiment)
    from .sampler import PopulationSampler, SampledUser


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
