"""The population campaign: one runner, one run per (user, level).

:class:`PopulationRunner` adapts the sampled population to the
existing campaign machinery by *pairing* ``cases[i]`` with
``clients[i]`` — each sampled user is one case (its impairment
scenario) plus one client (its sampled profile) — instead of the
default cases × clients cross product.  Everything downstream rides
unchanged: the content-addressed store keys digest each sample's
concrete case + profile, :class:`~repro.testbed.parallel
.CampaignExecutor` fans the paired specs out over the pool,
resilience/journal/resume address runs by the sample-unique case name,
and ``repro cache gc`` marks liveness through :meth:`store_keys`.

Samples materialize lazily and memoize: enumeration touches no
sampler state (every case shares the degradation sweep), and the
runner pickles as its recipe — spec, sample count, seed, sweep — so a
10 000-user campaign ships a few hundred bytes to each pool worker
instead of 10 000 dataclasses, and each worker materializes only the
indices it executes.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Dict, List, Optional, Tuple

from ..simnet.addr import Family
from ..simnet.packet import Protocol
from ..testbed.config import (ImpairmentSpec, SweepSpec, TestCaseConfig,
                              TestCaseKind)
from ..testbed.resilience import Resilience
from ..testbed.runner import TestRunner
from ..testbed.store import CampaignStore
from .distributions import PopulationSpec
from .sampler import PopulationSampler, SampledUser

#: The campaign's IPv6-degradation axis: the sweep value (ms) delays
#: IPv6 TCP on the server egress — the population-scale analogue of
#: the Figure 2 CAD sweep.
DEGRADATION_SPEC = ImpairmentSpec(family=Family.V6, protocol=Protocol.TCP,
                                  value_scaled=True, name="v6-degradation")

#: Default degradation sweep: healthy, inflated, badly inflated.
DEFAULT_DEGRADATION = SweepSpec.fixed(0, 100, 200)


class _SampleColumn(Sequence):
    """Lazy ``cases``/``clients`` view over the runner's sample memo."""

    def __init__(self, runner: "PopulationRunner", role: str) -> None:
        self._runner = runner
        self._role = role

    def __len__(self) -> int:
        return self._runner.samples

    def __getitem__(self, index: int):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        case, user = self._runner.materialize(index)
        return case if self._role == "case" else user.profile


def _rebuild_runner(spec: PopulationSpec, samples: int, seed: int,
                    degradation: SweepSpec, run_timeout: float,
                    resolver_timeout: float, store, resilience
                    ) -> "PopulationRunner":
    return PopulationRunner(spec, samples, seed=seed,
                            degradation=degradation,
                            run_timeout=run_timeout,
                            resolver_timeout=resolver_timeout,
                            store=store, resilience=resilience)


class PopulationRunner(TestRunner):
    """A :class:`TestRunner` over a sampled population.

    ``cases[i]`` and ``clients[i]`` describe the same sampled user;
    :meth:`enumerate_specs` pairs them, so the campaign is
    ``samples × len(degradation)`` runs — never a cross product.
    """

    def __init__(self, spec: PopulationSpec, samples: int, seed: int = 0,
                 degradation: SweepSpec = DEFAULT_DEGRADATION,
                 run_timeout: float = 30.0,
                 resolver_timeout: float = 5.0,
                 store: Optional[CampaignStore] = None,
                 resilience: Optional[Resilience] = None) -> None:
        if samples < 1:
            raise ValueError(f"samples must be >= 1: {samples}")
        self.population_spec = spec
        self.samples = samples
        self.degradation = degradation
        self.run_timeout = run_timeout
        self.sampler = PopulationSampler(spec, seed=seed)
        self._memo: "Dict[int, Tuple[TestCaseConfig, SampledUser]]" = {}
        # TestRunner fields, set directly: the base initializer would
        # materialize list(clients)/list(cases), defeating laziness.
        self.clients = _SampleColumn(self, "client")
        self.cases = _SampleColumn(self, "case")
        self.seed = seed
        self.resolver_timeout = resolver_timeout
        self.hev3_flag = False
        self.store = store
        self.resilience = resilience

    def __reduce__(self):
        return (_rebuild_runner,
                (self.population_spec, self.samples, self.seed,
                 self.degradation, self.run_timeout,
                 self.resolver_timeout, self.store, self.resilience))

    def materialize(self, index: int
                    ) -> "Tuple[TestCaseConfig, SampledUser]":
        """Sample user ``index`` (memoized) as (case, user)."""
        pair = self._memo.get(index)
        if pair is None:
            if not 0 <= index < self.samples:
                raise IndexError(f"sample index out of range: {index}")
            user = self.sampler.user(index)
            case = TestCaseConfig(
                name=f"pop-{index:06d}",
                kind=TestCaseKind.IMPAIRMENT,
                sweep=self.degradation,
                repetitions=1,
                run_timeout=self.run_timeout,
                impairments=(DEGRADATION_SPEC,) + user.impairments)
            pair = (case, user)
            self._memo[index] = pair
        return pair

    def user(self, index: int) -> SampledUser:
        return self.materialize(index)[1]

    def enumerate_specs(self) -> "List":
        """Paired enumeration: sample-major, degradation-minor.

        Touches no sampler state — every case shares the degradation
        sweep — so planning the spec list for 10⁶ users is O(runs)
        tuple construction, not 10⁶ samplings.
        """
        from ..testbed.parallel import RunSpec

        return [RunSpec(index, index, value_ms, 0)
                for index in range(self.samples)
                for value_ms in self.degradation]
