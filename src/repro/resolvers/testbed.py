"""Resolver measurement testbed (§4.2).

"Instead of different domain names inside a single zone, we created
entirely different zones for each measured delay.  Our traffic shaping
is applied to the name server records ... and the corresponding IP
addresses.  Additionally, we use unique zone apexes and unique
authoritative name server names to reduce the impact of caching."

This module builds exactly that: a resolver host walking a real
delegation (root → measurement zone) toward an authoritative server
whose per-zone IPv6 name-server address is netem-delayed, with all
observables collected from the *authoritative* query log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dns.auth import AuthoritativeServer, QueryLogEntry
from ..dns.name import DNSName
from ..dns.nsselect import ResolverBehavior
from ..dns.rdata import RdataType, TXT
from ..dns.recursive import RecursiveResolver
from ..dns.zone import Zone
from ..seeding import stable_run_seed
from ..simnet.addr import Family
from ..simnet.netem import NetemFilter, NetemRule, NetemSpec
from ..simnet.network import Network
from ..testbed.store import CampaignStore

RESOLVER_V4 = "192.0.2.100"
RESOLVER_V6 = "2001:db8:2::100"
ROOT_V4 = "192.0.2.53"


@dataclass
class ResolverRunObservation:
    """Everything the authoritative side observed in one resolution."""

    zone: str
    delay_ms: int
    success: bool
    #: Family of the first query for the probe name at the zone NS.
    first_probe_family: Optional[Family] = None
    #: Family of the query that was answered in time (used for the result).
    answering_family: Optional[Family] = None
    #: Packets to the zone's IPv6 NS address (retries visible here).
    v6_packets: int = 0
    v4_packets: int = 0
    #: True if an AAAA query for the NS name preceded the first probe query.
    aaaa_before_probe: Optional[bool] = None
    #: True if the AAAA (NS name) query preceded the A (NS name) query.
    aaaa_before_a: Optional[bool] = None
    #: Gap between first IPv6 probe query and first IPv4 probe query (s).
    fallback_gap_s: Optional[float] = None
    duration_s: float = 0.0


class ResolverTestbed:
    """One isolated resolution measurement against a shaped zone."""

    def __init__(self, behavior: ResolverBehavior, seed: int = 0,
                 delay_ms: int = 0, zone_index: int = 0,
                 dual_stack_resolver: bool = True,
                 v6_only_zone: bool = False) -> None:
        self.behavior = behavior
        self.delay_ms = delay_ms
        self.network = Network(seed=seed)
        self.sim = self.network.sim
        segment = self.network.add_segment("resolver-lab")

        # Unique zone apex + unique NS name + unique NS addresses per
        # measurement (the paper's anti-caching measures).
        self.zone_apex = f"m{zone_index}-d{delay_ms}.example"
        self.ns_name = f"ns1.{self.zone_apex}"
        self.ns_v4 = f"198.51.100.{(zone_index % 200) + 1}"
        self.ns_v6 = f"2001:db8:3::{(zone_index % 60000) + 1:x}"

        resolver_addresses = [RESOLVER_V4]
        if dual_stack_resolver:
            resolver_addresses.append(RESOLVER_V6)
        self.resolver_host = self.network.add_host("resolver")
        self.network.connect(self.resolver_host, segment,
                             resolver_addresses)

        self.auth_host = self.network.add_host("auth")
        auth_addresses = [ROOT_V4, self.ns_v6]
        if not v6_only_zone:
            auth_addresses.append(self.ns_v4)
        self.auth_iface = self.network.connect(self.auth_host, segment,
                                               auth_addresses)

        self.v6_only_zone = v6_only_zone
        self._build_zones()
        # Two address-scoped servers on the auth node: the root zone
        # answers only on the root address, the measurement zone only on
        # its own (per-zone, shapeable) name-server addresses — so the
        # resolver must actually walk the delegation.
        self.root_server = AuthoritativeServer(
            self.auth_host, [self.root_zone],
            addresses=[ROOT_V4]).start()
        zone_addresses = ([self.ns_v6] if v6_only_zone
                          else [self.ns_v4, self.ns_v6])
        self.auth = AuthoritativeServer(
            self.auth_host, [self.zone],
            addresses=zone_addresses).start()
        self._apply_shaping()

        self.resolver = RecursiveResolver(
            self.resolver_host,
            root_hints={"a.root-servers.example": [ROOT_V4]},
            behavior=behavior,
            rng_label=f"{behavior.name}:{zone_index}:{delay_ms}")

    # -- zones -----------------------------------------------------------------

    def _build_zones(self) -> None:
        self.root_zone = Zone(".")
        glue = {self.ns_name: ([self.ns_v6] if self.v6_only_zone
                               else [self.ns_v4, self.ns_v6])}
        self.root_zone.delegate(
            DNSName.from_text(self.zone_apex),
            [DNSName.from_text(self.ns_name)], glue=glue)

        self.zone = Zone(self.zone_apex)
        self.zone.add(f"probe.{self.zone_apex}",
                      TXT.from_text("happy-eyeballs-probe"))
        if not self.v6_only_zone:
            self.zone.add_address(self.ns_name, self.ns_v4)
        self.zone.add_address(self.ns_name, self.ns_v6)

    def _apply_shaping(self) -> None:
        """Delay responses leaving the zone's IPv6 NS address.

        Shaping the server's egress (like the paper's tc-netem on the
        authoritative hosts) keeps the query-arrival order at the
        server intact — the query log *is* the observable.
        """
        if self.delay_ms <= 0:
            return
        self.auth_iface.egress.add_rule(NetemRule(
            spec=NetemSpec(delay=self.delay_ms / 1000.0),
            filter=NetemFilter(src_addresses=[self.ns_v6]),
            name="ns-v6-delay"))

    # -- execution ----------------------------------------------------------------

    @property
    def probe_name(self) -> str:
        return f"probe.{self.zone_apex}"

    def run(self, timeout: float = 30.0) -> ResolverRunObservation:
        """Resolve the probe name once and analyze the auth query log."""
        process = self.resolver.resolve(self.probe_name, RdataType.TXT)
        process.defused = True
        started = self.sim.now
        finished_at: List[float] = []
        process.add_callback(lambda _ev: finished_at.append(self.sim.now))
        self.sim.run(until=started + timeout)
        success = process.triggered and process.ok
        observation = self._analyze(success)
        observation.duration_s = ((finished_at[0] - started)
                                  if finished_at else timeout)
        return observation

    # -- analysis ------------------------------------------------------------------

    def _analyze(self, success: bool) -> ResolverRunObservation:
        probe = DNSName.from_text(self.probe_name)
        ns_name = DNSName.from_text(self.ns_name)
        observation = ResolverRunObservation(
            zone=self.zone_apex, delay_ms=self.delay_ms, success=success)

        probe_queries = [entry for entry in self.auth.query_log
                         if entry.qname == probe]
        ns_aaaa = [entry for entry in self.auth.query_log
                   if entry.qname == ns_name
                   and entry.qtype is RdataType.AAAA]
        ns_a = [entry for entry in self.auth.query_log
                if entry.qname == ns_name and entry.qtype is RdataType.A]

        if probe_queries:
            first = probe_queries[0]
            observation.first_probe_family = first.transport_family
            observation.v6_packets = sum(
                1 for entry in probe_queries
                if entry.transport_family is Family.V6)
            observation.v4_packets = sum(
                1 for entry in probe_queries
                if entry.transport_family is Family.V4)
            if success:
                # The answering query is the last one the resolver sent
                # whose response it could still use: with serial
                # attempts this is simply the final probe query.
                observation.answering_family = (
                    probe_queries[-1].transport_family)
            v6_times = [entry.timestamp for entry in probe_queries
                        if entry.transport_family is Family.V6]
            v4_times = [entry.timestamp for entry in probe_queries
                        if entry.transport_family is Family.V4]
            if v6_times and v4_times and min(v6_times) < min(v4_times):
                observation.fallback_gap_s = min(v4_times) - min(v6_times)
            if ns_aaaa:
                observation.aaaa_before_probe = (
                    ns_aaaa[0].timestamp < first.timestamp)
        if ns_aaaa and ns_a:
            observation.aaaa_before_a = (
                ns_aaaa[0].timestamp < ns_a[0].timestamp)
        return observation


@dataclass
class ResolverCampaignResult:
    """Aggregate over many runs of one resolver behaviour."""

    behavior_name: str
    observations: List[ResolverRunObservation] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.observations)

    @property
    def ipv6_share(self) -> Optional[float]:
        """Share of runs whose first probe query used IPv6 (%, Table 3)."""
        families = [o.first_probe_family for o in self.observations
                    if o.first_probe_family is not None]
        if not families:
            return None
        v6 = sum(1 for family in families if family is Family.V6)
        return 100.0 * v6 / len(families)

    @property
    def max_ipv6_delay_ms(self) -> Optional[int]:
        """Largest delay still *answered* over IPv6 in any run."""
        delays = [o.delay_ms for o in self.observations
                  if o.answering_family is Family.V6]
        return max(delays) if delays else None

    def reliable_max_ipv6_delay_ms(self) -> Optional[int]:
        """Largest delay where *every* IPv6-first run stayed on IPv6.

        This is Table 3's semantics: probabilistic retries (Unbound's
        44 % backoff) can rescue IPv6 at larger delays occasionally,
        but the reported maximum is the delay up to which IPv6 is used
        *reliably*.
        """
        by_delay: dict = {}
        for observation in self.observations:
            if observation.first_probe_family is not Family.V6:
                continue
            entry = by_delay.setdefault(observation.delay_ms, [])
            entry.append(observation.answering_family is Family.V6)
        reliable = [delay for delay, outcomes in by_delay.items()
                    if outcomes and all(outcomes)]
        return max(reliable) if reliable else None

    @property
    def max_v6_packets(self) -> int:
        return max((o.v6_packets for o in self.observations), default=0)

    @property
    def aaaa_sent(self) -> bool:
        return any(o.aaaa_before_probe is not None
                   for o in self.observations)

    def median_fallback_gap_ms(self) -> Optional[float]:
        from statistics import median

        gaps = [o.fallback_gap_s for o in self.observations
                if o.fallback_gap_s is not None]
        return median(gaps) * 1000.0 if gaps else None


# --------------------------------------------------------------------------
# campaign execution through the content-addressed store
# --------------------------------------------------------------------------


def encode_observation(observation: ResolverRunObservation) -> dict:
    """JSON-shaped dict; :func:`decode_observation` rebuilds an
    ``==``-identical observation (the store's byte-identity contract)."""
    def fam(value: "Optional[Family]") -> Optional[str]:
        return value.name if value is not None else None

    return {
        "zone": observation.zone,
        "delay_ms": observation.delay_ms,
        "success": observation.success,
        "first_probe_family": fam(observation.first_probe_family),
        "answering_family": fam(observation.answering_family),
        "v6_packets": observation.v6_packets,
        "v4_packets": observation.v4_packets,
        "aaaa_before_probe": observation.aaaa_before_probe,
        "aaaa_before_a": observation.aaaa_before_a,
        "fallback_gap_s": observation.fallback_gap_s,
        "duration_s": observation.duration_s,
    }


def decode_observation(data: dict) -> ResolverRunObservation:
    """Rebuild a cached observation; raises on any malformed entry."""
    def fam(value) -> "Optional[Family]":
        return Family[value] if value is not None else None

    return ResolverRunObservation(
        zone=data["zone"],
        delay_ms=int(data["delay_ms"]),
        success=bool(data["success"]),
        first_probe_family=fam(data["first_probe_family"]),
        answering_family=fam(data["answering_family"]),
        v6_packets=int(data["v6_packets"]),
        v4_packets=int(data["v4_packets"]),
        aaaa_before_probe=data["aaaa_before_probe"],
        aaaa_before_a=data["aaaa_before_a"],
        fallback_gap_s=(float(data["fallback_gap_s"])
                        if data["fallback_gap_s"] is not None else None),
        duration_s=float(data["duration_s"]),
    )


def resolver_run_key(behavior: ResolverBehavior, seed: int,
                     delay_ms: int, repetition: int) -> str:
    """Content address of one resolver run: the full behaviour
    dataclass (any knob change misses) plus the run coordinates."""
    run_seed = stable_run_seed(seed, behavior.name, delay_ms, repetition)
    return CampaignStore.key("resolver-run", behavior, run_seed,
                             delay_ms, repetition)


def resolver_campaign_keys(behavior: ResolverBehavior,
                           delays_ms: "list[int]", repetitions: int,
                           seed: int) -> "List[str]":
    """Every store key a campaign references (``repro cache gc``)."""
    return [resolver_run_key(behavior, seed, delay_ms, repetition)
            for delay_ms in delays_ms
            for repetition in range(repetitions)]


def run_resolver_campaign(behavior: ResolverBehavior,
                          delays_ms: "list[int]",
                          repetitions: int = 4,
                          seed: int = 0,
                          store: "Optional[CampaignStore]" = None
                          ) -> ResolverCampaignResult:
    """Sweep delays × repetitions for one resolver behaviour.

    Every run is a pure function of ``(behavior, seed, delay_ms,
    repetition)`` — the zone apex and name-server addresses derive
    from the repetition index, not from a campaign-wide counter — so
    with ``store`` attached, unchanged runs replay from the
    content-addressed cache exactly like testbed runs, independent of
    which other delays share the campaign.
    """
    result = ResolverCampaignResult(behavior_name=behavior.name)
    cached_runs: "dict" = {}
    if store is not None:
        # Resolve every hit of the campaign in one batch (per-shard
        # sidecar index reads instead of one JSON read per run).
        cached_runs = store.get_many(
            resolver_campaign_keys(behavior, delays_ms, repetitions,
                                   seed),
            decode_observation)
    for delay_ms in delays_ms:
        for repetition in range(repetitions):
            key = (resolver_run_key(behavior, seed, delay_ms, repetition)
                   if store is not None else None)
            if store is not None:
                cached = cached_runs.pop(key, None)
                if cached is not None:
                    result.observations.append(cached)
                    continue
            run_seed = stable_run_seed(seed, behavior.name, delay_ms,
                                       repetition)
            testbed = ResolverTestbed(behavior, seed=run_seed,
                                      delay_ms=delay_ms,
                                      zone_index=repetition)
            observation = testbed.run()
            if store is not None:
                store.put(key, encode_observation(observation))
            result.observations.append(observation)
    return result


def probe_ipv6_only_capability(behavior: Optional[ResolverBehavior],
                               dual_stack_resolver: bool,
                               seed: int = 0) -> bool:
    """Can this resolver resolve a zone with IPv6-only name servers?

    This is the Table 4 admission check that excluded Hurricane
    Electric, Lumen, Dyn, and G-Core.
    """
    from ..dns.nsselect import ResolverBehavior as RB

    probe_behavior = behavior or RB(name="capability-probe")
    testbed = ResolverTestbed(probe_behavior, seed=seed,
                              dual_stack_resolver=dual_stack_resolver,
                              v6_only_zone=True)
    observation = testbed.run(timeout=20.0)
    return observation.success
