"""Open resolver services (Tables 3 & 4).

Seventeen public resolver services were probed; four cannot resolve
zones with IPv6-only authoritative name servers and are excluded from
the behaviour analysis (Hurricane Electric, Lumen/Level3, Dyn, G-Core).
Each evaluated service is modeled as a :class:`ResolverBehavior`
parameterization of the iterative engine, with the service inventory
(address counts) carried alongside for Table 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..dns.nsselect import GluePlan, ResolverBehavior


class AaaaQueryMark(enum.Enum):
    """Table 3's AAAA-query column markers."""

    BEFORE_A = "sends AAAA before A"                      # "•"
    AFTER_A = "sends AAAA after A"                        # half-filled
    AFTER_IPV4_USE = "sends AAAA after querying IPv4 NS"  # Google-style
    EITHER_ONE = "sends either AAAA or A, never both"     # Knot-style

    @property
    def symbol(self) -> str:
        return {
            AaaaQueryMark.BEFORE_A: "●",
            AaaaQueryMark.AFTER_A: "◐",
            AaaaQueryMark.AFTER_IPV4_USE: "◑",
            AaaaQueryMark.EITHER_ONE: "◒",
        }[self]


@dataclass(frozen=True)
class OpenResolverService:
    """One public resolver service: inventory + behaviour model."""

    service: str
    v4_addresses: int
    v6_addresses: int
    supports_ipv6_only_resolution: bool = True
    behavior: Optional[ResolverBehavior] = None
    aaaa_mark: Optional[AaaaQueryMark] = None
    #: Expected IPv6 share from the paper, for result validation (%).
    paper_ipv6_share: Optional[float] = None
    #: Expected max usable IPv6 delay from the paper (ms); None = n/a.
    paper_max_ipv6_delay_ms: Optional[int] = None
    #: Expected max packets to the IPv6 address; None = n/a.
    paper_ipv6_packets: Optional[int] = None
    notes: str = ""

    @property
    def evaluated(self) -> bool:
        return self.supports_ipv6_only_resolution and self.behavior is not None


def _behavior(name: str, v6_pref: float, timeout: float,
              packets: int = 1, retry_same: float = 0.0,
              backoff: float = 1.0, stick_to_family: bool = False,
              glue_plan: GluePlan = GluePlan.AAAA_FIRST,
              parallel: bool = False) -> ResolverBehavior:
    return ResolverBehavior(
        name=name, glue_plan=glue_plan, v6_preference=v6_pref,
        attempt_timeout=timeout, backoff_factor=backoff,
        retry_same_probability=retry_same,
        max_queries_per_address=packets,
        switch_family_on_failure=not stick_to_family,
        parallel_families=parallel)


OPEN_RESOLVERS: List[OpenResolverService] = [
    OpenResolverService(
        service="DNS.sb", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("DNS.sb", v6_pref=0.0, timeout=0.4,
                           glue_plan=GluePlan.A_FIRST),
        aaaa_mark=AaaaQueryMark.AFTER_A,
        paper_ipv6_share=0.0, paper_max_ipv6_delay_ms=None,
        notes="never uses the IPv6 name-server address"),
    OpenResolverService(
        service="Google P. DNS", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("Google P. DNS", v6_pref=0.0, timeout=0.4,
                           glue_plan=GluePlan.AAAA_AFTER_USE),
        aaaa_mark=AaaaQueryMark.AFTER_IPV4_USE,
        paper_ipv6_share=0.0, paper_max_ipv6_delay_ms=None,
        notes="queries AAAA only after contacting the IPv4 server"),
    OpenResolverService(
        service="DNS0.EU", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("DNS0.EU", v6_pref=0.095, timeout=0.4,
                           packets=2, stick_to_family=True, parallel=True),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=9.5, paper_max_ipv6_delay_ms=None,
        paper_ipv6_packets=2,
        notes="sticks to the initially chosen family; parallel "
              "IPv4/IPv6 queries make the fallback delay unmeasurable; "
              "one address lacked reliable IPv6-only resolution"),
    OpenResolverService(
        service="NextDNS", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("NextDNS", v6_pref=0.089, timeout=0.200),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=8.9, paper_max_ipv6_delay_ms=200,
        paper_ipv6_packets=1),
    OpenResolverService(
        service="Quad 101", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("Quad 101", v6_pref=0.10, timeout=0.400),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=10.0, paper_max_ipv6_delay_ms=400,
        paper_ipv6_packets=1,
        notes="only its IPv6 resolver addresses reach IPv6-only zones"),
    OpenResolverService(
        service="114DNS", v4_addresses=2, v6_addresses=0,
        behavior=_behavior("114DNS", v6_pref=0.111, timeout=0.600),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=11.1, paper_max_ipv6_delay_ms=600,
        paper_ipv6_packets=1,
        notes="IPv4-only service addresses but IPv6-capable backend "
              "(Akamai WhoAmI shows a different AS: likely a forwarder)"),
    OpenResolverService(
        service="Cloudflare", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("Cloudflare", v6_pref=0.111, timeout=0.500,
                           packets=2, retry_same=1.0),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=11.1, paper_max_ipv6_delay_ms=500,
        paper_ipv6_packets=2),
    OpenResolverService(
        service="Verisign P. DNS", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("Verisign P. DNS", v6_pref=0.153,
                           timeout=0.250),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=15.3, paper_max_ipv6_delay_ms=250,
        paper_ipv6_packets=1),
    OpenResolverService(
        service="Yandex", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("Yandex", v6_pref=0.174, timeout=0.300,
                           packets=6, retry_same=1.0),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=17.4, paper_max_ipv6_delay_ms=300,
        paper_ipv6_packets=6,
        notes="no interleaving: up to six queries to the IPv6 address"),
    OpenResolverService(
        service="H-MSK-IX", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("H-MSK-IX", v6_pref=0.205, timeout=0.600,
                           packets=2, retry_same=1.0),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=20.5, paper_max_ipv6_delay_ms=600,
        paper_ipv6_packets=2),
    OpenResolverService(
        service="MSK-IX", v4_addresses=2, v6_addresses=2,
        behavior=_behavior("MSK-IX", v6_pref=0.221, timeout=0.600,
                           packets=2, retry_same=1.0),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=22.1, paper_max_ipv6_delay_ms=600,
        paper_ipv6_packets=2),
    OpenResolverService(
        service="Quad9 DNS", v4_addresses=6, v6_addresses=6,
        behavior=_behavior("Quad9 DNS", v6_pref=0.342, timeout=1.250,
                           packets=2, retry_same=1.0),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=34.2, paper_max_ipv6_delay_ms=1250,
        paper_ipv6_packets=2),
    OpenResolverService(
        service="OpenDNS", v4_addresses=6, v6_addresses=6,
        behavior=_behavior("OpenDNS", v6_pref=1.0, timeout=0.050),
        aaaa_mark=AaaaQueryMark.BEFORE_A,
        paper_ipv6_share=100.0, paper_max_ipv6_delay_ms=50,
        paper_ipv6_packets=1,
        notes="the only service with HE-style behaviour: always IPv6 "
              "first, 50 ms fallback"),
    # -- excluded from the behaviour evaluation (§5.3) ----------------------
    OpenResolverService(
        service="Hurricane Electric", v4_addresses=4, v6_addresses=4,
        supports_ipv6_only_resolution=False,
        notes="cannot resolve IPv6-only delegations"),
    OpenResolverService(
        service="Lumen (Level3)", v4_addresses=4, v6_addresses=0,
        supports_ipv6_only_resolution=False,
        notes="cannot resolve IPv6-only delegations"),
    OpenResolverService(
        service="DYN", v4_addresses=2, v6_addresses=0,
        supports_ipv6_only_resolution=False,
        notes="cannot resolve IPv6-only delegations"),
    OpenResolverService(
        service="G-Core", v4_addresses=2, v6_addresses=2,
        supports_ipv6_only_resolution=False,
        notes="cannot resolve IPv6-only delegations"),
]

OPEN_RESOLVER_BY_NAME: Dict[str, OpenResolverService] = {
    service.service: service for service in OPEN_RESOLVERS}


def evaluated_services() -> List[OpenResolverService]:
    """The 13 services included in the §5.3 behaviour analysis."""
    return [s for s in OPEN_RESOLVERS if s.evaluated]


def excluded_services() -> List[OpenResolverService]:
    return [s for s in OPEN_RESOLVERS if not s.supports_ipv6_only_resolution]
