"""Resolver subjects under test: local daemons and open services (§5.3).

BIND 9, Unbound, and Knot Resolver are modeled as
:class:`~repro.dns.nsselect.ResolverBehavior` fingerprints driving the
real iterative engine; the 17 public open-resolver services carry both
their Table 4 inventory and their Table 3 behaviour.
"""

from .models import BIND9, KNOT, LOCAL_RESOLVERS, LOCAL_RESOLVER_BY_NAME, UNBOUND
from .open_resolvers import (AaaaQueryMark, OPEN_RESOLVERS,
                             OPEN_RESOLVER_BY_NAME, OpenResolverService,
                             evaluated_services, excluded_services)
from .testbed import (ResolverCampaignResult, ResolverRunObservation,
                      ResolverTestbed, probe_ipv6_only_capability,
                      run_resolver_campaign)

__all__ = [
    "AaaaQueryMark", "BIND9", "KNOT", "LOCAL_RESOLVERS",
    "LOCAL_RESOLVER_BY_NAME", "OPEN_RESOLVERS", "OPEN_RESOLVER_BY_NAME",
    "OpenResolverService", "ResolverCampaignResult",
    "ResolverRunObservation", "ResolverTestbed", "UNBOUND",
    "evaluated_services", "excluded_services",
    "probe_ipv6_only_capability", "run_resolver_campaign",
]
