"""Behavioral models of the locally measured resolver daemons (§5.3).

Each model is a :class:`~repro.dns.nsselect.ResolverBehavior` driving
the *real* iterative engine in :mod:`repro.dns.recursive`; the values
are the paper's measured fingerprints:

* **BIND 9** — classic HE-style IP version preference: always tries
  IPv6 first, falls back to IPv4 after 800 ms, one query per address.
  Requests the NS AAAA record *after* the A record (Table 3: "sends
  AAAA after A"), but both before contacting the authoritative server.
* **Unbound** — AAAA glue query first; picks IPv6 for roughly half of
  queries (observed share 43.8 %); 376 ms attempt timeout; retries the
  IPv6 address in 44 % of cases with a 3× exponential backoff
  (376 ms → 1128 ms), so up to two packets hit the IPv6 address.
* **Knot Resolver** — sends either A or AAAA for NS names but never
  both; uses IPv6 for about a quarter of queries (observed 27.9 %);
  400 ms timeout with a consistent fallback to IPv4.
"""

from __future__ import annotations

from typing import Dict, List

from ..dns.nsselect import GluePlan, ResolverBehavior

BIND9 = ResolverBehavior(
    name="BIND",
    glue_plan=GluePlan.A_FIRST,
    v6_preference=1.0,
    attempt_timeout=0.800,
    max_queries_per_address=1,
    switch_family_on_failure=True,
)

UNBOUND = ResolverBehavior(
    name="Unbound",
    glue_plan=GluePlan.AAAA_FIRST,
    v6_preference=0.44,  # observed IPv6 share 43.8 %
    attempt_timeout=0.376,
    backoff_factor=3.0,
    retry_same_probability=0.44,
    max_queries_per_address=2,
    switch_family_on_failure=True,
)

KNOT = ResolverBehavior(
    name="Knot Resolver",
    glue_plan=GluePlan.SINGLE,
    v6_preference=0.25,
    attempt_timeout=0.400,
    max_queries_per_address=1,
    switch_family_on_failure=True,
)

LOCAL_RESOLVERS: List[ResolverBehavior] = [BIND9, UNBOUND, KNOT]

LOCAL_RESOLVER_BY_NAME: Dict[str, ResolverBehavior] = {
    behavior.name: behavior for behavior in LOCAL_RESOLVERS}
