"""Promotion: top discriminators become declarative battery scenarios.

The promoter filters a ranked score list down to candidates that are
*discriminating* (≥2 registered clients disagree) and *novel* (not a
semantic duplicate of a hand-written battery scenario), then emits
each survivor as a regular :class:`~repro.conformance.scenarios.Scenario`
carrying provenance metadata — the search seed, score axes, and the
human-readable coordinate label — in its description.  Promoted
scenarios register into the conformance battery like any hand-written
one, and because their case is byte-identical to the case the search
scored, probing them replays the search's own store keys.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..conformance.scenarios import (Scenario, hev3_battery,
                                     scenario_battery, sortlist_battery,
                                     svcb_battery)
from ..testbed.config import SweepSpec, TestCaseConfig
from .score import CandidateScore, rank
from .space import ScenarioSpace

_NEUTRAL_SWEEP = SweepSpec.fixed(0)


def _case_identity(case: TestCaseConfig) -> TestCaseConfig:
    """A case stripped to its semantic content: names, sweep shape,
    and repetition count removed, so a synthesized candidate that
    reproduces a hand-written scenario's impairments byte-for-byte is
    recognized as a duplicate whatever it is called."""
    return replace(
        case, name="", sweep=_NEUTRAL_SWEEP, repetitions=1,
        impairments=tuple(replace(spec, name="")
                          for spec in case.impairments))


def battery_identities(extra: "Sequence[Scenario]" = ()
                       ) -> "FrozenSet[TestCaseConfig]":
    """Semantic identities of every hand-written battery case (plus
    ``extra`` already-promoted scenarios) — the novelty reference."""
    scenarios: "List[Scenario]" = []
    scenarios.extend(scenario_battery())
    scenarios.extend(hev3_battery())
    scenarios.extend(svcb_battery())
    scenarios.extend(sortlist_battery())
    scenarios.extend(extra)
    return frozenset(_case_identity(s.case) for s in scenarios)


@dataclass(frozen=True)
class Promotion:
    """One promoted discriminator: the score it earned and the
    declarative scenario it becomes."""

    score: CandidateScore
    scenario: Scenario
    provenance: "Dict[str, object]"

    def as_dict(self) -> "Dict[str, object]":
        return {
            "scenario": self.scenario.name,
            "discriminates": self.scenario.discriminates.value,
            "provenance": self.provenance,
            "score": self.score.as_dict(),
        }


class Promoter:
    """Filters ranked scores into registered-battery scenarios."""

    def __init__(self, space: ScenarioSpace, limit: int = 6,
                 known: "Optional[FrozenSet[TestCaseConfig]]" = None
                 ) -> None:
        if limit < 1:
            raise ValueError(f"promotion limit must be >= 1: {limit!r}")
        self.space = space
        self.limit = limit
        self.known = (known if known is not None
                      else battery_identities())

    def promote(self, scores: "Sequence[CandidateScore]",
                seed: int) -> "List[Promotion]":
        """Top ``limit`` discriminating, novel candidates as
        scenarios, best score first (digest tie-break)."""
        promotions: "List[Promotion]" = []
        seen = set(self.known)
        for score in rank(scores):
            if len(promotions) >= self.limit:
                break
            if not score.discriminating:
                continue
            case = self.space.case_for(score.candidate)
            identity = _case_identity(case)
            if identity in seen:
                continue
            seen.add(identity)
            label = score.candidate.label(self.space)
            provenance = {
                "source": "synthesis",
                "seed": seed,
                "digest": score.candidate.digest,
                "label": label,
                "disagreement": score.disagreement,
                "failures": score.failures,
                "ablation_drift": list(score.ablation_drift),
                "total": score.total,
            }
            description = (
                f"synthesized from seed {seed}: {label} "
                f"(disagreement={score.disagreement}, "
                f"failures={score.failures}, "
                f"drift={','.join(score.ablation_drift) or 'none'})")
            promotions.append(Promotion(
                score=score,
                scenario=self.space.scenario_for(score.candidate,
                                                 description),
                provenance=provenance))
        return promotions
