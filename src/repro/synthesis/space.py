"""The searchable scenario space: dimensions, candidates, quantization.

Adversarial synthesis searches the impairment/service/resolver
parameter space for scenarios that make registered clients disagree.
The space is declared here as data: every :class:`Dimension` carries
its *quantized* value set (bounds and step baked in), so a candidate
is a finite coordinate tuple, digests to a stable content address, and
maps deterministically onto one
:class:`~repro.testbed.config.TestCaseConfig` — which is what makes
every probe of the search a regular campaign run with a regular store
key, nearly free on replay.

The dimensions cover the ROADMAP's remaining scenario ideas: per-family
netem shaping (delay/jitter/loss/reorder/rate), resolver behaviour
(whole-resolver latency, per-rtype answer holds), HEv3 service knobs
(HTTPS records, alternative ports, QUIC and its blackhole), and the
dual-stage combinations — an SVCB hint *and* a sortlist-demoted
destination set can land in one candidate, which no hand-written
scenario composes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..conformance.scenarios import (RFC8305Parameter, Scenario,
                                     SYNTH_PREFIX)
from ..dns.rdata import RdataType
from ..seeding import derive_rng
from ..simnet.addr import Family
from ..simnet.packet import Protocol
from ..testbed.config import (ImpairmentSpec, ServiceSpec, SweepSpec,
                              TestCaseConfig, TestCaseKind)

#: Special-prefix IPv6 destinations for the sortlist dimension —
#: distinct from the hand-written sortlist battery's addresses so a
#: synthesized dual-stage scenario never collides with it byte-wise,
#: while still exercising the same RFC 6724 precedence rows.
SORTLIST_SPACE = {
    "ula": "fd00:db8:5eed::10",          # ULA fc00::/7
    "site-local": "fec0:db8:5eed::10",   # deprecated site-local
    "teredo": "2001:0:5eed::10",         # Teredo 2001::/32
}

#: Service-dimension settings, keyed by the dimension value.
_SERVICES = ("none", "https", "alt-port", "h3", "h3-blackhole")


@dataclass(frozen=True)
class Dimension:
    """One searchable axis: a name and its quantized value set.

    ``values[0]`` is the neutral setting (no impairment / no service),
    so the all-defaults candidate is the pristine dual stack.  Values
    are ordered; local refinement moves one index at a time.
    """

    name: str
    values: Tuple[Any, ...]
    help: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"dimension {self.name!r} needs values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"dimension {self.name!r} repeats values")

    def index_of(self, value: Any) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"dimension {self.name!r} has no value {value!r} "
                f"(quantized to {self.values!r})") from None


@dataclass(frozen=True)
class Candidate:
    """One point of the space: ``(dimension name, value)`` pairs in
    declared dimension order.  Frozen and hashable; the digest is the
    stable identity every store key and scenario name derives from."""

    values: Tuple[Tuple[str, Any], ...]

    def value(self, name: str) -> Any:
        for dim_name, value in self.values:
            if dim_name == name:
                return value
        raise KeyError(name)

    @property
    def digest(self) -> str:
        """Stable content identity: sha256 over the canonical JSON of
        the coordinate mapping (sorted keys, so declaration-order
        changes that keep the same coordinates keep the key)."""
        canonical = json.dumps(dict(self.values), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    @property
    def name(self) -> str:
        """Scenario *and* case name — promoted probes replay the
        search's own store keys because the names coincide."""
        return SYNTH_PREFIX + self.digest

    def label(self, space: "ScenarioSpace") -> str:
        """Non-neutral coordinates only, in dimension order."""
        parts = []
        for dimension in space.dimensions:
            value = self.value(dimension.name)
            if value != dimension.values[0]:
                parts.append(f"{dimension.name}={value}")
        return ",".join(parts) or "pristine"

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.values)


class ScenarioSpace:
    """The declared search space plus the candidate→case compiler."""

    def __init__(self, dimensions: "Tuple[Dimension, ...]") -> None:
        if not dimensions:
            raise ValueError("a scenario space needs dimensions")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names!r}")
        self.dimensions = tuple(dimensions)
        self._by_name = {d.name: d for d in self.dimensions}

    @classmethod
    def default(cls) -> "ScenarioSpace":
        """The standard space: ~10 axes, ~5M quantized combinations."""
        return cls((
            Dimension("v6_delay_ms",
                      (0, 25, 50, 100, 150, 200, 250, 300, 350, 400),
                      "IPv6 TCP one-way delay"),
            Dimension("v6_jitter_ms", (0, 5, 10, 15, 20, 30),
                      "correlated jitter on the IPv6 TCP path"),
            Dimension("v6_loss_pct", (0, 10, 20, 30, 40, 50),
                      "IPv6 TCP loss probability"),
            Dimension("v6_reorder_pct", (0, 25, 50),
                      "IPv6 TCP reordering probability"),
            Dimension("v6_rate_kbps", (0, 1, 8, 64),
                      "IPv6 TCP rate limit (0 = unshaped)"),
            Dimension("dns_delay_ms", (0, 100, 200, 300),
                      "whole-resolver answer latency (UDP path)"),
            Dimension("aaaa_delay_ms", (0, 500, 1000, 1500),
                      "AAAA answer hold at the authoritative"),
            Dimension("a_delay_ms", (0, 500, 1000, 1500),
                      "A answer hold at the authoritative"),
            Dimension("service", _SERVICES,
                      "HTTPS record / alt port / QUIC service knobs"),
            Dimension("sortlist_dest", ("none",) + tuple(SORTLIST_SPACE),
                      "special-prefix destination vs IPv4 (RFC 6724)"),
        ))

    def dimension(self, name: str) -> Dimension:
        return self._by_name[name]

    # -- candidate generation --------------------------------------------------

    def sample(self, seed: int, index: int) -> Candidate:
        """The ``index``-th seeded grid candidate.

        Every dimension draws from its *own*
        ``derive_rng(seed, "synthesis", dim, index)`` stream — the
        population sampler's independence trick — so candidate ``i``
        is identical under any budget that reaches ``i``.  A denser
        seeding budget therefore extends the candidate list instead of
        reshuffling it, and replays every overlapping probe key from
        the store.
        """
        values = []
        for dimension in self.dimensions:
            rng = derive_rng(seed, "synthesis", dimension.name, index)
            values.append((dimension.name,
                           dimension.values[rng.randrange(
                               len(dimension.values))]))
        return Candidate(tuple(values))

    def neighbors(self, candidate: Candidate) -> "List[Candidate]":
        """All one-step moves, in deterministic dimension order
        (−1 before +1) — the local-refinement move set."""
        out: "List[Candidate]" = []
        for dimension in self.dimensions:
            index = dimension.index_of(candidate.value(dimension.name))
            for delta in (-1, 1):
                neighbor = index + delta
                if not 0 <= neighbor < len(dimension.values):
                    continue
                values = tuple(
                    (name, dimension.values[neighbor])
                    if name == dimension.name else (name, value)
                    for name, value in candidate.values)
                out.append(Candidate(values))
        return out

    # -- candidate → test case -------------------------------------------------

    def case_for(self, candidate: Candidate) -> TestCaseConfig:
        """Compile a candidate into one declarative test case.

        Pure and total: every coordinate combination yields a valid
        case (the all-neutral candidate is the pristine dual stack),
        and the case name is the candidate's content identity — which
        is what keys the campaign store.
        """
        impairments: "List[ImpairmentSpec]" = []
        delay = candidate.value("v6_delay_ms") / 1000.0
        jitter = candidate.value("v6_jitter_ms") / 1000.0
        loss = candidate.value("v6_loss_pct") / 100.0
        reorder = candidate.value("v6_reorder_pct") / 100.0
        rate_kbps = candidate.value("v6_rate_kbps")
        if delay or jitter or loss or reorder or rate_kbps:
            impairments.append(ImpairmentSpec(
                family=Family.V6, protocol=Protocol.TCP,
                delay_s=delay, jitter_s=jitter,
                jitter_correlation=0.25 if jitter else 0.0,
                loss=loss, reorder_probability=reorder,
                rate_bps=rate_kbps * 1000.0 if rate_kbps else None,
                name="synth-v6-path"))
        dns_delay = candidate.value("dns_delay_ms")
        if dns_delay:
            impairments.append(ImpairmentSpec(
                protocol=Protocol.UDP, delay_s=dns_delay / 1000.0,
                name="synth-slow-resolver"))
        aaaa_delay = candidate.value("aaaa_delay_ms")
        if aaaa_delay:
            impairments.append(ImpairmentSpec(
                dns_rtype=RdataType.AAAA, delay_s=aaaa_delay / 1000.0,
                name="synth-aaaa-hold"))
        a_delay = candidate.value("a_delay_ms")
        if a_delay:
            impairments.append(ImpairmentSpec(
                dns_rtype=RdataType.A, delay_s=a_delay / 1000.0,
                name="synth-a-hold"))
        service = candidate.value("service")
        if service == "h3-blackhole":
            impairments.append(ImpairmentSpec(
                protocol=Protocol.QUIC, loss=1.0,
                name="synth-quic-blackhole"))
        return TestCaseConfig(
            name=candidate.name,
            kind=TestCaseKind.IMPAIRMENT,
            sweep=SweepSpec.fixed(0),
            impairments=tuple(impairments),
            service=self._service_for(candidate))

    def _service_for(self, candidate: Candidate
                     ) -> Optional[ServiceSpec]:
        service = candidate.value("service")
        dest = candidate.value("sortlist_dest")
        https_alpn: "Tuple[str, ...]" = ()
        https_port = None
        quic_listener = False
        if service == "https":
            https_alpn = ("http/1.1",)
        elif service == "alt-port":
            https_alpn = ("http/1.1",)
            https_port = 8443
        elif service in ("h3", "h3-blackhole"):
            https_alpn = ("h3", "http/1.1")
            quic_listener = True
        addresses: "Tuple[str, ...]" = ()
        if dest != "none":
            from ..testbed.topology import SERVER_V4

            addresses = (SORTLIST_SPACE[dest], SERVER_V4)
        if not (https_alpn or quic_listener or addresses):
            return None
        return ServiceSpec(https_alpn=https_alpn, https_port=https_port,
                           quic_listener=quic_listener,
                           addresses=addresses)

    # -- candidate → promoted scenario -----------------------------------------

    def parameter_for(self, candidate: Candidate) -> RFC8305Parameter:
        """The RFC 8305 parameter a candidate most directly stresses —
        dominant-dimension priority, dual-stage candidates lead with
        the sorting stage (the first wire attempt reads it off)."""
        if candidate.value("sortlist_dest") != "none":
            return RFC8305Parameter.DESTINATION_SORTING
        service = candidate.value("service")
        if service in ("h3", "h3-blackhole"):
            return RFC8305Parameter.PROTOCOL_RACING
        if service in ("https", "alt-port"):
            return RFC8305Parameter.SVCB_DISCOVERY
        if candidate.value("a_delay_ms"):
            return RFC8305Parameter.RESOLUTION_POLICY
        if candidate.value("aaaa_delay_ms"):
            return RFC8305Parameter.RESOLUTION_DELAY
        if candidate.value("dns_delay_ms"):
            return RFC8305Parameter.FIRST_ADDRESS_FAMILY
        if candidate.value("v6_loss_pct"):
            return RFC8305Parameter.RETRY_ROBUSTNESS
        if (candidate.value("v6_reorder_pct")
                or candidate.value("v6_rate_kbps")):
            return RFC8305Parameter.FALLBACK
        return RFC8305Parameter.CONNECTION_ATTEMPT_DELAY

    def scenario_for(self, candidate: Candidate,
                     description: str) -> Scenario:
        """A promoted candidate as a declarative battery scenario.

        The case is byte-identical to the one the search scored, so a
        promoted scenario's probe replays the search's own store keys;
        ``description`` carries the provenance (seed, score, label).
        """
        return Scenario(
            name=candidate.name,
            discriminates=self.parameter_for(candidate),
            rfc_clause="synthesized (RFC 8305 / HEv3)",
            description=description,
            case=self.case_for(candidate))

    def __iter__(self) -> Iterator[Dimension]:
        return iter(self.dimensions)

    def __len__(self) -> int:
        return len(self.dimensions)
