"""The generate-probe-score loop: seeding, refinement, promotion.

Mirrors the conformance probe's coarse→fine template at search scale:
a seeded *grid round* scatters candidates over the whole space, then
*refinement rounds* walk one-step neighbourhoods around the current
best scorers.  Every probe of every round is a regular campaign run
with a regular store key, so the whole search replays from cache —
and because seeding streams are per-dimension and per-index
(:meth:`ScenarioSpace.sample`), a denser budget *extends* the
candidate list instead of reshuffling it, replaying every overlapping
key of a smaller run.

``plan()`` follows the probe's plan-purity contract: the seeding
round's keys are known statically and always yielded; refinement
rounds depend on scores, so they are resolved from the store *only*
when every key of the previous round is already cached — a cold plan
is the seeding round, a warm plan is the whole search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .promote import Promoter, Promotion
from .score import CandidateScore, Scorer, rank
from .space import Candidate, ScenarioSpace


@dataclass(frozen=True)
class SearchBudget:
    """How much of the space one search traverses."""

    #: Seeded grid candidates in round 0.
    seeds: int = 32
    #: Local-refinement rounds after the grid round.
    rounds: int = 2
    #: High scorers whose neighbourhoods each refinement round walks.
    top: int = 6
    #: Neighbour candidates admitted per high scorer per round.
    neighbors: int = 8

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError(f"budget.seeds must be >= 1: {self.seeds!r}")
        if self.rounds < 0:
            raise ValueError(
                f"budget.rounds must be >= 0: {self.rounds!r}")
        if self.top < 1:
            raise ValueError(f"budget.top must be >= 1: {self.top!r}")
        if self.neighbors < 1:
            raise ValueError(
                f"budget.neighbors must be >= 1: {self.neighbors!r}")


class SearchStrategy:
    """Coarse grid seeding → local refinement, fully seeded."""

    def __init__(self, space: ScenarioSpace, seed: int,
                 budget: SearchBudget) -> None:
        self.space = space
        self.seed = seed
        self.budget = budget

    def seed_round(self) -> "List[Candidate]":
        """Round 0: the first ``budget.seeds`` grid samples, deduped
        preserving order (per-index streams make this prefix-stable
        under any larger seed budget)."""
        out: "List[Candidate]" = []
        seen = set()
        for index in range(self.budget.seeds):
            candidate = self.space.sample(self.seed, index)
            if candidate.digest not in seen:
                seen.add(candidate.digest)
                out.append(candidate)
        return out

    def refine(self, pool: "Dict[str, CandidateScore]"
               ) -> "List[Candidate]":
        """One refinement round: one-step neighbours of the current
        ``budget.top`` best scorers, up to ``budget.neighbors`` fresh
        candidates each, in rank × move order — purely a function of
        the scored pool, so any execution order converges to the same
        proposal list."""
        proposals: "List[Candidate]" = []
        proposed = set(pool)
        for parent in rank(list(pool.values()))[:self.budget.top]:
            admitted = 0
            for neighbor in self.space.neighbors(parent.candidate):
                if admitted >= self.budget.neighbors:
                    break
                if neighbor.digest in proposed:
                    continue
                proposed.add(neighbor.digest)
                proposals.append(neighbor)
                admitted += 1
        return proposals


@dataclass(frozen=True)
class RoundReport:
    """One executed round, for the rendered search log."""

    index: int
    kind: str  # "seed" | "refine"
    evaluated: int
    best_total: int
    best_digest: str


@dataclass(frozen=True)
class SearchResult:
    """Everything a search produced, in deterministic order."""

    seed: int
    budget: SearchBudget
    rounds: Tuple[RoundReport, ...]
    #: All scored candidates, best first (digest tie-break).
    ranked: Tuple[CandidateScore, ...]
    promotions: Tuple[Promotion, ...]

    @property
    def evaluated(self) -> int:
        return len(self.ranked)

    @property
    def discriminating(self) -> int:
        return sum(1 for score in self.ranked if score.discriminating)


class SynthesisSearch:
    """Drives strategy + scorer + promoter through the full loop."""

    def __init__(self, space: ScenarioSpace, strategy: SearchStrategy,
                 scorer: Scorer, promoter: Promoter) -> None:
        self.space = space
        self.strategy = strategy
        self.scorer = scorer
        self.promoter = promoter

    def _rounds(self) -> "Iterator[Tuple[int, str]]":
        yield 0, "seed"
        for round_index in range(1, self.strategy.budget.rounds + 1):
            yield round_index, "refine"

    def execute(self, workers: "Optional[int]" = None) -> SearchResult:
        pool: "Dict[str, CandidateScore]" = {}
        reports: "List[RoundReport]" = []
        candidates = self.strategy.seed_round()
        for round_index, kind in self._rounds():
            fresh = [c for c in candidates if c.digest not in pool]
            if not fresh:
                break
            scores = self.scorer.score_candidates(fresh, workers=workers)
            for score in scores:
                pool[score.candidate.digest] = score
            best = rank(list(pool.values()))[0]
            reports.append(RoundReport(
                index=round_index, kind=kind, evaluated=len(fresh),
                best_total=best.total,
                best_digest=best.candidate.digest))
            if round_index >= self.strategy.budget.rounds:
                break
            candidates = self.strategy.refine(pool)
        ranked = tuple(rank(list(pool.values())))
        promotions = tuple(self.promoter.promote(ranked,
                                                 self.strategy.seed))
        return SearchResult(seed=self.strategy.seed,
                            budget=self.strategy.budget,
                            rounds=tuple(reports), ranked=ranked,
                            promotions=promotions)

    def plan(self) -> "Iterator[str]":
        """Store keys the search will touch, without executing.

        Seeding-round keys are static.  Each refinement round is
        planned only when every key of the previous round resolves
        from the store (the probe's plan-purity template): scores are
        then recomputed from the cached records, and the next round's
        proposals — hence keys — follow deterministically.
        """
        store = self.scorer.store
        pool: "Dict[str, CandidateScore]" = {}
        candidates = self.strategy.seed_round()
        for round_index, _kind in self._rounds():
            fresh = [c for c in candidates if c.digest not in pool]
            if not fresh:
                break
            runner = self.scorer.runner_for(fresh)
            keys = list(runner.store_keys())
            for key in keys:
                yield key
            if round_index >= self.strategy.budget.rounds:
                break
            if store is None:
                break
            cached = store.get_many_records(keys)
            if len(cached) < len(keys):
                break
            records = [cached[key] for key in keys]
            for score in self.scorer.score_records(fresh, records):
                pool[score.candidate.digest] = score
            candidates = self.strategy.refine(pool)
