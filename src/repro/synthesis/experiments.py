"""The registered synthesis experiments.

``synthesize-scenarios`` runs the full generate-probe-score loop and
renders the promoted discriminators; ``synthesize-report`` goes one
step further and fingerprints every selected client against the
promoted battery — the "what did the search buy us" view.  Both are
plain :class:`~repro.experiments.base.Experiment`\\ s: pure ``plan()``
(cache gc liveness + service admission), store-backed ``execute()``
(cold==warm byte-identical, serial==parallel), deterministic
``render()``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..experiments.base import Artifact, Experiment, Knob, Session
from .promote import Promoter
from .score import Scorer
from .search import (SearchBudget, SearchResult, SearchStrategy,
                     SynthesisSearch)
from .space import ScenarioSpace

#: The default ablation base: the draft reference client consumes
#: SVCB, sorts by RFC 6724, and races QUIC — every single-stage edit
#: is observable against it.
DEFAULT_ABLATION_BASE = "hev3-reference"


def _resolve_clients(selector: str) -> List:
    """Profiles for a (possibly comma-separated) client selector."""
    from ..experiments.catalog import _fingerprint_profiles

    profiles: List = []
    seen = set()
    for part in selector.split(","):
        for profile in _fingerprint_profiles(part.strip()):
            if profile.full_name not in seen:
                seen.add(profile.full_name)
                profiles.append(profile)
    return profiles


class _SynthesisExperiment(Experiment):
    """Shared knobs + component wiring for both synthesis verbs."""

    json_capable = True
    knobs = (
        Knob("synthesis_seeds", type=int, default=32,
             help="seeded grid candidates in round 0 (default 32)"),
        Knob("synthesis_rounds", type=int, default=2,
             help="local-refinement rounds after the grid (default 2)"),
        Knob("synthesis_top", type=int, default=6,
             help="high scorers refined per round (default 6)"),
        Knob("synthesis_neighbors", type=int, default=8,
             help="neighbours admitted per high scorer (default 8)"),
        Knob("promote", type=int, default=6,
             help="max scenarios promoted into the battery (default 6)"),
        Knob("clients", type=str, default="all",
             help="comma-separated client selectors to discriminate "
                  "between (default: every local-testbed client)"),
        Knob("ablate", type=str, default=DEFAULT_ABLATION_BASE,
             help="client whose per-stage ablations score candidate "
                  "sensitivity ('none' disables)"),
    )

    def _budget(self, session: Session) -> SearchBudget:
        try:
            return SearchBudget(
                seeds=session.knob("synthesis_seeds", 32),
                rounds=session.knob("synthesis_rounds", 2),
                top=session.knob("synthesis_top", 6),
                neighbors=session.knob("synthesis_neighbors", 8))
        except ValueError as exc:
            raise SystemExit(f"synthesis: {exc}")

    def _search(self, session: Session) -> SynthesisSearch:
        space = ScenarioSpace.default()
        budget = self._budget(session)
        limit = session.knob("promote", 6)
        if limit < 1:
            raise SystemExit(
                f"synthesis: promotion limit must be >= 1: {limit!r}")
        profiles = _resolve_clients(session.knob("clients", "all"))
        ablate = session.knob("ablate", DEFAULT_ABLATION_BASE)
        base = None
        if ablate and ablate.strip().lower() != "none":
            matches = _resolve_clients(ablate)
            if len(matches) != 1:
                raise SystemExit(
                    f"--ablate must match exactly one client, "
                    f"{ablate!r} matched {len(matches)}")
            base = matches[0]
        scorer = Scorer(space, profiles, seed=session.seed,
                        store=session.store,
                        resilience=session.resilience,
                        ablation_base=base)
        strategy = SearchStrategy(space, session.seed, budget)
        promoter = Promoter(space, limit=limit)
        return SynthesisSearch(space, strategy, scorer, promoter)

    def plan(self, session: Session) -> Iterator[str]:
        yield from self._search(session).plan()

    # -- shared rendering pieces ----------------------------------------------

    @staticmethod
    def _result_data(result: SearchResult) -> Dict[str, Any]:
        return {
            "seed": result.seed,
            "budget": {
                "seeds": result.budget.seeds,
                "rounds": result.budget.rounds,
                "top": result.budget.top,
                "neighbors": result.budget.neighbors,
            },
            "rounds": [{
                "index": report.index,
                "kind": report.kind,
                "evaluated": report.evaluated,
                "best_total": report.best_total,
                "best_digest": report.best_digest,
            } for report in result.rounds],
            "evaluated": result.evaluated,
            "discriminating": result.discriminating,
            "promotions": [p.as_dict() for p in result.promotions],
        }

    def _header_lines(self, result: SearchResult) -> List[str]:
        budget = result.budget
        lines = [
            f"adversarial scenario synthesis (seed {result.seed})",
            "=" * 48,
            "",
            (f"budget: seeds={budget.seeds} rounds={budget.rounds} "
             f"top={budget.top} neighbors={budget.neighbors}"),
            "",
        ]
        for report in result.rounds:
            lines.append(
                f"round {report.index} ({report.kind}): "
                f"evaluated={report.evaluated} "
                f"best={report.best_total} "
                f"[synth-{report.best_digest}]")
        lines.append("")
        return lines

    @staticmethod
    def _promotion_lines(result: SearchResult) -> List[str]:
        if not result.promotions:
            return ["promoted scenarios: (none)"]
        lines = ["promoted scenarios:"]
        space = ScenarioSpace.default()
        for rank_index, promotion in enumerate(result.promotions, 1):
            score = promotion.score
            lines.append(
                f"  {rank_index}. {promotion.scenario.name}  "
                f"[{promotion.scenario.discriminates.value}]  "
                f"disagreement={score.disagreement} "
                f"failures={score.failures} "
                f"drift={','.join(score.ablation_drift) or 'none'}")
            lines.append(
                f"     {score.candidate.label(space)}")
        return lines

    @staticmethod
    def _summary_line(result: SearchResult) -> str:
        promoted_discriminating = sum(
            1 for p in result.promotions if p.score.discriminating)
        return (f"synthesis: evaluated={result.evaluated} "
                f"discriminating={result.discriminating} "
                f"promoted={len(result.promotions)} "
                f"promoted_discriminating={promoted_discriminating}")


class SynthesizeScenariosExperiment(_SynthesisExperiment):
    name = "synthesize-scenarios"
    title = "search the impairment space for discriminating scenarios"
    paper = "§4.3 extension; PAPERS.md: Ang 2025, Rath 2018"

    def execute(self, session: Session) -> SearchResult:
        return self._search(session).execute(workers=session.workers)

    def render(self, result: SearchResult) -> Artifact:
        lines = self._header_lines(result)
        lines.extend(self._promotion_lines(result))
        lines.append("")
        lines.append(self._summary_line(result))
        return Artifact(text="\n".join(lines),
                        data=self._result_data(result))


class SynthesizeReportExperiment(_SynthesisExperiment):
    name = "synthesize-report"
    title = "fingerprint clients against the synthesized battery"
    paper = "§4.3 extension; PAPERS.md: Ang 2025, Rath 2018"

    def execute(self, session: Session) -> Dict[str, Any]:
        from ..conformance import fingerprint_client

        search = self._search(session)
        result = search.execute(workers=session.workers)
        battery = [p.scenario for p in result.promotions]
        fingerprints = []
        if battery:
            fingerprints = [
                fingerprint_client(profile, seed=session.seed,
                                   store=session.store,
                                   workers=session.workers,
                                   battery=battery)
                for profile in _resolve_clients(
                    session.knob("clients", "all"))]
        return {"result": result, "battery": battery,
                "fingerprints": fingerprints}

    def render(self, result: Dict[str, Any]) -> Artifact:
        from ..conformance import (fingerprint_to_dict,
                                   render_battery_summary)

        search: SearchResult = result["result"]
        lines = self._header_lines(search)
        lines.extend(self._promotion_lines(search))
        lines.append("")
        if result["battery"]:
            lines.append(render_battery_summary(
                "synthesized scenario battery",
                result["fingerprints"], result["battery"]))
            lines.append("")
        lines.append(self._summary_line(search))
        data = self._result_data(search)
        data["fingerprints"] = [fingerprint_to_dict(fp)
                                for fp in result["fingerprints"]]
        return Artifact(text="\n".join(lines), data=data)
