"""Candidate scoring: behaviour signatures, disagreement, ablations.

A candidate is worth promoting when registered clients *behave
differently* under it.  The scorer runs every candidate case through
the regular :class:`~repro.testbed.runner.TestRunner` (store-backed,
worker-pooled) against all registered clients plus per-stage ablation
variants of a base profile, compresses each run into a categorical
:func:`behaviour signature <signature_of>`, and scores:

* **disagreement** — distinct signatures among registered clients
  (the fingerprint-disagreement count; ≥2 means the candidate
  discriminates);
* **failures** — clients that never establish while at least one
  does (the MUST-level deviation a promoted scenario will flag — the
  new-deviation discovery axis);
* **ablation drift** — how many single-stage edits of the base
  profile (``with_resolution``/``with_sorting``/``with_racing``
  one-liners) change its signature, i.e. how many policy stages the
  candidate is sensitive to.

Everything is a pure function of the run records, so serial, parallel,
and warm-store scoring are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..clients.profile import ClientProfile
from ..testbed.resilience import Resilience
from ..testbed.runner import RunRecord, TestRunner
from ..testbed.store import CampaignStore
from .space import Candidate, ScenarioSpace

#: The policy stages an ablation pass perturbs, in report order.
ABLATION_STAGES = ("resolution", "sorting", "racing")


def signature_of(record: RunRecord) -> str:
    """One run compressed to its categorical wire behaviour.

    Only stable, discrete observables enter the signature (families,
    protocol, HTTPS query, port, QUIC attempts, establishment) — no
    raw timings, so a signature difference is a *behavioural*
    difference, not measurement noise.
    """
    first = record.first_attempt_family
    est = record.winning_family
    proto = record.winning_protocol
    return (f"first={first.label if first else '-'}"
            f" est={est.label if est else 'none'}"
            f" proto={proto.value if proto else '-'}"
            f" https={'y' if record.queried_https else 'n'}"
            f" port={record.first_attempt_port or '-'}"
            f" quic={'y' if record.attempts_quic else 'n'}")


def ablation_variants(base: ClientProfile
                      ) -> "Tuple[Tuple[str, ClientProfile], ...]":
    """Three single-stage edits of ``base``, one per policy stage.

    Each variant toggles exactly one stage knob (SVCB consumption,
    the RFC 6724-vs-3484 sortlist, QUIC racing) via the stack's
    ``with_*`` one-liners and takes a ``~stage`` version suffix, so
    its runs digest to their own store keys and its records are
    self-describing in the campaign stream.
    """
    stack = base.stack
    sortlist = stack.sorting.sortlist
    edited = (
        ("resolution", stack.with_resolution(
            use_svcb=not stack.resolution.use_svcb)),
        ("sorting", stack.with_sorting(
            sortlist="rfc3484" if sortlist != "rfc3484" else "rfc6724")),
        ("racing", stack.with_racing(
            race_quic=not stack.racing.race_quic)),
    )
    return tuple(
        (stage, replace(base.with_stack(new_stack),
                        version=f"{base.version}~{stage}"))
        for stage, new_stack in edited)


@dataclass(frozen=True)
class CandidateScore:
    """One scored candidate: signatures and the derived score axes."""

    candidate: Candidate
    #: ``(client full_name, signature)`` for registered clients, in
    #: registry order.
    signatures: Tuple[Tuple[str, str], ...]
    #: Stages whose ablated base profile changed signature.
    ablation_drift: Tuple[str, ...]
    disagreement: int
    failures: int

    @property
    def total(self) -> int:
        """Lexicographic-by-construction: disagreement dominates, then
        failure discovery, then per-stage sensitivity."""
        return (self.disagreement * 100 + self.failures * 10
                + len(self.ablation_drift))

    @property
    def discriminating(self) -> bool:
        """≥2 registered clients behave differently."""
        return self.disagreement >= 2

    def as_dict(self) -> Dict[str, object]:
        return {
            "digest": self.candidate.digest,
            "params": self.candidate.as_dict(),
            "disagreement": self.disagreement,
            "failures": self.failures,
            "ablation_drift": list(self.ablation_drift),
            "total": self.total,
            "signatures": {client: signature
                           for client, signature in self.signatures},
        }


def rank(scores: "Sequence[CandidateScore]") -> "List[CandidateScore]":
    """Best first; equal totals tie-break by candidate digest, so the
    ranking is deterministic under any evaluation order."""
    return sorted(scores,
                  key=lambda s: (-s.total, s.candidate.digest))


class Scorer:
    """Runs candidate cases and derives :class:`CandidateScore`s."""

    def __init__(self, space: ScenarioSpace,
                 profiles: "Sequence[ClientProfile]", seed: int = 0,
                 store: "Optional[CampaignStore]" = None,
                 resilience: "Optional[Resilience]" = None,
                 ablation_base: "Optional[ClientProfile]" = None) -> None:
        if not profiles:
            raise ValueError("scorer needs at least one client profile")
        self.space = space
        self.profiles = list(profiles)
        self.seed = seed
        self.store = store
        self.resilience = resilience
        self.ablations = (ablation_variants(ablation_base)
                          if ablation_base is not None else ())
        # The campaign client list: registered clients, the ablation
        # base (when it is not already registered — drift needs its
        # reference signature), then the ablated variants.  Order is
        # load-bearing: records arrive in enumeration order and are
        # attributed by position.
        self.base = ablation_base
        self._runner_clients = list(self.profiles)
        if (ablation_base is not None
                and not any(p.full_name == ablation_base.full_name
                            for p in self.profiles)):
            self._runner_clients.append(ablation_base)
        self._runner_clients.extend(p for _, p in self.ablations)

    # -- campaign plumbing -----------------------------------------------------

    def runner_for(self, candidates: "Sequence[Candidate]") -> TestRunner:
        cases = [self.space.case_for(c) for c in candidates]
        return TestRunner(self._runner_clients, cases, seed=self.seed,
                          store=self.store, resilience=self.resilience)

    def plan_keys(self, candidates: "Sequence[Candidate]"
                  ) -> "Iterator[str]":
        """Store keys of one scoring round, enumeration order, pure."""
        yield from self.runner_for(candidates).store_keys()

    # -- scoring ---------------------------------------------------------------

    def score_candidates(self, candidates: "Sequence[Candidate]",
                         workers: "Optional[int]" = None
                         ) -> "List[CandidateScore]":
        """Execute (or warm-replay) one round and score it."""
        runner = self.runner_for(candidates)
        return self.score_records(candidates,
                                  list(runner.stream(workers=workers)))

    def score_records(self, candidates: "Sequence[Candidate]",
                      records: "Sequence[RunRecord]"
                      ) -> "List[CandidateScore]":
        """Pure scoring of a round's records (enumeration order:
        case-major, client-minor — each case's block is one client
        list pass, single sweep value, single repetition)."""
        per_case = len(self._runner_clients)
        if len(records) != len(candidates) * per_case:
            raise ValueError(
                f"expected {len(candidates) * per_case} records "
                f"({len(candidates)} candidates x {per_case} clients), "
                f"got {len(records)}")
        scores = []
        for i, candidate in enumerate(candidates):
            block = records[i * per_case:(i + 1) * per_case]
            scores.append(self._score_block(candidate, block))
        return scores

    def _score_block(self, candidate: Candidate,
                     block: "Sequence[RunRecord]") -> CandidateScore:
        by_client = {profile.full_name: signature_of(record)
                     for profile, record in zip(self._runner_clients,
                                                block)}
        established = {
            profile.full_name: record.winning_family is not None
            for profile, record in zip(self._runner_clients, block)}
        signatures = tuple((p.full_name, by_client[p.full_name])
                           for p in self.profiles)
        distinct = len({signature for _, signature in signatures})
        any_established = any(established[p.full_name]
                              for p in self.profiles)
        failures = sum(1 for p in self.profiles
                       if any_established
                       and not established[p.full_name])
        drift: "List[str]" = []
        if self.base is not None:
            reference = by_client[self.base.full_name]
            for stage, variant in self.ablations:
                if by_client[variant.full_name] != reference:
                    drift.append(stage)
        return CandidateScore(candidate=candidate,
                              signatures=signatures,
                              ablation_drift=tuple(drift),
                              disagreement=distinct,
                              failures=failures)
