"""Adversarial scenario synthesis: search the impairment space.

The conformance battery's scenarios are hand-written; this package
grows it automatically.  A :class:`ScenarioSpace` declares the
searchable dimensions (per-family shaping, resolver behaviour,
SVCB/QUIC service knobs, dual-stage combinations) as quantized value
sets, a seeded :class:`SearchStrategy` drives coarse grid seeding and
local refinement, a :class:`Scorer` probes every candidate through
the regular campaign machinery and scores fingerprint disagreement /
new-deviation discovery / per-stage ablation drift, and a
:class:`Promoter` emits the top discriminators as declarative battery
scenarios with provenance.  Registered as the ``synthesize-scenarios``
and ``synthesize-report`` experiments.
"""

from .promote import Promoter, Promotion, battery_identities
from .score import (ABLATION_STAGES, CandidateScore, Scorer,
                    ablation_variants, rank, signature_of)
from .search import (RoundReport, SearchBudget, SearchResult,
                     SearchStrategy, SynthesisSearch)
from .space import Candidate, Dimension, ScenarioSpace, SORTLIST_SPACE

__all__ = [
    "ABLATION_STAGES",
    "Candidate",
    "CandidateScore",
    "Dimension",
    "Promoter",
    "Promotion",
    "RoundReport",
    "ScenarioSpace",
    "Scorer",
    "SearchBudget",
    "SearchResult",
    "SearchStrategy",
    "SORTLIST_SPACE",
    "SynthesisSearch",
    "ablation_variants",
    "battery_identities",
    "rank",
    "signature_of",
]
