"""Network interfaces.

An interface joins a host to a network segment.  It owns the host's
addresses on that segment, the egress/ingress traffic shapers (where
netem attaches, like ``tc qdisc add dev eth0 root netem ...``), and the
packet taps used for capturing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

from .addr import Family, IPAddress, family_of, parse_address
from .capture import Direction, PacketCapture
from .netem import TrafficShaper
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .host import Host
    from .network import NetworkSegment


class Interface:
    """A host's attachment point to a segment."""

    def __init__(self, host: "Host", name: str) -> None:
        self.host = host
        self.name = name
        self.segment: Optional["NetworkSegment"] = None
        self._addresses: List[IPAddress] = []
        rng = host.sim.derive_rng(f"shaper:{host.name}:{name}")
        self.egress = TrafficShaper(rng)
        self.ingress = TrafficShaper(rng)
        self._captures: List[PacketCapture] = []

    # -- addressing --------------------------------------------------------

    @property
    def addresses(self) -> List[IPAddress]:
        return list(self._addresses)

    def add_address(self, address: Union[str, IPAddress]) -> IPAddress:
        addr = parse_address(address)
        if addr in self._addresses:
            raise ValueError(f"{addr} already configured on {self}")
        self._addresses.append(addr)
        if self.segment is not None:
            self.segment.register_address(addr, self)
        self.host.address_added(addr, self)
        return addr

    def remove_address(self, address: Union[str, IPAddress]) -> None:
        addr = parse_address(address)
        self._addresses.remove(addr)
        if self.segment is not None:
            self.segment.unregister_address(addr)
        self.host.address_removed(addr, self)

    def addresses_of(self, family: Family) -> List[IPAddress]:
        return [a for a in self._addresses if family_of(a) is family]

    def has_address(self, address: IPAddress) -> bool:
        return address in self._addresses

    # -- capturing -----------------------------------------------------------

    def attach_capture(self, capture: PacketCapture) -> PacketCapture:
        self._captures.append(capture)
        return capture

    def detach_capture(self, capture: PacketCapture) -> None:
        self._captures.remove(capture)

    def _tap(self, direction: Direction, packet: Packet) -> None:
        captures = self._captures
        if not captures:
            return  # no tap attached: skip the clock read entirely
        now = self.host.sim.now
        for capture in captures:
            capture.record(now, direction, packet)

    # -- data path -----------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` onto the attached segment."""
        if self.segment is None:
            raise RuntimeError(f"{self} is not attached to a segment")
        self._tap(Direction.OUT, packet)
        self.segment.transmit(packet, self)

    def deliver(self, packet: Packet) -> None:
        """Called by the segment when a packet arrives for this interface."""
        self._tap(Direction.IN, packet)
        self.host.receive(packet, self)

    def __repr__(self) -> str:
        return f"<Interface {self.host.name}:{self.name}>"
