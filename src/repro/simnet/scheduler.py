"""The discrete-event simulator core.

:class:`Simulator` owns the clock and a hashed timer wheel of scheduled
callbacks.  All higher layers — links, netem qdiscs, TCP state machines,
DNS servers, Happy Eyeballs engines — interact with time exclusively
through this object, which is what makes measurement runs perfectly
reproducible: the paper's testbed relies on sub-millisecond packet
timestamping (§4.3); simulation gives exact timestamps.

Execution order is the classic ``(when, seq)`` discipline — strictly
increasing time, FIFO among callbacks scheduled for the same instant —
but the storage is a *timer wheel*, not a binary heap of tuples:

* entries hash into per-tick buckets (one tick ≈ 122 µs of simulated
  time), so a burst of events landing in the same tick costs one heap
  operation for the whole bucket, not one per event;
* :meth:`ScheduledCall.cancel` physically unlinks the entry from its
  bucket in O(1) — cancelled timers (the dominant Happy Eyeballs
  pattern: every won race abandons its losers' timeouts) never churn
  through the execution path the way heap tombstones did;
* the due bucket is sorted once (near-sorted input, so Timsort is
  ~linear) and drained in-place by ``run``/``run_until``/``step``,
  which all share the same hot loop.

The property tests pin this implementation against a reference heapq
scheduler on randomized schedule/cancel/reschedule workloads.
"""

from __future__ import annotations

import gc
import random
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, List, Optional

from .clock import SimClock
from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process, ProcessGenerator

#: Wheel resolution: ticks per simulated second.  2**13 ≈ 122 µs per
#: tick — finer than the default segment propagation delay (100 µs), so
#: consecutive packet hops usually land in distinct buckets, while a
#: burst shaped onto one departure instant shares a single bucket.
_TICK_HZ = 8192.0

#: Sentinel slot for entries extracted into the due-bucket run.
_READY = object()

#: Seeded-RNG states for :meth:`Simulator.derive_rng`, keyed by
#: (seed, label).  Process-wide: a sweep builds a fresh Simulator per
#: run but derives the same labels from the same seed every time, and
#: string-seeding ``random.Random`` hashes via SHA-512 — restoring a
#: saved state is far cheaper.
_DERIVED_STATE_CACHE: "dict[tuple, tuple]" = {}
_DERIVED_SEEN: "set[tuple]" = set()
_DERIVED_STATE_CACHE_CAP = 65536

#: ``object.__new__`` bound once: the schedule fast path allocates a
#: bare ScheduledCall and assigns its slots inline, skipping the
#: ``type.__call__`` → ``__init__`` dispatch.
_new_call = object.__new__


class ScheduledCall:
    """Handle to a scheduled callback; supports O(1) cancellation.

    ``_slot`` tracks where the entry currently lives: its wheel bucket
    (a dict keyed by sequence number), the :data:`_READY` sentinel once
    extracted into the due run, or ``None`` after execution or
    cancellation.
    """

    __slots__ = ("when", "seq", "fn", "args", "_slot")

    def __init__(self, when: float, seq: int, fn: Callable[..., None],
                 args: "tuple") -> None:
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self._slot: Any = None

    @property
    def cancelled(self) -> bool:
        """True once cancelled (or executed); kept for introspection."""
        return self._slot is None and self.fn is None

    def cancel(self) -> None:
        """Unlink this entry; a cancelled call never executes.

        Entries still in the wheel are physically removed from their
        bucket (no tombstone ever reaches the execution loop); entries
        already extracted into the currently-draining bucket are
        emptied in place and skipped.
        """
        slot = self._slot
        if slot is None:
            return
        self._slot = None
        self.fn = None
        self.args = ()
        if slot is not _READY:
            del slot[self.seq]

    def __lt__(self, other: "ScheduledCall") -> bool:
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._slot is not None else "done/cancelled"
        return f"<ScheduledCall t={self.when:.6f} seq={self.seq} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler with a process model.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned RNG.  Every stochastic component
        (netem jitter/loss, resolver address selection, web campaign
        noise) draws from RNGs derived from this seed, so a run is fully
        determined by ``(seed, configuration)``.
    start:
        Starting value of the simulated clock, in seconds.
    """

    __slots__ = ("_clock", "_rng", "_seed", "_unhandled", "_seq",
                 "_buckets", "_tick_heap", "_ready", "_ready_pos",
                 "_ready_tick", "_extra")

    def __init__(self, seed: int = 0, start: float = 0.0) -> None:
        self._clock = SimClock(start)
        self._rng = random.Random(seed)
        self._seed = seed
        self._unhandled: List[BaseException] = []
        self._seq = 0
        # Wheel storage: tick -> {seq: ScheduledCall}; the tick heap
        # holds every tick that currently has (or recently had) a
        # bucket, with stale ticks dropped lazily.
        self._buckets: "dict[int, dict[int, ScheduledCall]]" = {}
        self._tick_heap: List[int] = []
        # Due-bucket run: the sorted entries of the tick currently
        # being drained, plus late arrivals into the same tick.
        self._ready: List[ScheduledCall] = []
        self._ready_pos = 0
        self._ready_tick: Optional[int] = None
        self._extra: List[ScheduledCall] = []

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock._now

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def rng(self) -> random.Random:
        """The simulator-level RNG (use :meth:`derive_rng` per component)."""
        return self._rng

    def derive_rng(self, label: str) -> random.Random:
        """A component-private RNG derived from the simulator seed.

        Deriving by label keeps components independent: adding a new
        random consumer does not perturb the draw sequence of others.
        The seeded state is memoized per label, so repeated derivations
        (web sessions, per-interface shapers) restore a saved state
        instead of re-hashing the seed string each time.
        """
        key = (str(self._seed), label)
        state = _DERIVED_STATE_CACHE.get(key)
        if state is not None:
            rng = random.Random()
            rng.setstate(state)
            return rng
        rng = random.Random(f"{self._seed}:{label}")
        # Snapshot the seeded state only for keys seen more than once:
        # campaign runs derive fresh (seed, label) pairs every run, and
        # an unconditional getstate would cost more than it saves.
        if key in _DERIVED_SEEN:
            if len(_DERIVED_STATE_CACHE) >= _DERIVED_STATE_CACHE_CAP:
                _DERIVED_STATE_CACHE.clear()
            _DERIVED_STATE_CACHE[key] = rng.getstate()
        else:
            if len(_DERIVED_SEEN) >= _DERIVED_STATE_CACHE_CAP:
                _DERIVED_SEEN.clear()
            _DERIVED_SEEN.add(key)
        return rng

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay!r}")
        # Body of :meth:`_insert`, inlined: this is the hottest call
        # site in the simulator and the extra frame shows up in
        # profiles.
        when = self._clock._now + delay
        seq = self._seq = self._seq + 1
        call = _new_call(ScheduledCall)
        call.when = when
        call.seq = seq
        call.fn = fn
        call.args = args
        tick = int(when * _TICK_HZ)
        if tick == self._ready_tick:
            call._slot = _READY
            insort(self._extra, call)
        else:
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = bucket = {seq: call}
                heappush(self._tick_heap, tick)
            else:
                bucket[seq] = call
            call._slot = bucket
        return call

    def schedule_at(self, when: float, fn: Callable[..., None],
                    *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._clock._now:
            raise ValueError(
                f"cannot schedule in the past: {when!r} < {self._clock._now!r}")
        return self._insert(when, fn, args)

    def _insert(self, when: float, fn: Callable[..., None],
                args: "tuple") -> ScheduledCall:
        # ``args`` is already the vararg tuple — no re-packing copy.
        seq = self._seq = self._seq + 1
        call = _new_call(ScheduledCall)
        call.when = when
        call.seq = seq
        call.fn = fn
        call.args = args
        tick = int(when * _TICK_HZ)
        if tick == self._ready_tick:
            # The tick being drained: merge into the run, keeping
            # (when, seq) order against the not-yet-executed entries.
            call._slot = _READY
            insort(self._extra, call)
        else:
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = bucket = {seq: call}
                heappush(self._tick_heap, tick)
            else:
                bucket[seq] = call
            call._slot = bucket
        return call

    def report_unhandled(self, exc: BaseException) -> None:
        """Record a failure nobody waited on; re-raised from :meth:`run`."""
        self._unhandled.append(exc)

    # -- queue inspection --------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled, unexecuted) scheduled calls."""
        count = sum(map(len, self._buckets.values()))
        ready = self._ready
        for index in range(self._ready_pos, len(ready)):
            if ready[index]._slot is not None:
                count += 1
        for call in self._extra:
            if call._slot is not None:
                count += 1
        return count

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or None if idle."""
        head = self._next_call()
        return head.when if head is not None else None

    def _next_call(self) -> Optional[ScheduledCall]:
        """The globally earliest live entry, or None.

        Normalizes internal state: skips cancelled entries at the head
        of the due run, drops drained ticks, loads the next due bucket
        when the current run is exhausted, and spills the run back into
        the wheel if an earlier tick has appeared (possible after a
        bounded :meth:`run` stopped mid-bucket and earlier times were
        scheduled).
        """
        buckets = self._buckets
        heap = self._tick_heap
        while True:
            ready = self._ready
            extra = self._extra
            pos = self._ready_pos
            n = len(ready)
            while pos < n and ready[pos]._slot is None:
                pos += 1
            self._ready_pos = pos
            while extra and extra[0]._slot is None:
                del extra[0]
            head: Optional[ScheduledCall] = None
            if pos < n:
                head = ready[pos]
                if extra and extra[0] < head:
                    head = extra[0]
            elif extra:
                head = extra[0]
            else:
                self._ready_tick = None
            # Earliest live tick in the wheel (lazily dropping drained
            # ticks and duplicate heap entries).
            tick = None
            while heap:
                tick = heap[0]
                if buckets.get(tick):
                    break
                heappop(heap)
                buckets.pop(tick, None)
                tick = None
            if head is not None:
                if tick is None or tick > self._ready_tick:
                    return head
                # An earlier tick appeared: push the unfinished run
                # back into the wheel and restart selection.
                self._spill_run()
                continue
            if tick is None:
                return None
            heappop(heap)
            entries = list(buckets.pop(tick).values())
            entries.sort()
            self._ready = entries
            self._ready_pos = 0
            self._ready_tick = tick
            self._extra = []
            return entries[0]

    def _spill_run(self) -> None:
        """Return the unfinished due run to the wheel."""
        buckets = self._buckets
        pending = self._ready[self._ready_pos:] + self._extra
        self._ready = []
        self._ready_pos = 0
        self._ready_tick = None
        self._extra = []
        for call in pending:
            if call._slot is None:
                continue
            tick = int(call.when * _TICK_HZ)
            bucket = buckets.get(tick)
            if bucket is None:
                buckets[tick] = bucket = {call.seq: call}
                heappush(self._tick_heap, tick)
            else:
                bucket[call.seq] = call
            call._slot = bucket

    def _consume(self, call: ScheduledCall) -> None:
        """Detach ``call`` (the current head) prior to execution."""
        ready = self._ready
        pos = self._ready_pos
        if pos < len(ready) and ready[pos] is call:
            self._ready_pos = pos + 1
        else:
            del self._extra[0]
        call._slot = None

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if idle."""
        call = self._next_call()
        if call is None:
            return False
        self._consume(call)
        self._clock.advance_to(call.when)
        fn, args = call.fn, call.args
        call.fn = None
        call.args = ()
        if args:
            fn(*args)
        else:
            fn()
        self._raise_unhandled()
        return True

    def run(self, until: Optional[float] = None,
            _stop_event: Optional[Event] = None,
            _limit_raises: bool = False) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the simulated time when execution stopped.  If ``until``
        is given and the queue drains early, the clock is advanced to
        ``until`` so successive bounded runs compose predictably.

        This is *the* hot loop — every simulated event in every campaign
        executes here — so the due-bucket drain is fully inlined: the
        per-event cost is a couple of attribute loads and compares, not a
        :meth:`_next_call` + :meth:`_consume` method-call pair.  The
        clock is advanced by direct assignment because the ``(when,
        seq)`` discipline already guarantees monotonicity.

        Cyclic garbage collection is paused while the loop runs: the
        loop allocates heavily (events, frames, packets) but creates few
        cycles, and generation-0 scans in the middle of a campaign cost
        ~10% of wall time.  The collector is restored on exit, so cycles
        are still reclaimed between runs.
        """
        clock = self._clock
        if until is not None and until < clock.now:
            raise ValueError(
                f"until={until!r} is in the past (now={clock.now!r})")
        gc_enabled = gc.isenabled()
        if gc_enabled:
            gc.disable()
        try:
            return self._run(until, _stop_event, _limit_raises)
        finally:
            if gc_enabled:
                gc.enable()

    def _run(self, until: Optional[float],
             _stop_event: Optional[Event],
             _limit_raises: bool) -> float:
        clock = self._clock
        # Normalize once on entry: a previous bounded run may have
        # stopped mid-bucket and later (external) scheduling may have
        # introduced an earlier tick; _next_call spills in that case.
        # During the loop itself no earlier tick can appear, because
        # every insertion satisfies ``when >= now``.
        self._next_call()
        unhandled = self._unhandled
        while True:
            ready = self._ready
            extra = self._extra
            pos = self._ready_pos
            n = len(ready)
            while True:
                # -- select the head of the current due run ------------
                if pos < n:
                    call = ready[pos]
                    if call._slot is None:  # cancelled in place
                        pos += 1
                        continue
                    from_extra = False
                    if extra:
                        ex = extra[0]
                        if ex._slot is None:
                            del extra[0]
                            continue
                        exw = ex.when
                        cw = call.when
                        if exw < cw or (exw == cw and ex.seq < call.seq):
                            call = ex
                            from_extra = True
                elif extra:
                    call = extra[0]
                    if call._slot is None:
                        del extra[0]
                        continue
                    from_extra = True
                else:
                    break  # due run exhausted: fall to the wheel
                when = call.when
                if until is not None and when > until:
                    self._ready_pos = pos
                    if _limit_raises:
                        raise SimulationError(
                            f"{_stop_event!r} still pending at "
                            f"time limit {until!r}")
                    clock.advance_to(until)
                    return clock.now
                # -- consume and execute -------------------------------
                if from_extra:
                    del extra[0]
                else:
                    pos += 1
                self._ready_pos = pos
                call._slot = None
                clock._now = when
                fn = call.fn
                args = call.args
                call.fn = None
                call.args = ()
                if args:
                    fn(*args)
                else:
                    fn()
                if unhandled:
                    self._raise_unhandled()
                    unhandled = self._unhandled
                if _stop_event is not None and _stop_event.processed:
                    return clock.now
                if self._ready is not ready:
                    # Reentrant execution (a callback drove the
                    # simulator itself) reloaded the run: resync.
                    break
                pos = self._ready_pos
            if self._ready is not ready:
                continue
            # -- due run exhausted: load the next tick bucket ----------
            self._ready_pos = pos
            heap = self._tick_heap
            buckets = self._buckets
            tick = None
            while heap:
                tick = heap[0]
                if buckets.get(tick):
                    break
                heappop(heap)
                buckets.pop(tick, None)
                tick = None
            if tick is None:
                self._ready = []
                self._ready_pos = 0
                self._ready_tick = None
                self._extra = []
                break  # drained
            heappop(heap)
            entries = list(buckets.pop(tick).values())
            entries.sort()
            self._ready = entries
            self._ready_pos = 0
            self._ready_tick = tick
            self._extra = []
        if _stop_event is not None:
            raise SimulationError(
                f"simulation ran dry before {_stop_event!r} triggered")
        if until is not None:
            clock.advance_to(until)
        return clock.now

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains (or ``limit``
        passes) without the event triggering — usually a deadlocked test.
        Drives the same hot loop as :meth:`run` (one head selection per
        executed callback) instead of the old ``peek()`` + ``step()``
        pair, which scanned the queue head twice per callback.
        """
        if not event.processed:
            self.run(until=limit, _stop_event=event, _limit_raises=True)
        return event.value

    def _raise_unhandled(self) -> None:
        """Raise the first unhandled failure, chaining the rest.

        A single callback can strand several failures at once (an event
        failure fanning out to multiple waiting processes).  Raising
        only the first and clearing the rest would silently drop the
        concurrent failures; instead every further exception is linked
        onto the first one's ``__context__`` chain, so deadlock
        diagnosis (and pytest tracebacks) sees all of them while the
        raised type stays exactly what callers already catch.
        """
        if not self._unhandled:
            return
        pending = self._unhandled
        self._unhandled = []
        primary = pending[0]
        tail = primary
        seen = {id(primary)}
        for exc in pending[1:]:
            if id(exc) in seen:
                continue
            # Append at the end of the existing chain; the id-set
            # guards against pre-existing context cycles.  The walk can
            # discover ``exc`` already sitting inside the chain (a
            # reported wrapper whose cause is also reported), so the
            # duplicate check repeats after the walk — appending then
            # would create a self-referential __context__ cycle.
            while (tail.__context__ is not None
                   and id(tail.__context__) not in seen):
                tail = tail.__context__
                seen.add(id(tail))
            if tail.__context__ is None and id(exc) not in seen:
                tail.__context__ = exc
                tail = exc
                seen.add(id(exc))
        raise primary

    # -- process / event helpers ------------------------------------------

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a generator as a process starting at the current time."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self.now:.6f}, "
                f"pending={self.pending_count})")
