"""The discrete-event simulator core.

:class:`Simulator` owns the clock and a priority queue of scheduled
callbacks.  All higher layers — links, netem qdiscs, TCP state machines,
DNS servers, Happy Eyeballs engines — interact with time exclusively
through this object, which is what makes measurement runs perfectly
reproducible: the paper's testbed relies on sub-millisecond packet
timestamping (§4.3); simulation gives exact timestamps.
"""

from __future__ import annotations

import heapq
import random
from itertools import count
from typing import Any, Callable, Iterable, List, Optional, Tuple

from .clock import SimClock
from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process, ProcessGenerator


class ScheduledCall:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("when", "fn", "args", "cancelled")

    def __init__(self, when: float, fn: Callable[..., None],
                 args: Tuple[Any, ...]) -> None:
        self.when = when
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event scheduler with a process model.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned RNG.  Every stochastic component
        (netem jitter/loss, resolver address selection, web campaign
        noise) draws from RNGs derived from this seed, so a run is fully
        determined by ``(seed, configuration)``.
    start:
        Starting value of the simulated clock, in seconds.
    """

    __slots__ = ("_clock", "_queue", "_sequence", "_rng", "_seed",
                 "_unhandled")

    def __init__(self, seed: int = 0, start: float = 0.0) -> None:
        self._clock = SimClock(start)
        self._queue: List[Tuple[float, int, ScheduledCall]] = []
        self._sequence = count()
        self._rng = random.Random(seed)
        self._seed = seed
        self._unhandled: List[BaseException] = []

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def rng(self) -> random.Random:
        """The simulator-level RNG (use :meth:`derive_rng` per component)."""
        return self._rng

    def derive_rng(self, label: str) -> random.Random:
        """A component-private RNG derived from the simulator seed.

        Deriving by label keeps components independent: adding a new
        random consumer does not perturb the draw sequence of others.
        """
        return random.Random(f"{self._seed}:{label}")

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay!r}")
        return self.schedule_at(self._clock.now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., None],
                    *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when!r} < {self._clock.now!r}")
        call = ScheduledCall(when, fn, tuple(args))
        heapq.heappush(self._queue, (when, next(self._sequence), call))
        return call

    def report_unhandled(self, exc: BaseException) -> None:
        """Record a failure nobody waited on; re-raised from :meth:`run`."""
        self._unhandled.append(exc)

    # -- execution --------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._queue)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or None if idle."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False if idle."""
        while self._queue:
            when, _seq, call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._clock.advance_to(when)
            call.fn(*call.args)
            self._raise_unhandled()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the simulated time when execution stopped.  If ``until``
        is given and the queue drains early, the clock is advanced to
        ``until`` so successive bounded runs compose predictably.
        """
        if until is not None and until < self._clock.now:
            raise ValueError(
                f"until={until!r} is in the past (now={self._clock.now!r})")
        # Hot loop: pop directly instead of peek()+step(), which would
        # scan past cancelled entries twice per executed callback.
        queue = self._queue
        clock = self._clock
        pop = heapq.heappop
        while queue:
            when, _seq, call = queue[0]
            if call.cancelled:
                pop(queue)
                continue
            if until is not None and when > until:
                break
            pop(queue)
            clock.advance_to(when)
            call.fn(*call.args)
            if self._unhandled:
                self._raise_unhandled()
        if until is not None:
            clock.advance_to(until)
        return clock.now

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the queue drains (or ``limit``
        passes) without the event triggering — usually a deadlocked test.
        """
        while not event.processed:
            upcoming = self.peek()
            if upcoming is None:
                raise SimulationError(
                    f"simulation ran dry before {event!r} triggered")
            if limit is not None and upcoming > limit:
                raise SimulationError(
                    f"{event!r} still pending at time limit {limit!r}")
            self.step()
        return event.value

    def _raise_unhandled(self) -> None:
        """Raise the first unhandled failure, chaining the rest.

        A single callback can strand several failures at once (an event
        failure fanning out to multiple waiting processes).  Raising
        only the first and clearing the rest would silently drop the
        concurrent failures; instead every further exception is linked
        onto the first one's ``__context__`` chain, so deadlock
        diagnosis (and pytest tracebacks) sees all of them while the
        raised type stays exactly what callers already catch.
        """
        if not self._unhandled:
            return
        pending = self._unhandled
        self._unhandled = []
        primary = pending[0]
        tail = primary
        seen = {id(primary)}
        for exc in pending[1:]:
            if id(exc) in seen:
                continue
            # Append at the end of the existing chain; the id-set
            # guards against pre-existing context cycles.  The walk can
            # discover ``exc`` already sitting inside the chain (a
            # reported wrapper whose cause is also reported), so the
            # duplicate check repeats after the walk — appending then
            # would create a self-referential __context__ cycle.
            while (tail.__context__ is not None
                   and id(tail.__context__) not in seen):
                tail = tail.__context__
                seen.add(id(tail))
            if tail.__context__ is None and id(exc) not in seen:
                tail.__context__ = exc
                tail = exc
                seen.add(id(exc))
        raise primary

    # -- process / event helpers ------------------------------------------

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a generator as a process starting at the current time."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self.now:.6f}, "
                f"pending={self.pending_count})")
