"""Discrete-event network simulator (the testbed substrate).

The paper's local testbed is two directly connected hosts with
``tc-netem`` traffic shaping and packet captures (§4.3, App. Fig. 3).
This package provides the equivalent substrate in simulation:

* :class:`Simulator` — deterministic event loop with SimPy-style
  generator processes,
* :class:`Network` / :class:`NetworkSegment` / :class:`Host` /
  :class:`Interface` — topology with address-based forwarding where
  unknown destinations blackhole (the paper's unresponsive addresses),
* :class:`TrafficShaper` + :class:`NetemSpec` — tc-netem emulation,
* :class:`PacketCapture` — the tcpdump equivalent all inference reads.
"""

from .addr import (AddressAllocator, DualStackAllocator, Family, IPAddress,
                   family_of, is_v6, parse_address, split_by_family)
from .capture import CapturedFrame, Direction, PacketCapture
from .clock import SimClock
from .events import (AllOf, AnyOf, ConditionValue, Event,
                     EventAlreadyTriggered, SimulationError, Timeout)
from .host import Host, NoRouteError
from .iface import Interface
from .netem import (NetemFilter, NetemQdisc, NetemRule, NetemSpec,
                    TrafficShaper)
from .network import Network, NetworkSegment
from .packet import (Packet, Protocol, QUICPacketType, TCPFlags)
from .process import Interrupt, Process
from .scheduler import ScheduledCall, Simulator

__all__ = [
    "AddressAllocator", "AllOf", "AnyOf", "CapturedFrame", "ConditionValue",
    "Direction", "DualStackAllocator", "Event", "EventAlreadyTriggered",
    "Family", "Host", "IPAddress", "Interface", "Interrupt", "NetemFilter",
    "NetemQdisc", "NetemRule", "NetemSpec", "Network", "NetworkSegment",
    "NoRouteError", "Packet", "PacketCapture", "Process", "Protocol",
    "QUICPacketType", "ScheduledCall", "SimClock", "SimulationError",
    "Simulator", "TCPFlags", "Timeout", "TrafficShaper", "family_of",
    "is_v6", "parse_address", "split_by_family",
]
