"""tc-netem emulation.

The paper shapes traffic with ``tc-netem`` on the server host (§4.1):
IPv6 packets get a configured delay so the client's Connection Attempt
Delay becomes observable, and name-server addresses get per-zone delays
for the resolver study.  This module reproduces netem's externally
visible behaviour:

* constant delay plus optional jitter (uniform, as netem's default
  distribution approximation) with optional correlation,
* random loss,
* reordering (packets that "jump the queue" with some probability),
* rate limiting (serialization delay from packet size).

A :class:`NetemRule` pairs a qdisc with a filter, mirroring how the
paper attaches netem to specific families/addresses via ``tc filter``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Union

from .addr import Family, IPAddress, parse_address
from .packet import Packet, Protocol


@dataclass(frozen=True)
class NetemSpec:
    """Parameters of one netem qdisc (times in seconds)."""

    delay: float = 0.0
    jitter: float = 0.0
    jitter_correlation: float = 0.0
    loss: float = 0.0
    reorder_probability: float = 0.0
    reorder_gap: float = 0.001
    rate_bps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative delay: {self.delay!r}")
        if self.jitter < 0:
            raise ValueError(f"negative jitter: {self.jitter!r}")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be a probability: {self.loss!r}")
        if not 0.0 <= self.reorder_probability <= 1.0:
            raise ValueError(
                f"reorder must be a probability: {self.reorder_probability!r}")
        if not 0.0 <= self.jitter_correlation < 1.0:
            raise ValueError(
                f"correlation must be in [0,1): {self.jitter_correlation!r}")
        if self.rate_bps is not None and self.rate_bps <= 0:
            raise ValueError(f"rate must be positive: {self.rate_bps!r}")

    @classmethod
    def delay_ms(cls, milliseconds: float, **kwargs: float) -> "NetemSpec":
        """Convenience constructor matching ``tc netem delay <ms>ms``."""
        return cls(delay=milliseconds / 1000.0, **kwargs)


PacketPredicate = Callable[[Packet], bool]


class NetemFilter:
    """Selects which packets a qdisc applies to.

    Matches any combination of family, destination addresses, source
    addresses, and protocol; empty criteria match everything, like an
    unfiltered qdisc on the interface root.
    """

    def __init__(self,
                 family: Optional[Family] = None,
                 dst_addresses: Optional[Iterable[Union[str, IPAddress]]] = None,
                 src_addresses: Optional[Iterable[Union[str, IPAddress]]] = None,
                 protocol: Optional[Protocol] = None,
                 predicate: Optional[PacketPredicate] = None) -> None:
        self.family = family
        self.dst_addresses = (frozenset(parse_address(a) for a in dst_addresses)
                              if dst_addresses is not None else None)
        self.src_addresses = (frozenset(parse_address(a) for a in src_addresses)
                              if src_addresses is not None else None)
        self.protocol = protocol
        self.predicate = predicate

    def matches(self, packet: Packet) -> bool:
        if self.family is not None and packet.family is not self.family:
            return False
        if (self.dst_addresses is not None
                and packet.dst not in self.dst_addresses):
            return False
        if (self.src_addresses is not None
                and packet.src not in self.src_addresses):
            return False
        if self.protocol is not None and packet.protocol is not self.protocol:
            return False
        if self.predicate is not None and not self.predicate(packet):
            return False
        return True

    @classmethod
    def match_all(cls) -> "NetemFilter":
        return cls()

    @classmethod
    def for_family(cls, family: Family) -> "NetemFilter":
        return cls(family=family)


@dataclass
class NetemRule:
    """A (filter, qdisc) pair; first matching rule wins."""

    spec: NetemSpec
    filter: NetemFilter = field(default_factory=NetemFilter.match_all)
    name: str = ""


class NetemQdisc:
    """Stateful qdisc applying a :class:`NetemSpec` to a packet stream.

    :meth:`plan` returns either the departure time offset for a packet
    handed to it "now", or ``None`` when the packet is dropped.  State
    (previous jitter sample for correlation, serialization horizon for
    rate, last departure for ordering) lives here, one instance per
    attachment point and direction.
    """

    def __init__(self, spec: NetemSpec, rng: random.Random) -> None:
        self.spec = spec
        self._rng = rng
        self._previous_jitter: Optional[float] = None
        self._busy_until = 0.0
        self._last_departure = 0.0
        self.packets_seen = 0
        self.packets_dropped = 0
        self.packets_reordered = 0

    def plan(self, packet: Packet, now: float) -> Optional[float]:
        """Absolute delivery time for ``packet`` entering at ``now``.

        Returns ``None`` for a dropped packet.
        """
        self.packets_seen += 1
        spec = self.spec
        # A total-loss qdisc (the blackhole scenario) drops without
        # consuming a sample: the rng is shared across an interface's
        # qdiscs, and a deterministic drop must not perturb the jitter
        # and loss draws of the rules shaping the surviving traffic.
        if spec.loss and (spec.loss >= 1.0
                          or self._rng.random() < spec.loss):
            self.packets_dropped += 1
            return None

        delay = spec.delay + self._sample_jitter()

        departure = now + delay
        if spec.rate_bps is not None:
            serialization = packet.size * 8.0 / spec.rate_bps
            start = max(now, self._busy_until)
            self._busy_until = start + serialization
            departure = self._busy_until + delay

        if (spec.reorder_probability
                and self._rng.random() < spec.reorder_probability):
            # netem reordering: the packet skips the delay queue and is
            # sent (almost) immediately, overtaking queued packets.
            self.packets_reordered += 1
            departure = now + min(delay, spec.reorder_gap)
        elif spec.jitter == 0.0:
            # Without jitter netem preserves ordering.
            departure = max(departure, self._last_departure)

        self._last_departure = max(self._last_departure, departure)
        return departure

    def _sample_jitter(self) -> float:
        spec = self.spec
        if spec.jitter == 0.0:
            return 0.0
        fresh = self._rng.uniform(-spec.jitter, spec.jitter)
        if spec.jitter_correlation and self._previous_jitter is not None:
            rho = spec.jitter_correlation
            fresh = rho * self._previous_jitter + (1.0 - rho) * fresh
        self._previous_jitter = fresh
        # Delay can never be negative overall.
        return max(fresh, -spec.delay)


class TrafficShaper:
    """An ordered rule chain attached to an interface direction.

    This is the equivalent of the paper's per-host ``tc`` configuration:
    rules are consulted in order, the first matching rule's qdisc shapes
    the packet, and unmatched packets pass through untouched.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._rules: List[NetemRule] = []
        self._qdiscs: List[NetemQdisc] = []

    def add_rule(self, rule: NetemRule) -> NetemQdisc:
        qdisc = NetemQdisc(rule.spec, self._rng)
        self._rules.append(rule)
        self._qdiscs.append(qdisc)
        return qdisc

    def clear(self) -> None:
        """Remove all rules (``tc qdisc del``), e.g. between test runs."""
        self._rules.clear()
        self._qdiscs.clear()

    @property
    def rules(self) -> List[NetemRule]:
        return list(self._rules)

    def plan(self, packet: Packet, now: float) -> Optional[float]:
        """Delivery time after shaping, or ``None`` if dropped."""
        if not self._rules:
            return now  # unshaped interface: the overwhelming common case
        for rule, qdisc in zip(self._rules, self._qdiscs):
            if rule.filter.matches(packet):
                return qdisc.plan(packet, now)
        return now

    def delay_family(self, family: Family, delay_s: float,
                     name: str = "") -> NetemQdisc:
        """Shortcut for the paper's core knob: delay one address family."""
        rule = NetemRule(spec=NetemSpec(delay=delay_s),
                         filter=NetemFilter.for_family(family),
                         name=name or f"delay-{family.label}")
        return self.add_rule(rule)
