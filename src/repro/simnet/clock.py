"""Simulated wall clock.

The simulator measures time in float seconds, starting at zero by
default.  Keeping the clock in its own object (instead of a bare float on
the scheduler) lets other components — packet captures, DNS servers,
Happy Eyeballs engines — hold a reference to the clock without holding a
reference to the whole scheduler.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero: {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ValueError` if that would move time backwards;
        the scheduler is the only component expected to call this.
        """
        if when < self._now:
            raise ValueError(
                f"time cannot move backwards: {when!r} < {self._now!r}"
            )
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
