"""Network fabric: segments connecting interfaces.

A :class:`NetworkSegment` is an L2-ish broadcast domain that forwards a
packet to whichever attached interface owns the destination address.
Unknown destinations are silently dropped — this is how the paper's
"addresses that do not respond at all" (§4.1(iii)) are modeled: an
address nobody configured is a blackhole, the client's SYN simply
vanishes and its retransmission/abort behaviour becomes observable.

:class:`Network` is the top-level container tying simulator, hosts and
segments together, the equivalent of the testbed topology in
App. Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .addr import Family, IPAddress, parse_address
from .iface import Interface
from .packet import Packet
from .scheduler import Simulator


class NetworkSegment:
    """A broadcast domain forwarding by destination address."""

    def __init__(self, sim: Simulator, name: str,
                 propagation_delay: float = 0.0001) -> None:
        if propagation_delay < 0:
            raise ValueError(
                f"negative propagation delay: {propagation_delay!r}")
        self.sim = sim
        self.name = name
        self.propagation_delay = propagation_delay
        self._interfaces: List[Interface] = []
        self._by_address: Dict[IPAddress, Interface] = {}
        # Integer-keyed mirrors of _by_address, per family: the
        # forwarding hot path avoids ipaddress's hex-string __hash__.
        self._by_ip_v4: Dict[int, Interface] = {}
        self._by_ip_v6: Dict[int, Interface] = {}
        self.dropped_unknown_destination = 0
        self.forwarded = 0

    # -- attachment ---------------------------------------------------------

    def attach(self, interface: Interface) -> None:
        if interface.segment is not None:
            raise RuntimeError(f"{interface} already attached")
        interface.segment = self
        self._interfaces.append(interface)
        for address in interface.addresses:
            self.register_address(address, interface)

    def register_address(self, address: IPAddress,
                         interface: Interface) -> None:
        existing = self._by_address.get(address)
        if existing is not None and existing is not interface:
            raise ValueError(
                f"{address} already owned by {existing} on segment {self.name}")
        self._by_address[address] = interface
        (self._by_ip_v6 if address.version == 6
         else self._by_ip_v4)[int(address)] = interface

    def unregister_address(self, address: IPAddress) -> None:
        self._by_address.pop(address, None)
        (self._by_ip_v6 if address.version == 6
         else self._by_ip_v4).pop(int(address), None)

    def interface_for(self, address: Union[str, IPAddress]
                      ) -> Optional[Interface]:
        return self._by_address.get(parse_address(address))

    @property
    def interfaces(self) -> List[Interface]:
        return list(self._interfaces)

    # -- forwarding -----------------------------------------------------------

    def transmit(self, packet: Packet, source: Interface) -> None:
        """Shape at egress, propagate, then deliver (or blackhole)."""
        departure = source.egress.plan(packet, self.sim.now)
        if departure is None:
            return  # dropped by the sender's qdisc
        arrival = departure + self.propagation_delay
        self.sim.schedule_at(arrival, self._arrive, packet)

    def _arrive(self, packet: Packet) -> None:
        by_ip = (self._by_ip_v6 if packet.family is Family.V6
                 else self._by_ip_v4)
        target = by_ip.get(packet.dst._ip)
        if target is None:
            self.dropped_unknown_destination += 1
            return  # blackholed: unresponsive address
        now = self.sim.now
        delivery = target.ingress.plan(packet, now)
        if delivery is None:
            return  # dropped by the receiver's qdisc
        self.forwarded += 1
        if delivery <= now:
            # Unshaped ingress (the overwhelming common case): deliver
            # in the same callback instead of burning a scheduler entry
            # on a zero-delay hop.  Receive-side effects still dispatch
            # through the scheduler (socket events schedule their
            # callbacks), so cross-packet FIFO ordering is preserved.
            target.deliver(packet)
        else:
            self.sim.schedule_at(delivery, target.deliver, packet)


class Network:
    """Container for a topology: simulator + hosts + segments."""

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0) -> None:
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.hosts: Dict[str, "Host"] = {}
        self.segments: Dict[str, NetworkSegment] = {}

    def add_segment(self, name: str,
                    propagation_delay: float = 0.0001) -> NetworkSegment:
        if name in self.segments:
            raise ValueError(f"segment {name!r} already exists")
        segment = NetworkSegment(self.sim, name, propagation_delay)
        self.segments[name] = segment
        return segment

    def add_host(self, name: str) -> "Host":
        from .host import Host  # local import: host imports this module

        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        host = Host(self.sim, name)
        self.hosts[name] = host
        return host

    def connect(self, host: "Host", segment: NetworkSegment,
                addresses: Optional[List[Union[str, IPAddress]]] = None,
                iface_name: Optional[str] = None) -> Interface:
        """Create an interface on ``host`` and attach it to ``segment``."""
        name = iface_name or f"eth{len(host.interfaces)}"
        interface = host.add_interface(name)
        segment.attach(interface)
        for address in addresses or []:
            interface.add_address(address)
        return interface
