"""One-shot events for the discrete-event simulator.

An :class:`Event` is the synchronization primitive processes yield on.
It can *succeed* with a value or *fail* with an exception, exactly once.
Callbacks attached to an event run as scheduler callbacks at the
simulated instant the event triggers, which keeps execution order
deterministic (heap order is ``(time, sequence)``).

The module also provides the condition events :class:`AnyOf` and
:class:`AllOf` used by the Happy Eyeballs racing engine to wait on
"first connection attempt to finish" and "all queries answered".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

_PENDING = object()


class SimulationError(Exception):
    """Base class for simulator-level errors."""


class EventAlreadyTriggered(SimulationError):
    """Raised when succeed()/fail() is called on a triggered event."""


class Event:
    """A one-shot event that processes can wait on.

    Slot-based: events are the densest allocation in a campaign (every
    timeout, every process, every condition is one), so avoiding the
    per-instance ``__dict__`` is a measurable campaign-wide win.

    Parameters
    ----------
    sim:
        The owning simulator; used to schedule callback execution.
    name:
        Optional label used in ``repr`` for debugging traces.
    """

    __slots__ = ("_sim", "_name", "_value", "_exception", "_callbacks",
                 "defused")

    def __init__(self, sim: "Any", name: str = "") -> None:
        self._sim = sim
        self._name = name
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self.defused = False

    # -- state ---------------------------------------------------------

    @property
    def sim(self) -> "Any":
        return self._sim

    @property
    def triggered(self) -> bool:
        """True once succeed() or fail() has been called."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the callbacks have been dispatched."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> Any:
        if self._value is _PENDING and self._exception is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._value = value
        self._schedule_dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._exception = exception
        self._value = None
        self._schedule_dispatch()
        return self

    def _schedule_dispatch(self) -> None:
        self._sim.schedule(0.0, self._dispatch)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks is None:  # pragma: no cover - double dispatch guard
            return
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self.defused and not callbacks:
            # A failed event nobody waited on is a crashed process: make
            # the failure visible instead of silently swallowing it.
            self._sim.report_unhandled(self._exception)

    # -- waiting -------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs when the event is dispatched.

        If the event was already dispatched the callback is scheduled to
        run immediately (at the current simulated time), so late waiters
        observe the same semantics as early ones.
        """
        if self._callbacks is None:
            self._sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def discard_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._callbacks is not None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._exception is None else "failed"
        label = self._name or self.__class__.__name__
        return f"<{label} {state} at t={self._sim.now:.6f}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation.

    This is the dominant scheduling pattern (every DNS query deadline,
    retransmission timer, and Happy Eyeballs stagger is one), so the
    fast path matters: expiry dispatches callbacks directly — no second
    scheduler entry — and the debugging label is rendered lazily in
    ``__repr__`` instead of being formatted on every construction.
    """

    __slots__ = ("_delay", "_call")

    def __init__(self, sim: "Any", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay!r}")
        super().__init__(sim)
        self._delay = delay
        self._call = sim.schedule(delay, self._expire, value)

    @property
    def delay(self) -> float:
        return self._delay

    def _expire(self, value: Any) -> None:
        self._call = None
        if not self.triggered:
            self._value = value
            self._dispatch()

    def cancel(self) -> bool:
        """Physically remove the pending expiry from the timer wheel.

        Superseded deadlines (a Happy Eyeballs race that resolved before
        its stagger gate or overall deadline fired) used to sit in the
        wheel until they expired as no-ops; the wheel's O(1) unlink makes
        it cheaper to drop them eagerly.  Returns True when a pending
        expiry was removed; cancelling an expired timeout is a no-op.
        """
        call, self._call = self._call, None
        if call is None or self.triggered:
            return False
        call.cancel()
        return True

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._exception is None else "failed"
        label = self._name or f"Timeout({self._delay:g})"
        return f"<{label} {state} at t={self._sim.now:.6f}>"


class ConditionValue:
    """Mapping of triggered events to their values for conditions."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def add(self, event: Event) -> None:
        self.events.append(event)

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def first(self) -> Event:
        if not self.events:
            raise SimulationError("condition triggered with no events")
        return self.events[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConditionValue({self.events!r})"


class _Condition(Event):
    """Shared machinery for AnyOf / AllOf."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: "Any", events: Iterable[Event], name: str) -> None:
        super().__init__(sim, name=name)
        self._events = children = list(events)
        self._done = ConditionValue()
        for event in children:
            if event._sim is not sim:
                raise SimulationError("condition mixes events of two simulators")
        if not children:
            self.succeed(self._done)
            return
        on_child = self._on_child
        for event in children:
            callbacks = event._callbacks
            if callbacks is None:
                sim.schedule(0.0, on_child, event)
            else:
                callbacks.append(on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._done.add(event)
        self._check()

    def _check(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first of ``events`` succeeds.

    Fails as soon as any child fails.  Value is a :class:`ConditionValue`
    of the events that had triggered by dispatch time.
    """

    __slots__ = ()

    def __init__(self, sim: "Any", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="AnyOf")

    def _check(self) -> None:
        if len(self._done) >= 1:
            self.succeed(self._done)


class AllOf(_Condition):
    """Succeeds when all ``events`` have succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Any", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="AllOf")

    def _check(self) -> None:
        if len(self._done) == len(self._events):
            self.succeed(self._done)
