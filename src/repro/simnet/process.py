"""Generator-based processes for the discrete-event simulator.

A process is a Python generator that yields :class:`~repro.simnet.events.Event`
objects.  When a yielded event triggers, the process resumes with the
event's value (or the event's exception raised inside the generator).
This is the SimPy execution model, reimplemented here so the repository
has no runtime dependencies.

Processes are themselves events: they trigger with the generator's
return value, so one process can wait for another, and
:class:`~repro.simnet.events.AnyOf` can race processes — which is
exactly what Happy Eyeballs connection racing needs.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import Event, SimulationError

ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process when it is interrupted.

    The Happy Eyeballs racing engine interrupts losing connection
    attempts once a winner is established, mirroring how real clients
    abort or discard the other sockets.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator and steps it through the event loop."""

    __slots__ = ("_generator", "_waiting_on", "_resume_cb")

    def __init__(self, sim: "Any", generator: ProcessGenerator,
                 name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {generator!r}"
            )
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "Process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # One bound method reused for every wakeup: _resume is attached
        # as a callback on each yielded event, and rebinding it per
        # yield is measurable across a campaign.
        self._resume_cb = self._resume
        # Start the process at the current instant.
        self._sim.schedule(0.0, self._resume_cb, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        return self._waiting_on

    # -- execution -----------------------------------------------------

    def _resume(self, trigger: Optional[Event]) -> None:
        if self.triggered:
            # Interrupted or finished while a stale wakeup was queued.
            return
        self._waiting_on = None
        try:
            if trigger is None:
                target = self._generator.send(None)
            elif trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                trigger.defused = True
                target = self._generator.throw(trigger.exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self._name!r} yielded {target!r}, expected an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        self._waiting_on = target
        callbacks = target._callbacks
        if callbacks is None:
            self._sim.schedule(0.0, self._resume_cb, target)
        else:
            callbacks.append(self._resume_cb)

    # -- interruption ----------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, mirroring the "first
        successful connection wins, losers are discarded" semantics in
        Happy Eyeballs where cancellation can race completion.
        """
        if self.triggered:
            return
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._resume_cb)
            self._waiting_on = None
        self._sim.schedule(0.0, self._deliver_interrupt, Interrupt(cause))

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self.triggered:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process did not catch it: treat as a clean cancellation.
            self.defused = True
            self.fail(exc)
            return
        except BaseException as err:  # noqa: BLE001
            self.fail(err)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self._name!r} yielded {target!r} after interrupt"))
            return
        self._waiting_on = target
        callbacks = target._callbacks
        if callbacks is None:
            self._sim.schedule(0.0, self._resume_cb, target)
        else:
            callbacks.append(self._resume_cb)
