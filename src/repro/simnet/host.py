"""Simulated hosts.

A :class:`Host` owns interfaces, performs source-address selection and
routing (trivial in testbed topologies), hands out ephemeral ports, and
demultiplexes received packets to protocol stacks.  The transport
stacks themselves (TCP/UDP/QUIC state machines) live in
:mod:`repro.transport` and attach lazily, so the client software under
test interacts with a host the way an application interacts with an OS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from .addr import Family, IPAddress, family_of, parse_address
from .capture import PacketCapture
from .iface import Interface
from .packet import Packet, Protocol
from .scheduler import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..transport.quic import QUICStack
    from ..transport.tcp import TCPStack
    from ..transport.udp import UDPStack

EPHEMERAL_PORT_START = 40000
EPHEMERAL_PORT_END = 65535

PacketHandler = Callable[[Packet, Interface], None]


class NoRouteError(Exception):
    """Host has no address of the required family: family is unavailable.

    Clients on IPv4-only or IPv6-only hosts observe this as the familiar
    ``EHOSTUNREACH`` / no-route condition.
    """


class Host:
    """A dual-stack-capable simulated machine."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: Dict[str, Interface] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        self._handlers: Dict[Protocol, PacketHandler] = {}
        self._tcp: Optional["TCPStack"] = None
        self._udp: Optional["UDPStack"] = None
        self._quic: Optional["QUICStack"] = None
        # Preferred source addresses, per family (RFC 6724's concern;
        # configurable so tests can pin deterministic addresses).
        self.preferred_source: Dict[Family, IPAddress] = {}
        # Hot-path caches: address ownership is checked on every
        # received frame and routing on every sent one, so both are
        # O(1) lookups invalidated on any address change.
        self._address_set: "set[IPAddress]" = set()
        # Integer forms of the owned addresses, per family: hashing an
        # int is far cheaper than ipaddress's hex-string hash, and the
        # receive path checks ownership for every delivered frame.
        self._owned_v4: "set[int]" = set()
        self._owned_v6: "set[int]" = set()
        self._route_cache: Dict[Family, Interface] = {}

    # -- interfaces / addresses ------------------------------------------

    def add_interface(self, name: str) -> Interface:
        if name in self.interfaces:
            raise ValueError(f"interface {name!r} exists on {self.name}")
        interface = Interface(self, name)
        self.interfaces[name] = interface
        self._route_cache.clear()
        return interface

    def address_added(self, address: IPAddress, interface: Interface) -> None:
        family = family_of(address)
        self.preferred_source.setdefault(family, address)
        self._address_set.add(address)
        (self._owned_v6 if family is Family.V6
         else self._owned_v4).add(int(address))
        self._route_cache.clear()

    def address_removed(self, address: IPAddress,
                        interface: Interface) -> None:
        self._address_set.discard(address)
        family = family_of(address)
        (self._owned_v6 if family is Family.V6
         else self._owned_v4).discard(int(address))
        self._route_cache.clear()
        if self.preferred_source.get(family) == address:
            del self.preferred_source[family]
            remaining = self.addresses_of(family)
            if remaining:
                self.preferred_source[family] = remaining[0]

    @property
    def addresses(self) -> List[IPAddress]:
        result: List[IPAddress] = []
        for interface in self.interfaces.values():
            result.extend(interface.addresses)
        return result

    def addresses_of(self, family: Family) -> List[IPAddress]:
        return [a for a in self.addresses if family_of(a) is family]

    def owns_address(self, address: Union[str, IPAddress]) -> bool:
        # Address objects (the hot path) hit the set directly; strings
        # go through the memoized parser first.
        if type(address) is not str:
            return address in self._address_set
        return parse_address(address) in self._address_set

    def is_dual_stack(self) -> bool:
        return bool(self.addresses_of(Family.V4)) and bool(
            self.addresses_of(Family.V6))

    # -- routing ------------------------------------------------------------

    def route(self, dst: Union[str, IPAddress]) -> Interface:
        """Pick the outgoing interface for ``dst``."""
        return self._route_for(family_of(dst), dst)

    def _route_for(self, family: Family,
                   dst: Union[str, IPAddress]) -> Interface:
        cached = self._route_cache.get(family)
        if cached is not None:
            return cached
        for interface in self.interfaces.values():
            if interface.segment is not None and interface.addresses_of(family):
                # Only successful lookups are cached; failures must
                # keep re-evaluating (an address may appear later).
                self._route_cache[family] = interface
                return interface
        raise NoRouteError(
            f"{self.name} has no {family.label} connectivity toward {dst}")

    def source_address_for(self, dst: Union[str, IPAddress]) -> IPAddress:
        family = family_of(dst)
        preferred = self.preferred_source.get(family)
        if preferred is not None:
            return preferred
        raise NoRouteError(
            f"{self.name} has no {family.label} source address")

    def allocate_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > EPHEMERAL_PORT_END:
            self._next_ephemeral = EPHEMERAL_PORT_START
        return port

    # -- data path ------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        self._route_for(packet.family, packet.dst).send(packet)

    def receive(self, packet: Packet, interface: Interface) -> None:
        owned = (self._owned_v6 if packet.family is Family.V6
                 else self._owned_v4)
        if packet.dst._ip not in owned:
            return  # not for us (promiscuous frames are dropped)
        handler = self._handlers.get(packet.protocol)
        if handler is not None:
            handler(packet, interface)
            return
        if packet.protocol is Protocol.TCP and not packet.is_rst:
            # No TCP stack: behave like a closed port (refuse).
            from .packet import TCPFlags

            self.send(Packet(flags=TCPFlags.RST | TCPFlags.ACK,
                             **packet.reply_template()))

    def register_handler(self, protocol: Protocol,
                         handler: PacketHandler) -> None:
        if protocol in self._handlers:
            raise ValueError(
                f"{protocol} handler already registered on {self.name}")
        self._handlers[protocol] = handler

    # -- protocol stacks (lazy) -------------------------------------------

    @property
    def tcp(self) -> "TCPStack":
        if self._tcp is None:
            from ..transport.tcp import TCPStack

            self._tcp = TCPStack(self)
        return self._tcp

    @property
    def udp(self) -> "UDPStack":
        if self._udp is None:
            from ..transport.udp import UDPStack

            self._udp = UDPStack(self)
        return self._udp

    @property
    def quic(self) -> "QUICStack":
        if self._quic is None:
            from ..transport.quic import QUICStack

            self._quic = QUICStack(self)
        return self._quic

    # -- capturing ----------------------------------------------------------

    def start_capture(self, name: Optional[str] = None) -> PacketCapture:
        """Attach a fresh capture to every interface (``tcpdump -i any``)."""
        capture = PacketCapture(name or f"{self.name}-capture")
        for interface in self.interfaces.values():
            interface.attach_capture(capture)
        return capture

    def stop_capture(self, capture: PacketCapture) -> PacketCapture:
        capture.stop()
        for interface in self.interfaces.values():
            try:
                interface.detach_capture(capture)
            except ValueError:
                pass
        return capture

    def __repr__(self) -> str:
        return f"<Host {self.name} addrs={[str(a) for a in self.addresses]}>"
