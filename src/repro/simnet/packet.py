"""Packet model for the simulated network.

Packets carry just enough layer-3/4 structure for the study's
observables: source/destination addresses (hence address family), the
transport protocol, ports, TCP control flags, and an opaque payload
(DNS messages travel as real RFC 1035 wire bytes).

Sizes are estimated from header sizes so netem rate shaping and
byte-count statistics behave plausibly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from .addr import Family, IPAddress, family_of, parse_address

_packet_ids = itertools.count(1)

IPV4_HEADER = 20
IPV6_HEADER = 40
TCP_HEADER = 20
UDP_HEADER = 8


class Protocol(enum.Enum):
    """Transport protocol of a simulated packet."""

    TCP = "tcp"
    UDP = "udp"
    QUIC = "quic"  # carried over UDP in reality; first-class here

    def __str__(self) -> str:
        return self.value


class TCPFlags(enum.Flag):
    """TCP control flags (subset used by the handshake machine)."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    RST = enum.auto()
    FIN = enum.auto()
    PSH = enum.auto()

    def short(self) -> str:
        parts = [flag.name for flag in TCPFlags
                 if flag is not TCPFlags.NONE and flag in self]
        return "|".join(parts) if parts else "NONE"


class QUICPacketType(enum.Enum):
    """QUIC long-header packet types used by the handshake model."""

    INITIAL = "initial"
    HANDSHAKE = "handshake"
    ONE_RTT = "1rtt"


@dataclass
class Packet:
    """A simulated IP packet with transport headers.

    ``payload`` is opaque bytes (or a small application object for
    convenience in tests).  ``meta`` is scratch space for instrumentation
    and never influences forwarding behaviour.
    """

    src: IPAddress
    dst: IPAddress
    protocol: Protocol
    sport: int
    dport: int
    payload: bytes = b""
    flags: TCPFlags = TCPFlags.NONE
    seq: int = 0
    ack: int = 0
    quic_type: Optional[QUICPacketType] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.src = parse_address(self.src)
        self.dst = parse_address(self.dst)
        if family_of(self.src) is not family_of(self.dst):
            raise ValueError(
                f"packet mixes families: {self.src} -> {self.dst}")
        if not 0 <= self.sport <= 65535:
            raise ValueError(f"bad source port {self.sport!r}")
        if not 0 <= self.dport <= 65535:
            raise ValueError(f"bad destination port {self.dport!r}")

    @property
    def family(self) -> Family:
        return family_of(self.dst)

    @property
    def size(self) -> int:
        """Estimated on-wire size in bytes."""
        network = IPV4_HEADER if self.family is Family.V4 else IPV6_HEADER
        transport = TCP_HEADER if self.protocol is Protocol.TCP else UDP_HEADER
        body = len(self.payload) if isinstance(self.payload, bytes) else 0
        return network + transport + body

    @property
    def is_syn(self) -> bool:
        return (self.protocol is Protocol.TCP
                and TCPFlags.SYN in self.flags
                and TCPFlags.ACK not in self.flags)

    @property
    def is_syn_ack(self) -> bool:
        return (self.protocol is Protocol.TCP
                and TCPFlags.SYN in self.flags
                and TCPFlags.ACK in self.flags)

    @property
    def is_rst(self) -> bool:
        return self.protocol is Protocol.TCP and TCPFlags.RST in self.flags

    @property
    def is_connection_attempt(self) -> bool:
        """True for the packet kinds that open a connection.

        This is what the testbed's CAD inference looks for: the first
        TCP SYN (or QUIC Initial) per address family in a capture.
        """
        if self.protocol is Protocol.TCP:
            return self.is_syn
        if self.protocol is Protocol.QUIC:
            return self.quic_type is QUICPacketType.INITIAL
        return False

    def reply_template(self) -> "dict":
        """Header fields for a reply packet (src/dst and ports swapped)."""
        return {
            "src": self.dst,
            "dst": self.src,
            "protocol": self.protocol,
            "sport": self.dport,
            "dport": self.sport,
        }

    def describe(self) -> str:
        """Single-line human-readable rendering (tcpdump style)."""
        if self.protocol is Protocol.TCP:
            detail = f"[{self.flags.short()}]"
        elif self.protocol is Protocol.QUIC:
            detail = f"[{self.quic_type.value if self.quic_type else '?'}]"
        else:
            detail = f"len={len(self.payload)}"
        return (f"{self.family.label} {self.src}.{self.sport} > "
                f"{self.dst}.{self.dport} {self.protocol}: {detail}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Packet #{self.packet_id} {self.describe()}>"
