"""Packet model for the simulated network.

Packets carry just enough layer-3/4 structure for the study's
observables: source/destination addresses (hence address family), the
transport protocol, ports, TCP control flags, and an opaque payload
(DNS messages travel as real RFC 1035 wire bytes).

Sizes are estimated from header sizes so netem rate shaping and
byte-count statistics behave plausibly.
"""

from __future__ import annotations

import enum
import itertools
from ipaddress import IPv4Address as _IPv4, IPv6Address as _IPv6
from typing import Optional, Union

from .addr import Family, IPAddress, parse_address

_packet_ids = itertools.count(1)

IPV4_HEADER = 20
IPV6_HEADER = 40
TCP_HEADER = 20
UDP_HEADER = 8


class Protocol(enum.Enum):
    """Transport protocol of a simulated packet."""

    TCP = "tcp"
    UDP = "udp"
    QUIC = "quic"  # carried over UDP in reality; first-class here

    def __str__(self) -> str:
        return self.value


class TCPFlags(enum.Flag):
    """TCP control flags (subset used by the handshake machine)."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    RST = enum.auto()
    FIN = enum.auto()
    PSH = enum.auto()

    def short(self) -> str:
        parts = [flag.name for flag in TCPFlags
                 if flag is not TCPFlags.NONE and flag in self]
        return "|".join(parts) if parts else "NONE"


class QUICPacketType(enum.Enum):
    """QUIC long-header packet types used by the handshake model."""

    INITIAL = "initial"
    HANDSHAKE = "handshake"
    ONE_RTT = "1rtt"


class Packet:
    """A simulated IP packet with transport headers.

    ``payload`` is opaque bytes (or a small application object for
    convenience in tests) shared by reference across every hop — frames
    are flyweights, never copied in flight.  ``meta`` is scratch space
    for instrumentation, materialized lazily on first access because the
    overwhelming majority of packets never carry any.

    Slot-based: a campaign allocates one of these per simulated frame,
    so dropping the per-instance ``__dict__`` and precomputing
    ``family`` once (instead of re-deriving it from ``dst`` at every
    filter, route, and capture touchpoint) is a packet-path-wide win.
    """

    __slots__ = ("src", "dst", "protocol", "sport", "dport", "payload",
                 "flags", "seq", "ack", "quic_type", "packet_id",
                 "family", "_meta")

    def __init__(self, src: Union[str, IPAddress],
                 dst: Union[str, IPAddress],
                 protocol: Protocol, sport: int, dport: int,
                 payload: bytes = b"", flags: TCPFlags = TCPFlags.NONE,
                 seq: int = 0, ack: int = 0,
                 quic_type: Optional[QUICPacketType] = None,
                 packet_id: Optional[int] = None,
                 meta: Optional[dict] = None) -> None:
        # Transports hand in already-parsed address objects; the
        # isinstance ladder classifies and validates in one pass without
        # round-tripping through the parser on the per-packet path.
        if not isinstance(src, (_IPv4, _IPv6)):
            src = parse_address(src)
        if not isinstance(dst, (_IPv4, _IPv6)):
            dst = parse_address(dst)
        self.src = src
        self.dst = dst
        if isinstance(src, _IPv4):
            src_family = Family.V4
            matched = isinstance(dst, _IPv4)
        else:
            src_family = Family.V6
            matched = isinstance(dst, _IPv6)
        if not matched:
            raise ValueError(
                f"packet mixes families: {self.src} -> {self.dst}")
        if not 0 <= sport <= 65535:
            raise ValueError(f"bad source port {sport!r}")
        if not 0 <= dport <= 65535:
            raise ValueError(f"bad destination port {dport!r}")
        self.protocol = protocol
        self.sport = sport
        self.dport = dport
        self.payload = payload
        self.flags = flags
        self.seq = seq
        self.ack = ack
        self.quic_type = quic_type
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.family = src_family
        self._meta = meta

    @property
    def meta(self) -> dict:
        """Instrumentation scratch space (lazily allocated)."""
        meta = self._meta
        if meta is None:
            meta = self._meta = {}
        return meta

    @property
    def size(self) -> int:
        """Estimated on-wire size in bytes."""
        network = IPV4_HEADER if self.family is Family.V4 else IPV6_HEADER
        transport = TCP_HEADER if self.protocol is Protocol.TCP else UDP_HEADER
        body = len(self.payload) if isinstance(self.payload, bytes) else 0
        return network + transport + body

    @property
    def is_syn(self) -> bool:
        return (self.protocol is Protocol.TCP
                and TCPFlags.SYN in self.flags
                and TCPFlags.ACK not in self.flags)

    @property
    def is_syn_ack(self) -> bool:
        return (self.protocol is Protocol.TCP
                and TCPFlags.SYN in self.flags
                and TCPFlags.ACK in self.flags)

    @property
    def is_rst(self) -> bool:
        return self.protocol is Protocol.TCP and TCPFlags.RST in self.flags

    @property
    def is_connection_attempt(self) -> bool:
        """True for the packet kinds that open a connection.

        This is what the testbed's CAD inference looks for: the first
        TCP SYN (or QUIC Initial) per address family in a capture.
        """
        if self.protocol is Protocol.TCP:
            return self.is_syn
        if self.protocol is Protocol.QUIC:
            return self.quic_type is QUICPacketType.INITIAL
        return False

    def reply_template(self) -> "dict":
        """Header fields for a reply packet (src/dst and ports swapped)."""
        return {
            "src": self.dst,
            "dst": self.src,
            "protocol": self.protocol,
            "sport": self.dport,
            "dport": self.sport,
        }

    def describe(self) -> str:
        """Single-line human-readable rendering (tcpdump style)."""
        if self.protocol is Protocol.TCP:
            detail = f"[{self.flags.short()}]"
        elif self.protocol is Protocol.QUIC:
            detail = f"[{self.quic_type.value if self.quic_type else '?'}]"
        else:
            detail = f"len={len(self.payload)}"
        return (f"{self.family.label} {self.src}.{self.sport} > "
                f"{self.dst}.{self.dport} {self.protocol}: {detail}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Packet #{self.packet_id} {self.describe()}>"
