"""IP address helpers used across the simulator.

The whole study is about the choice between two address families, so the
:class:`Family` enum appears in nearly every observable: packets,
netem filters, capture queries, Happy Eyeballs attempt records, and all
of the paper's tables.
"""

from __future__ import annotations

import enum
import ipaddress
from typing import Iterable, Iterator, List, Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


class Family(enum.Enum):
    """IP address family."""

    V4 = 4
    V6 = 6

    @property
    def label(self) -> str:
        return "IPv4" if self is Family.V4 else "IPv6"

    @property
    def other(self) -> "Family":
        return Family.V6 if self is Family.V4 else Family.V4

    def __str__(self) -> str:
        return self.label


# Simulations parse the same handful of address literals millions of
# times (every packet hop, route lookup, and capture query goes through
# here), so both helpers memoize.  The tables are bounded and cleared on
# overflow — a simulation uses a few hundred distinct addresses, so the
# caps exist only to keep pathological inputs from growing memory.
_PARSE_CACHE: "dict[str, IPAddress]" = {}
_FAMILY_CACHE: "dict[Union[str, IPAddress], Family]" = {}
_ADDR_CACHE_CAP = 65536


def parse_address(value: Union[str, IPAddress]) -> IPAddress:
    """Parse ``value`` into an IPv4 or IPv6 address object (memoized)."""
    cached = _PARSE_CACHE.get(value) if type(value) is str else None
    if cached is not None:
        return cached
    if isinstance(value, (ipaddress.IPv4Address, ipaddress.IPv6Address)):
        return value
    address = ipaddress.ip_address(value)
    if type(value) is str:
        if len(_PARSE_CACHE) >= _ADDR_CACHE_CAP:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[value] = address
    return address


def family_of(address: Union[str, IPAddress]) -> Family:
    """Address family of ``address`` (memoized for strings).

    Address *objects* answer via an isinstance check — cheaper than a
    cache lookup, because :mod:`ipaddress` hashing is Python-level.
    """
    if isinstance(address, ipaddress.IPv4Address):
        return Family.V4
    if isinstance(address, ipaddress.IPv6Address):
        return Family.V6
    cached = _FAMILY_CACHE.get(address)
    if cached is not None:
        return cached
    addr = parse_address(address)
    family = Family.V4 if addr.version == 4 else Family.V6
    if type(address) is str:
        if len(_FAMILY_CACHE) >= _ADDR_CACHE_CAP:
            _FAMILY_CACHE.clear()
        _FAMILY_CACHE[address] = family
    return family


_STR_CACHE: "dict[IPAddress, str]" = {}


def address_str(address: Union[str, IPAddress]) -> str:
    """``str(address)``, memoized (IPv6 compression is not cheap)."""
    if type(address) is str:
        return address
    cached = _STR_CACHE.get(address)
    if cached is None:
        if len(_STR_CACHE) >= _ADDR_CACHE_CAP:
            _STR_CACHE.clear()
        _STR_CACHE[address] = cached = str(address)
    return cached


def is_v6(address: Union[str, IPAddress]) -> bool:
    return family_of(address) is Family.V6


def split_by_family(addresses: Iterable[Union[str, IPAddress]]
                    ) -> "tuple[List[IPAddress], List[IPAddress]]":
    """Split ``addresses`` into ``(v4_list, v6_list)`` preserving order."""
    v4: List[IPAddress] = []
    v6: List[IPAddress] = []
    for value in addresses:
        addr = parse_address(value)
        (v6 if addr.version == 6 else v4).append(addr)
    return v4, v6


class AddressAllocator:
    """Hands out unique addresses from a prefix.

    The web-based tool assigns *dedicated* IPv4 and IPv6 addresses to
    every delay step (§4.3(ii)); testbeds allocate per-test server
    addresses the same way.  The allocator skips the network and
    broadcast addresses of IPv4 prefixes.
    """

    def __init__(self, network: Union[str, IPNetwork]) -> None:
        if isinstance(network, str):
            network = ipaddress.ip_network(network, strict=True)
        self._network = network
        self._hosts: Iterator[IPAddress] = network.hosts()
        self._handed_out: List[IPAddress] = []

    @property
    def network(self) -> IPNetwork:
        return self._network

    @property
    def family(self) -> Family:
        return Family.V4 if self._network.version == 4 else Family.V6

    @property
    def handed_out(self) -> List[IPAddress]:
        return list(self._handed_out)

    def allocate(self) -> IPAddress:
        """Next unused host address in the prefix."""
        try:
            address = next(self._hosts)
        except StopIteration:
            raise RuntimeError(
                f"address pool {self._network} exhausted "
                f"after {len(self._handed_out)} allocations") from None
        self._handed_out.append(address)
        return address

    def allocate_many(self, count: int) -> List[IPAddress]:
        return [self.allocate() for _ in range(count)]


class DualStackAllocator:
    """Paired IPv4 + IPv6 allocation for dual-stack services."""

    def __init__(self, v4_network: Union[str, IPNetwork],
                 v6_network: Union[str, IPNetwork]) -> None:
        self.v4 = AddressAllocator(v4_network)
        self.v6 = AddressAllocator(v6_network)
        if self.v4.family is not Family.V4:
            raise ValueError(f"{v4_network!r} is not an IPv4 prefix")
        if self.v6.family is not Family.V6:
            raise ValueError(f"{v6_network!r} is not an IPv6 prefix")

    def allocate_pair(self) -> "tuple[IPAddress, IPAddress]":
        """One fresh (IPv4, IPv6) address pair."""
        return self.v4.allocate(), self.v6.allocate()

    def allocate(self, family: Family) -> IPAddress:
        return (self.v4 if family is Family.V4 else self.v6).allocate()
