"""Packet capture — the testbed's measurement primitive.

The local testbed infers every Happy Eyeballs parameter from packet
captures on the client node (§4.3): the CAD is the time between the
first IPv6 and the first IPv4 connection-attempt packet.  This module is
the simulated ``tcpdump``: a tap attached to an interface records
timestamped frames in both directions and offers the query helpers the
inference code needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional

from .addr import Family
from .packet import Packet, Protocol


class Direction(enum.Enum):
    """Direction of a captured frame relative to the capturing host."""

    OUT = "out"
    IN = "in"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class CapturedFrame:
    """One timestamped frame in a capture.

    ``slots=True`` matters: captures record every frame of every run,
    so per-frame ``__dict__`` allocation was measurable campaign-wide.
    """

    timestamp: float
    direction: Direction
    packet: Packet

    @property
    def family(self) -> Family:
        return self.packet.family

    def describe(self) -> str:
        arrow = "->" if self.direction is Direction.OUT else "<-"
        return f"{self.timestamp:10.6f} {arrow} {self.packet.describe()}"


FrameFilter = Callable[[CapturedFrame], bool]


class PacketCapture:
    """An in-memory pcap with simple query helpers.

    Captures can be stopped and restarted; the testbed starts a fresh
    capture per test-run configuration, mirroring the framework's
    ``start capture.sh`` / ``stop capture.sh`` stages (App. Figure 3).
    """

    def __init__(self, name: str = "capture") -> None:
        self.name = name
        self._frames: List[CapturedFrame] = []
        self._running = True

    # -- recording -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        self._running = True

    def stop(self) -> None:
        self._running = False

    def clear(self) -> None:
        self._frames.clear()

    def record(self, timestamp: float, direction: Direction,
               packet: Packet) -> None:
        if self._running:
            self._frames.append(CapturedFrame(timestamp, direction, packet))

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[CapturedFrame]:
        return iter(self._frames)

    @property
    def frames(self) -> List[CapturedFrame]:
        return list(self._frames)

    def filter(self, predicate: FrameFilter) -> List[CapturedFrame]:
        return [frame for frame in self._frames if predicate(frame)]

    def first(self, predicate: FrameFilter) -> Optional[CapturedFrame]:
        for frame in self._frames:
            if predicate(frame):
                return frame
        return None

    def connection_attempts(self, family: Optional[Family] = None,
                            direction: Direction = Direction.OUT
                            ) -> List[CapturedFrame]:
        """Outgoing TCP SYNs / QUIC Initials, optionally one family."""
        return self.filter(lambda frame: (
            frame.direction is direction
            and frame.packet.is_connection_attempt
            and (family is None or frame.family is family)))

    def first_connection_attempt(self, family: Family
                                 ) -> Optional[CapturedFrame]:
        attempts = self.connection_attempts(family=family)
        return attempts[0] if attempts else None

    def dns_queries(self, family: Optional[Family] = None
                    ) -> List[CapturedFrame]:
        """Outgoing UDP packets to port 53."""
        return self.filter(lambda frame: (
            frame.direction is Direction.OUT
            and frame.packet.protocol is Protocol.UDP
            and frame.packet.dport == 53
            and (family is None or frame.family is family)))

    def count(self, predicate: FrameFilter) -> int:
        return sum(1 for frame in self._frames if predicate(frame))

    def timespan(self) -> Optional["tuple[float, float]"]:
        if not self._frames:
            return None
        return self._frames[0].timestamp, self._frames[-1].timestamp

    def render(self, limit: Optional[int] = None) -> str:
        """tcpdump-like text rendering, for examples and debugging."""
        frames: Iterable[CapturedFrame] = self._frames
        if limit is not None:
            frames = self._frames[:limit]
        lines = [frame.describe() for frame in frames]
        if limit is not None and len(self._frames) > limit:
            lines.append(f"... {len(self._frames) - limit} more frames")
        return "\n".join(lines)
