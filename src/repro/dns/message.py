"""DNS message wire codec (RFC 1035, EDNS per RFC 6891).

Messages are what actually travels in simulated UDP payloads between
stub resolvers, recursive resolvers, and the custom authoritative
server, so the codec round-trips everything the study uses, including
name compression across sections.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from .errors import MessageError
from .name import DNSName
from .rdata import (CompressionTable, OPT, Rdata, RdataClass, RdataType,
                    decode_rdata)

HEADER_LENGTH = 12

#: Process-wide intern table for :meth:`DNSMessage.decode_interned`.
#: Separate from the capture-analysis interning in
#: :mod:`repro.testbed.inference`, which keeps its own hit counters.
_INTERN_TABLE: "dict[bytes, DNSMessage]" = {}
_INTERN_TABLE_CAP = 65536

#: Wire templates for plain queries, keyed by (qname, qtype, rd).  Only
#: the 16-bit id differs between two queries for the same name/type, so
#: the tail of the wire can be encoded once and reused.
_QUERY_WIRE_CACHE: "dict" = {}
_QUERY_WIRE_CACHE_CAP = 65536


def encode_query_wire(name: "DNSName", rtype: "RdataType", query_id: int,
                      rd: bool = True) -> bytes:
    """Wire bytes of ``DNSMessage.make_query(...).encode()``, memoized.

    Byte-identical to encoding the message: the id occupies exactly the
    first two bytes of the header, so a per-(name, type, rd) template is
    stamped with the id.
    """
    key = (name, rtype, rd)
    template = _QUERY_WIRE_CACHE.get(key)
    if template is None:
        template = DNSMessage.make_query(name, rtype, 0, rd=rd).encode()
        if len(_QUERY_WIRE_CACHE) >= _QUERY_WIRE_CACHE_CAP:
            _QUERY_WIRE_CACHE.clear()
        _QUERY_WIRE_CACHE[key] = template
    if not 0 <= query_id <= 0xFFFF:
        raise MessageError(f"bad message id {query_id}")
    return query_id.to_bytes(2, "big") + template[2:]


class Opcode(enum.IntEnum):
    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: DNSName
    rtype: RdataType
    rclass: RdataClass = RdataClass.IN

    def encode(self, compression: Optional[CompressionTable],
               offset: int) -> bytes:
        out = bytearray(self.name.encode(compression, offset))
        out += struct.pack("!HH", int(self.rtype), int(self.rclass))
        return bytes(out)

    @classmethod
    def decode(cls, wire: bytes, offset: int) -> Tuple["Question", int]:
        name, offset = DNSName.decode(wire, offset)
        if offset + 4 > len(wire):
            raise MessageError("truncated question")
        rtype, rclass = struct.unpack("!HH", wire[offset:offset + 4])
        return cls(name, RdataType(rtype), RdataClass(rclass)), offset + 4

    def __str__(self) -> str:
        return f"{self.name} {self.rtype.name}"


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record with its owner name and TTL."""

    name: DNSName
    rtype: RdataType
    ttl: int
    rdata: Rdata
    rclass: RdataClass = RdataClass.IN

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 0x7FFFFFFF:
            raise MessageError(f"bad TTL {self.ttl}")

    def encode(self, compression: Optional[CompressionTable],
               offset: int) -> bytes:
        out = bytearray(self.name.encode(compression, offset))
        out += struct.pack("!HHI", int(self.rtype), int(self.rclass),
                           self.ttl)
        rdata_offset = offset + len(out) + 2
        rdata_wire = self.rdata.to_wire(compression, rdata_offset)
        out += struct.pack("!H", len(rdata_wire))
        out += rdata_wire
        return bytes(out)

    @classmethod
    def decode(cls, wire: bytes, offset: int) -> Tuple["ResourceRecord", int]:
        name, offset = DNSName.decode(wire, offset)
        if offset + 10 > len(wire):
            raise MessageError("truncated resource record header")
        rtype, rclass, ttl, rdlength = struct.unpack(
            "!HHIH", wire[offset:offset + 10])
        offset += 10
        if offset + rdlength > len(wire):
            raise MessageError("rdata runs past end of message")
        rdata = decode_rdata(rtype, wire, offset, rdlength)
        try:
            rtype_enum = RdataType(rtype)
        except ValueError:
            rtype_enum = rtype  # type: ignore[assignment]
        try:
            rclass_enum = RdataClass(rclass)
        except ValueError:
            rclass_enum = rclass  # type: ignore[assignment]
        record = cls(name, rtype_enum, ttl, rdata, rclass_enum)
        return record, offset + rdlength

    def __str__(self) -> str:
        return (f"{self.name} {self.ttl} {self.rclass.name} "
                f"{RdataType(self.rtype).name} {self.rdata}")


@dataclass
class DNSMessage:
    """A full DNS message."""

    id: int = 0
    qr: bool = False
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    rcode: Rcode = Rcode.NOERROR
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.id <= 0xFFFF:
            raise MessageError(f"bad message id {self.id}")

    # -- construction ----------------------------------------------------------

    @classmethod
    def make_query(cls, name: DNSName, rtype: RdataType, query_id: int,
                   rd: bool = True) -> "DNSMessage":
        return cls(id=query_id, rd=rd,
                   questions=[Question(name, rtype)])

    def make_response(self, rcode: Rcode = Rcode.NOERROR,
                      aa: bool = False, ra: bool = False) -> "DNSMessage":
        """Start a response to this query (echoes id and question)."""
        return DNSMessage(id=self.id, qr=True, opcode=self.opcode,
                          aa=aa, rd=self.rd, ra=ra, rcode=rcode,
                          questions=list(self.questions))

    # -- convenience accessors ----------------------------------------------

    @property
    def question(self) -> Question:
        if not self.questions:
            raise MessageError("message has no question")
        return self.questions[0]

    def answer_rdatas(self, rtype: Optional[RdataType] = None) -> List[Rdata]:
        return [rr.rdata for rr in self.answers
                if rtype is None or rr.rtype == rtype]

    def addresses(self) -> List:
        """All A/AAAA addresses in the answer section."""
        out = []
        for rr in self.answers:
            if rr.rtype in (RdataType.A, RdataType.AAAA):
                out.append(rr.rdata.address)  # type: ignore[attr-defined]
        return out

    # -- wire format -------------------------------------------------------------

    def encode(self) -> bytes:
        flags = 0
        if self.qr:
            flags |= 0x8000
        flags |= (int(self.opcode) & 0xF) << 11
        if self.aa:
            flags |= 0x0400
        if self.tc:
            flags |= 0x0200
        if self.rd:
            flags |= 0x0100
        if self.ra:
            flags |= 0x0080
        flags |= int(self.rcode) & 0xF
        out = bytearray(struct.pack(
            "!HHHHHH", self.id, flags, len(self.questions),
            len(self.answers), len(self.authorities), len(self.additionals)))
        compression: CompressionTable = {}
        for question in self.questions:
            out += question.encode(compression, len(out))
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                out += record.encode(compression, len(out))
        return bytes(out)

    @classmethod
    def decode_interned(cls, wire: bytes) -> "DNSMessage":
        """Decode ``wire``, sharing one decoded message per distinct payload.

        Simulated campaigns decode the same handful of wire payloads
        over and over (the same queries and responses recur across every
        run of a sweep), so this is a decode-free fast path: the first
        decode of a payload is cached process-wide and returned for
        every later occurrence.

        The returned message is **shared and must be treated as
        read-only** — use plain :meth:`decode` anywhere the caller
        mutates the result (e.g. a resolver stamping flags onto an
        upstream response).  The table is bounded and cleared on
        overflow; decode failures are not cached.
        """
        message = _INTERN_TABLE.get(wire)
        if message is None:
            message = cls.decode(wire)
            if len(_INTERN_TABLE) >= _INTERN_TABLE_CAP:
                _INTERN_TABLE.clear()
            _INTERN_TABLE[wire] = message
        return message

    @classmethod
    def decode(cls, wire: bytes) -> "DNSMessage":
        if len(wire) < HEADER_LENGTH:
            raise MessageError(f"message too short: {len(wire)} bytes")
        (msg_id, flags, qdcount, ancount,
         nscount, arcount) = struct.unpack("!HHHHHH", wire[:HEADER_LENGTH])
        message = cls(
            id=msg_id,
            qr=bool(flags & 0x8000),
            opcode=Opcode((flags >> 11) & 0xF),
            aa=bool(flags & 0x0400),
            tc=bool(flags & 0x0200),
            rd=bool(flags & 0x0100),
            ra=bool(flags & 0x0080),
            rcode=Rcode(flags & 0xF),
        )
        offset = HEADER_LENGTH
        for _ in range(qdcount):
            question, offset = Question.decode(wire, offset)
            message.questions.append(question)
        for count, section in ((ancount, message.answers),
                               (nscount, message.authorities),
                               (arcount, message.additionals)):
            for _ in range(count):
                record, offset = ResourceRecord.decode(wire, offset)
                section.append(record)
        return message

    def summary(self) -> str:
        """dig-style one-liner for traces and examples."""
        parts = [f"id={self.id}", "response" if self.qr else "query"]
        if self.questions:
            parts.append(str(self.question))
        if self.qr:
            parts.append(f"rcode={self.rcode.name}")
            parts.append(f"answers={len(self.answers)}")
        return " ".join(parts)
