"""Client-side stub resolver.

Implements the query behaviour HEv2 §3 expects from clients: a AAAA
query issued first, *immediately* followed by the A query, with both
answers surfacing as separately timestamped events — the inputs to the
Resolution Delay state machine.

The stub also reproduces the §5.2 pathology knobs: its per-query
timeout/retry policy is configurable because "Chromium-based browsers
and Firefox depend on the resolver's timeout.  They do not apply any
DNS resolution timeout on their own."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..simnet.addr import IPAddress, parse_address
from ..simnet.events import Event
from ..simnet.host import Host
from ..simnet.process import Process
from .errors import QueryTimeout
from .message import DNSMessage, Rcode, encode_query_wire
from .name import DNSName
from .rdata import RdataType

DEFAULT_QUERY_TIMEOUT = 5.0
DEFAULT_RETRIES = 2


@dataclass
class StubAnswer:
    """One resolved record type, with timing, as the HE engine sees it."""

    rtype: RdataType
    qname: DNSName
    asked_at: float
    answered_at: Optional[float] = None
    message: Optional[DNSMessage] = None
    error: Optional[Exception] = None
    addresses: List[IPAddress] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and self.message is not None

    @property
    def rcode(self) -> Optional[Rcode]:
        return self.message.rcode if self.message is not None else None

    @property
    def usable(self) -> bool:
        """True when the answer yields at least one address."""
        return self.ok and self.rcode is Rcode.NOERROR and bool(
            self.addresses)

    @property
    def latency(self) -> Optional[float]:
        if self.answered_at is None:
            return None
        return self.answered_at - self.asked_at


class StubResolver:
    """Sends queries to configured recursive resolvers over UDP."""

    def __init__(self, host: Host,
                 nameservers: Sequence[Union[str, IPAddress]],
                 timeout: float = DEFAULT_QUERY_TIMEOUT,
                 retries: int = DEFAULT_RETRIES,
                 port: int = 53) -> None:
        if not nameservers:
            raise ValueError("stub resolver needs at least one nameserver")
        self.host = host
        self.nameservers = [parse_address(ns) for ns in nameservers]
        self.timeout = timeout
        self.retries = retries
        self.port = port
        self.queries_sent = 0
        # Per-instance id sequence (was a process-global counter): a
        # fresh stub always numbers its queries 0x1000, 0x1001, …, so
        # a re-run of the same isolated testbed produces byte-identical
        # query payloads — which repetition-heavy campaigns rely on to
        # intern DNS decodes across runs.
        self._query_ids = itertools.count(0x1000)

    # -- single query -----------------------------------------------------------

    def query(self, name: Union[str, DNSName],
              rtype: RdataType) -> Process:
        """Spawn a query process; its value is the DNSMessage response.

        Raises :class:`QueryTimeout` inside the process when every
        nameserver/retry is exhausted.
        """
        qname = name if isinstance(name, DNSName) else DNSName.from_text(name)
        return self.host.sim.process(
            self._query_body(qname, rtype),
            name=f"stub-query:{qname}:{rtype.name}")

    def _query_body(self, qname: DNSName, rtype: RdataType):
        sim = self.host.sim
        started = sim.now
        sock = self.host.udp.socket()
        try:
            for attempt in range(self.retries + 1):
                for server in self.nameservers:
                    query_id = next(self._query_ids) & 0xFFFF
                    message = DNSMessage.make_query(qname, rtype, query_id)
                    sock.sendto(encode_query_wire(qname, rtype, query_id),
                                server, self.port)
                    self.queries_sent += 1
                    deadline = sim.timeout(self.timeout)
                    while True:
                        receive = sock.recv()
                        raced = yield sim.any_of([receive, deadline])
                        if deadline in raced and receive not in raced:
                            sock.discard_waiter(receive)
                            break  # this server timed out; next one
                        datagram = receive.value
                        try:
                            response = DNSMessage.decode_interned(datagram.payload)
                        except Exception:
                            continue  # garbage; keep waiting
                        if response.id != query_id or not response.qr:
                            continue  # stale or mismatched; keep waiting
                        if response.tc:
                            # Truncated: retry over TCP (RFC 1035 §4.2).
                            full = yield from self._query_tcp(
                                message, server)
                            if full is not None:
                                return full
                            break  # TCP failed too; try the next server
                        return response
            raise QueryTimeout(
                f"no answer for {qname} {rtype.name} after "
                f"{self.retries + 1} tries", elapsed=sim.now - started)
        finally:
            sock.close()

    def _query_tcp(self, message: DNSMessage, server):
        """One length-prefixed DNS exchange over TCP."""
        from ..transport.errors import TransportError

        sim = self.host.sim
        attempt = self.host.tcp.connect(server, self.port,
                                        timeout=self.timeout)
        try:
            connection = yield attempt.established
        except TransportError:
            return None
        wire = message.encode()
        connection.send(len(wire).to_bytes(2, "big") + wire)
        buffer = b""
        deadline = sim.timeout(self.timeout)
        while True:
            receive = connection.recv()
            raced = yield sim.any_of([receive, deadline])
            if deadline in raced and receive not in raced:
                connection.abort()
                return None
            try:
                chunk = receive.value
            except TransportError:
                return None
            if not chunk:
                return None  # EOF before a full message
            buffer += chunk
            if len(buffer) >= 2:
                length = int.from_bytes(buffer[:2], "big")
                if len(buffer) >= 2 + length:
                    connection.close()
                    try:
                        return DNSMessage.decode_interned(buffer[2:2 + length])
                    except Exception:
                        return None

    # -- paired dual-stack lookup -----------------------------------------------

    def lookup_dual(self, name: Union[str, DNSName],
                    first: RdataType = RdataType.AAAA,
                    gap: float = 0.0) -> "DualLookup":
        """Issue AAAA and A queries; returns a :class:`DualLookup`.

        ``first`` selects the query order (HEv2 mandates AAAA first);
        ``gap`` is the time between the two queries (0 = back-to-back).
        """
        qname = name if isinstance(name, DNSName) else DNSName.from_text(name)
        return DualLookup(self, qname, first, gap)


class DualLookup:
    """The AAAA/A query pair with separately observable completions.

    ``aaaa`` and ``a`` are events that *succeed* with a
    :class:`StubAnswer` in every case — timeouts and SERVFAILs are
    reported inside the answer, not raised — so the HE resolution-delay
    state machine can race them without exception plumbing.
    """

    def __init__(self, stub: StubResolver, qname: DNSName,
                 first: RdataType, gap: float) -> None:
        if first not in (RdataType.AAAA, RdataType.A):
            raise ValueError(f"first must be AAAA or A, got {first!r}")
        self.stub = stub
        self.qname = qname
        sim = stub.host.sim
        self.aaaa: Event = sim.event(name=f"dual-aaaa:{qname}")
        self.a: Event = sim.event(name=f"dual-a:{qname}")
        self.started_at = sim.now
        second = RdataType.A if first is RdataType.AAAA else RdataType.AAAA
        self._launch(first)
        if gap <= 0:
            self._launch(second)
        else:
            sim.schedule(gap, self._launch, second)

    def event_for(self, rtype: RdataType) -> Event:
        return self.aaaa if rtype is RdataType.AAAA else self.a

    def _launch(self, rtype: RdataType) -> None:
        sim = self.stub.host.sim
        sim.process(self._run_one(rtype),
                    name=f"dual:{self.qname}:{rtype.name}")

    def _run_one(self, rtype: RdataType):
        sim = self.stub.host.sim
        answer = StubAnswer(rtype=rtype, qname=self.qname, asked_at=sim.now)
        query = self.stub.query(self.qname, rtype)
        try:
            response = yield query
        except Exception as exc:  # noqa: BLE001 - reported in the answer
            answer.error = exc
            answer.answered_at = sim.now
        else:
            answer.message = response
            answer.answered_at = sim.now
            wanted = rtype
            answer.addresses = [
                rr.rdata.address  # type: ignore[attr-defined]
                for rr in response.answers if rr.rtype == wanted]
        event = self.event_for(rtype)
        if not event.triggered:
            event.succeed(answer)
