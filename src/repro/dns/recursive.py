"""Iterative (recursive) resolver engine.

Performs real delegation walking over the simulated network: starts at
configured root hints, follows referrals, (re-)resolves name-server
addresses according to the policy's :class:`~repro.dns.nsselect.GluePlan`,
and races per-attempt timeouts the way the daemons measured in §5.3 do.
The per-upstream-query instrumentation plus the authoritative server's
query log together yield every Table 3 column.

A lightweight :class:`ForwardingResolver` is also provided: it is the
"resolver in the middle" of the browser experiments, whose timeout the
clients inherit because they set none of their own (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..simnet.addr import Family, IPAddress, family_of, parse_address
from ..simnet.host import Host
from ..simnet.process import Process
from ..transport.errors import SocketClosed
from .cache import DNSCache
from .errors import (NoAnswerError, NxDomainError, QueryTimeout,
                     ResolutionError, ServFailError)
from .message import (DNSMessage, Rcode, ResourceRecord,
                      encode_query_wire)
from .name import DNSName
from .nsselect import (ConfigurableNSPolicy, GluePlan, ResolverBehavior,
                       RetryAction, ServerInfo)
from .rdata import RdataType

MAX_DELEGATION_DEPTH = 16
MAX_CNAME_CHASES = 8

#: Slack added to attempt timers, emulating daemon timer coarseness:
#: a response delayed by exactly the configured timeout is still used,
#: which matches how the paper reports "maximum IPv6 delay used" equal
#: to the observed fallback timeout (Table 3).
TIMER_SLACK = 0.001


@dataclass(frozen=True)
class UpstreamQuery:
    """One query the resolver sent toward an authoritative server."""

    timestamp: float
    server: IPAddress
    qname: DNSName
    qtype: RdataType
    timeout: float
    answered: bool
    rtt: Optional[float]

    @property
    def family(self) -> Family:
        return family_of(self.server)


@dataclass
class ResolutionResult:
    """Answer of a completed resolution."""

    qname: DNSName
    qtype: RdataType
    records: List[ResourceRecord] = field(default_factory=list)
    duration: float = 0.0
    upstream_queries: List[UpstreamQuery] = field(default_factory=list)

    @property
    def addresses(self) -> List[IPAddress]:
        return [rr.rdata.address for rr in self.records  # type: ignore
                if rr.rtype in (RdataType.A, RdataType.AAAA)]


class RecursiveResolver:
    """Policy-driven iterative resolver on a simulated host."""

    def __init__(self, host: Host,
                 root_hints: Dict[str, Sequence[Union[str, IPAddress]]],
                 behavior: Optional[ResolverBehavior] = None,
                 rng_label: Optional[str] = None) -> None:
        """``root_hints`` maps root-server names to their addresses."""
        if not root_hints:
            raise ValueError("recursive resolver needs root hints")
        self.host = host
        self.behavior = behavior or ResolverBehavior(name="default")
        rng = host.sim.derive_rng(
            rng_label or f"resolver:{host.name}:{self.behavior.name}")
        self.policy = ConfigurableNSPolicy(self.behavior, rng)
        self.root_servers = [
            ServerInfo(ns_name=DNSName.from_text(name),
                       address=parse_address(addr))
            for name, addresses in root_hints.items()
            for addr in addresses]
        self.upstream_log: List[UpstreamQuery] = []
        self._listen_socket = None

    # -- public API -----------------------------------------------------------

    def resolve(self, name: Union[str, DNSName],
                rtype: RdataType) -> Process:
        """Spawn a resolution process yielding a ResolutionResult."""
        qname = name if isinstance(name, DNSName) else DNSName.from_text(name)
        return self.host.sim.process(
            self._resolve_body(qname, rtype),
            name=f"recursive:{qname}:{rtype.name}")

    def serve(self, port: int = 53,
              addresses: Optional[List[Union[str, IPAddress]]] = None
              ) -> None:
        """Answer client queries on UDP ``port`` (SERVFAIL on failure)."""
        socks = ([self.host.udp.socket(local_port=port)]
                 if addresses is None else
                 [self.host.udp.socket(local_addr=a, local_port=port)
                  for a in addresses])
        for sock in socks:
            self.host.sim.process(self._serve_loop(sock),
                                  name=f"resolver-serve:{self.host.name}")

    # -- serving clients ----------------------------------------------------------

    def _serve_loop(self, sock):
        while True:
            try:
                datagram = yield sock.recv()
            except SocketClosed:
                return
            try:
                query = DNSMessage.decode_interned(datagram.payload)
            except Exception:
                continue
            if query.qr or not query.questions:
                continue
            self.host.sim.process(
                self._answer_client(sock, datagram, query),
                name="resolver-answer")

    def _answer_client(self, sock, datagram, query: DNSMessage):
        question = query.question
        try:
            result = yield self.resolve(question.name, question.rtype)
        except NxDomainError:
            response = query.make_response(rcode=Rcode.NXDOMAIN, ra=True)
        except NoAnswerError:
            response = query.make_response(rcode=Rcode.NOERROR, ra=True)
        except ResolutionError:
            response = query.make_response(rcode=Rcode.SERVFAIL, ra=True)
        else:
            response = query.make_response(ra=True)
            response.answers.extend(result.records)
        if not sock.closed:
            sock.sendto(response.encode(), datagram.src, datagram.sport,
                        src=datagram.dst)

    # -- the iterative walk -----------------------------------------------------------

    def _resolve_body(self, qname: DNSName, rtype: RdataType,
                      depth: int = 0):
        sim = self.host.sim
        started = sim.now
        if depth > MAX_CNAME_CHASES:
            raise ResolutionError(f"CNAME chain too deep for {qname}")
        result = ResolutionResult(qname=qname, qtype=rtype)
        servers = [ServerInfo(s.ns_name, s.address)
                   for s in self.root_servers]

        for _hop in range(MAX_DELEGATION_DEPTH):
            response = yield from self._query_servers(
                qname, rtype, servers, result)
            if response is None:
                raise ServFailError(
                    f"all servers failed for {qname} {rtype.name}")
            if response.rcode is Rcode.NXDOMAIN:
                raise NxDomainError(f"{qname} does not exist")
            if response.rcode is not Rcode.NOERROR:
                raise ServFailError(
                    f"upstream rcode {response.rcode.name} for {qname}")

            direct = [rr for rr in response.answers if rr.rtype == rtype
                      and rr.name == qname]
            if direct:
                result.records.extend(response.answers)
                result.duration = sim.now - started
                return result

            cnames = [rr for rr in response.answers
                      if rr.rtype is RdataType.CNAME and rr.name == qname]
            if cnames:
                target = cnames[0].rdata.target  # type: ignore[attr-defined]
                chased = yield self.host.sim.process(
                    self._resolve_body(target, rtype, depth + 1))
                result.records.extend(cnames)
                result.records.extend(chased.records)
                result.upstream_queries.extend(chased.upstream_queries)
                result.duration = sim.now - started
                return result

            ns_records = [rr for rr in response.authorities
                          if rr.rtype is RdataType.NS]
            if response.aa and not ns_records:
                # Authoritative NODATA.
                raise NoAnswerError(f"{qname} has no {rtype.name} records")
            if not ns_records:
                raise ServFailError(
                    f"lame response for {qname}: no answer, no referral")
            servers = yield from self._servers_from_referral(
                response, ns_records, result)
            if not servers:
                raise ServFailError(
                    f"referral for {qname} yielded no usable addresses")
        raise ResolutionError(f"delegation chain too long for {qname}")

    # -- talking to one delegation level ----------------------------------------------

    def _query_servers(self, qname: DNSName, rtype: RdataType,
                       servers: List[ServerInfo],
                       result: ResolutionResult):
        """Try servers per policy until one answers; None if all fail."""
        current = self.policy.initial_select(servers)
        timeout = self.policy.first_timeout()
        attempts = 0
        while current is not None:
            attempts += 1
            response = yield from self._single_query(
                qname, rtype, current, timeout, result)
            if response is not None:
                return response
            action, nxt, next_timeout = self.policy.after_timeout(
                current, servers, attempts)
            if action is RetryAction.GIVE_UP:
                return None
            current = nxt
            timeout = next_timeout
        return None

    def _single_query(self, qname: DNSName, rtype: RdataType,
                      server: ServerInfo, timeout: float,
                      result: ResolutionResult):
        """One query/response exchange with one server address."""
        from ..simnet.host import NoRouteError

        sim = self.host.sim
        sock = self.host.udp.socket()
        sent_at = sim.now
        server.queries_sent += 1
        try:
            query_id = (id(sock) ^ int(sim.now * 1e6)) & 0xFFFF
            message = DNSMessage.make_query(qname, rtype, query_id, rd=False)
            try:
                sock.sendto(
                    encode_query_wire(qname, rtype, query_id, rd=False),
                    server.address, 53)
            except NoRouteError:
                # Resolver host lacks this family: the §5.3 capability
                # gate ("cannot resolve IPv6-only delegations").
                server.failures += 1
                return None
            deadline = sim.timeout(timeout + TIMER_SLACK)
            while True:
                receive = sock.recv()
                raced = yield sim.any_of([receive, deadline])
                if deadline in raced and receive not in raced:
                    sock.discard_waiter(receive)
                    server.failures += 1
                    entry = UpstreamQuery(
                        timestamp=sent_at, server=server.address,
                        qname=qname, qtype=rtype, timeout=timeout,
                        answered=False, rtt=None)
                    self.upstream_log.append(entry)
                    result.upstream_queries.append(entry)
                    return None
                datagram = receive.value
                try:
                    response = DNSMessage.decode(datagram.payload)
                except Exception:
                    continue
                if response.id != query_id or not response.qr:
                    continue
                rtt = sim.now - sent_at
                server.srtt = rtt if server.srtt is None else (
                    0.75 * server.srtt + 0.25 * rtt)
                entry = UpstreamQuery(
                    timestamp=sent_at, server=server.address,
                    qname=qname, qtype=rtype, timeout=timeout,
                    answered=True, rtt=rtt)
                self.upstream_log.append(entry)
                result.upstream_queries.append(entry)
                return response
        finally:
            sock.close()

    # -- referral processing -----------------------------------------------------------

    def _servers_from_referral(self, response: DNSMessage,
                               ns_records: List[ResourceRecord],
                               result: ResolutionResult):
        """Build the next candidate set, honoring the glue plan."""
        glue: Dict[DNSName, List[IPAddress]] = {}
        for rr in response.additionals:
            if rr.rtype in (RdataType.A, RdataType.AAAA):
                glue.setdefault(rr.name, []).append(
                    rr.rdata.address)  # type: ignore[attr-defined]

        servers: List[ServerInfo] = []
        for ns_rr in ns_records:
            ns_name = ns_rr.rdata.target  # type: ignore[attr-defined]
            addresses = list(glue.get(ns_name, []))
            if addresses and not self.behavior.queries_ns_addresses_despite_glue:
                servers.extend(ServerInfo(ns_name, addr)
                               for addr in addresses)
                continue
            # (Re-)query the NS name's addresses per the glue plan,
            # using glue (or already-known addresses) as transport.
            transport = addresses or [s.address for s in servers]
            fetched = yield from self._fetch_ns_addresses(
                ns_name, transport, result)
            combined = list(dict.fromkeys(fetched + addresses))
            servers.extend(ServerInfo(ns_name, addr) for addr in combined)
        return servers

    def _fetch_ns_addresses(self, ns_name: DNSName,
                            transport: List[IPAddress],
                            result: ResolutionResult):
        """Query A/AAAA for a name-server name per the glue plan."""
        plan = self.behavior.glue_plan
        if not transport:
            return []
        if plan is GluePlan.AAAA_FIRST:
            order = [RdataType.AAAA, RdataType.A]
        elif plan is GluePlan.A_FIRST:
            order = [RdataType.A, RdataType.AAAA]
        elif plan is GluePlan.SINGLE:
            pick = (RdataType.AAAA
                    if self.policy.rng.random() < 0.5 else RdataType.A)
            order = [pick]
        else:  # AAAA_AFTER_USE: A now; AAAA later, after the main query.
            order = [RdataType.A]

        found: List[IPAddress] = []
        for qtype in order:
            server = ServerInfo(ns_name, transport[0])
            response = yield from self._single_query(
                ns_name, qtype, server, self.behavior.attempt_timeout,
                result)
            if response is None:
                continue
            for rr in response.answers:
                if rr.rtype == qtype and rr.name == ns_name:
                    found.append(rr.rdata.address)  # type: ignore

        if plan is GluePlan.AAAA_AFTER_USE:
            # Schedule the late AAAA probe observed for Google P. DNS:
            # it arrives at the authoritative server after the main query.
            self.host.sim.process(
                self._late_aaaa_probe(ns_name, transport[0]),
                name=f"late-aaaa:{ns_name}")
        return found

    def _late_aaaa_probe(self, ns_name: DNSName, server_addr: IPAddress):
        yield self.host.sim.timeout(0.010)
        throwaway = ResolutionResult(qname=ns_name, qtype=RdataType.AAAA)
        server = ServerInfo(ns_name, server_addr)
        yield from self._single_query(ns_name, RdataType.AAAA, server,
                                      self.behavior.attempt_timeout,
                                      throwaway)


class ForwardingResolver:
    """A caching-free forwarder with a configurable upstream timeout.

    This is the resolver the *client* hosts point at in the browser
    testbed.  Its ``upstream_timeout`` is the timeout that clients
    without their own DNS timeout inherit (§5.2): when the
    authoritative server delays a record beyond it, the stub only gets
    an answer (SERVFAIL) after this timeout fires.
    """

    def __init__(self, host: Host, upstream: Union[str, IPAddress],
                 upstream_timeout: float = 5.0, port: int = 53,
                 upstream_port: int = 53,
                 cache: Optional["DNSCache"] = None) -> None:
        self.host = host
        self.upstream = parse_address(upstream)
        self.upstream_timeout = upstream_timeout
        self.port = port
        self.upstream_port = upstream_port
        self.cache = cache
        self.forwarded = 0
        self.servfails = 0
        self.cache_answers = 0
        self._sock = None

    def start(self) -> "ForwardingResolver":
        self._sock = self.host.udp.socket(local_port=self.port)
        self.host.sim.process(self._serve(),
                              name=f"forwarder:{self.host.name}")
        return self

    def stop(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def _serve(self):
        while self._sock is not None:
            try:
                datagram = yield self._sock.recv()
            except SocketClosed:
                return
            try:
                query = DNSMessage.decode_interned(datagram.payload)
            except Exception:
                continue
            if query.qr or not query.questions:
                continue
            self.host.sim.process(self._forward(datagram, query),
                                  name="forward")

    def _forward(self, datagram, query: DNSMessage):
        sim = self.host.sim
        if self.cache is not None:
            cached = self.cache.answer_from_cache(query, sim.now)
            if cached is not None:
                self.cache_answers += 1
                if self._sock is not None and not self._sock.closed:
                    self._sock.sendto(cached.encode(), datagram.src,
                                      datagram.sport, src=datagram.dst)
                return
        upstream_sock = self.host.udp.socket()
        try:
            # Relay the original query bytes: re-encoding the decoded
            # message would produce the same wire anyway.
            upstream_sock.sendto(datagram.payload, self.upstream,
                                 self.upstream_port)
            self.forwarded += 1
            deadline = sim.timeout(self.upstream_timeout)
            while True:
                receive = upstream_sock.recv()
                raced = yield sim.any_of([receive, deadline])
                if deadline in raced and receive not in raced:
                    upstream_sock.discard_waiter(receive)
                    self.servfails += 1
                    out_wire = query.make_response(
                        rcode=Rcode.SERVFAIL, ra=True).encode()
                    break
                upstream = receive.value
                wire = upstream.payload
                if self.cache is None:
                    # No cache to populate: validate the response via the
                    # shared intern table (read-only) and relay the
                    # upstream bytes with just the RA bit patched in,
                    # skipping the decode→mutate→re-encode round trip.
                    try:
                        response = DNSMessage.decode_interned(wire)
                    except Exception:
                        continue
                    if response.id != query.id:
                        continue
                    out_wire = wire[:3] + bytes((wire[3] | 0x80,)) + wire[4:]
                    break
                try:
                    response = DNSMessage.decode(wire)
                except Exception:
                    continue
                if response.id != query.id:
                    continue
                response.ra = True
                self.cache.store_response(response, sim.now)
                out_wire = response.encode()
                break
            if self._sock is not None and not self._sock.closed:
                self._sock.sendto(out_wire, datagram.src,
                                  datagram.sport, src=datagram.dst)
        finally:
            upstream_sock.close()
