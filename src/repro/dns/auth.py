"""The custom authoritative name server (§4.1(ii)).

The paper's key DNS trick: *test parameters are encoded in the query
name itself* — the delay to apply, which record type to delay, and a
nonce that defeats caching — so a single server deployment supports a
whole family of experiments.  Query names look like::

    d250-aaaa-k3xq7.he-test.example.

meaning "delay the AAAA response by 250 ms"; the nonce ``k3xq7`` makes
the name unique per measurement.  Zones answer such names through
wildcards.

The server also keeps a query log (arrival time, qname, qtype, source,
transport family) — the resolver study's entire observable is this log
on the authoritative side (§4.2, Table 3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..simnet.addr import Family, IPAddress, family_of
from ..simnet.host import Host
from ..transport.udp import Datagram, UDPSocket
from .message import DNSMessage, Rcode
from .name import DNSName
from .rdata import RdataType
from .zone import LookupKind, NotInZoneError, Zone

_PARAM_LABEL = re.compile(
    rb"^d(?P<ms>\d{1,6})-(?P<rtype>a|aaaa|both|none)-(?P<nonce>[a-z0-9]{1,32})$",
    re.IGNORECASE)


#: Memo for :meth:`TestParams.parse_label`, keyed by raw label bytes.
#: ``False`` marks labels that are not parameter labels.
_PARSE_LABEL_CACHE: "dict" = {}
_PARSE_LABEL_CACHE_CAP = 65536


@dataclass(frozen=True)
class TestParams:
    """Per-query test parameters carried in the first qname label."""

    __test__ = False  # not a pytest class, despite the name

    delay_ms: int
    delayed_rtype: str  # "a" | "aaaa" | "both" | "none"
    nonce: str

    def __post_init__(self) -> None:
        if self.delayed_rtype not in ("a", "aaaa", "both", "none"):
            raise ValueError(f"bad delayed rtype {self.delayed_rtype!r}")
        if self.delay_ms < 0:
            raise ValueError(f"negative delay {self.delay_ms}")

    def to_label(self) -> str:
        return f"d{self.delay_ms}-{self.delayed_rtype}-{self.nonce}"

    @classmethod
    def parse_label(cls, label: bytes) -> Optional["TestParams"]:
        # Memoized: every query against the same test name re-parses the
        # same first label, and the regex dominates the serve path.
        cached = _PARSE_LABEL_CACHE.get(label)
        if cached is not None:
            return cached or None
        match = _PARAM_LABEL.match(label)
        if match is None:
            params = None
        else:
            params = cls(delay_ms=int(match.group("ms")),
                         delayed_rtype=match.group("rtype").decode().lower(),
                         nonce=match.group("nonce").decode().lower())
        if len(_PARSE_LABEL_CACHE) >= _PARSE_LABEL_CACHE_CAP:
            _PARSE_LABEL_CACHE.clear()
        _PARSE_LABEL_CACHE[label] = params if params is not None else False
        return params

    def applies_to(self, qtype: RdataType) -> bool:
        if self.delayed_rtype == "none":
            return False
        if self.delayed_rtype == "both":
            return qtype in (RdataType.A, RdataType.AAAA)
        wanted = RdataType.A if self.delayed_rtype == "a" else RdataType.AAAA
        return qtype is wanted

    def query_name(self, base: Union[str, DNSName]) -> DNSName:
        """Full test qname under ``base``."""
        base_name = (base if isinstance(base, DNSName)
                     else DNSName.from_text(base))
        return base_name.prepend(self.to_label())


@dataclass(frozen=True)
class QueryLogEntry:
    """One query as observed by the authoritative server."""

    timestamp: float
    qname: DNSName
    qtype: RdataType
    client: IPAddress
    client_port: int
    server_address: IPAddress

    @property
    def transport_family(self) -> Family:
        """Family of the transport the resolver chose — Table 3's metric."""
        return family_of(self.server_address)


#: Classic DNS/UDP payload ceiling; larger answers are truncated and
#: the client retries over TCP (RFC 1035 §4.2.1).
MAX_UDP_PAYLOAD = 512

#: Process-wide UDP response-wire cache keyed by
#: (max_udp_payload, zone content keys, query wire minus the id).
#: Campaign sweeps rebuild identical zones and replay identical queries
#: every run; only the 16-bit id differs, and a response echoes it in
#: its first two bytes, so the id-stripped tail can be shared.  Keys
#: compare by value (tuple/bytes equality), so a hash collision cannot
#: produce a wrong answer.
_RESPONSE_WIRE_CACHE: "dict" = {}
_RESPONSE_WIRE_CACHE_CAP = 65536


class AuthoritativeServer:
    """Serves zones over simulated UDP and TCP with injectable delays.

    Responses larger than ``max_udp_payload`` are truncated (TC bit)
    on UDP; the stub resolver transparently retries them over TCP.
    """

    def __init__(self, host: Host, zones: Optional[List[Zone]] = None,
                 port: int = 53,
                 addresses: Optional[List[Union[str, IPAddress]]] = None,
                 max_udp_payload: int = MAX_UDP_PAYLOAD,
                 serve_tcp: bool = True) -> None:
        self.host = host
        self.port = port
        self.zones: List[Zone] = list(zones or [])
        self.query_log: List[QueryLogEntry] = []
        # Static per-rtype extra delays (seconds), set by testbed modules;
        # qname-encoded parameters take precedence.
        self.static_delays: Dict[RdataType, float] = {}
        self.max_udp_payload = max_udp_payload
        self.serve_tcp = serve_tcp
        self.sockets: List[UDPSocket] = []
        self.truncated_responses = 0
        self.tcp_queries = 0
        self._tcp_listeners: list = []
        self._running = False
        self._addresses = addresses

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "AuthoritativeServer":
        if self._running:
            raise RuntimeError("server already started")
        self._running = True
        if self._addresses is None:
            sockets = [self.host.udp.socket(local_port=self.port)]
        else:
            sockets = [self.host.udp.socket(local_addr=addr,
                                            local_port=self.port)
                       for addr in self._addresses]
        self.sockets = sockets
        for sock in sockets:
            self.host.sim.process(self._serve(sock),
                                  name=f"auth:{self.host.name}")
        if self.serve_tcp:
            self._tcp_listeners = []
            bind_addresses = self._addresses or [None]
            for address in bind_addresses:
                try:
                    self._tcp_listeners.append(
                        self.host.tcp.listen(self.port, addr=address))
                except Exception:
                    continue  # port owned by another service
            for listener in self._tcp_listeners:
                self.host.sim.process(self._serve_tcp(listener),
                                      name=f"auth-tcp:{self.host.name}")
        return self

    def stop(self) -> None:
        self._running = False
        for sock in self.sockets:
            sock.close()
        self.sockets = []
        for listener in self._tcp_listeners:
            listener.close()
        self._tcp_listeners = []

    def add_zone(self, zone: Zone) -> "AuthoritativeServer":
        self.zones.append(zone)
        return self

    # -- serving ------------------------------------------------------------------

    def _serve(self, sock: UDPSocket):
        from ..transport.errors import SocketClosed

        while self._running:
            try:
                datagram = yield sock.recv()
            except SocketClosed:
                return
            self._handle(datagram, sock)

    def _handle(self, datagram: Datagram, sock: UDPSocket) -> None:
        try:
            query = DNSMessage.decode_interned(datagram.payload)
        except Exception:
            return  # malformed: drop, like a hardened server
        if query.qr or not query.questions:
            return
        question = query.question
        self.query_log.append(QueryLogEntry(
            timestamp=self.host.sim.now,
            qname=question.name,
            qtype=question.rtype,
            client=datagram.src,
            client_port=datagram.sport,
            server_address=datagram.dst))

        wire = datagram.payload
        key = (self.max_udp_payload,
               tuple(zone._content_key for zone in self.zones), wire[2:])
        cached = _RESPONSE_WIRE_CACHE.get(key)
        if cached is None:
            response = self._build_response(query)
            payload = response.encode()
            was_truncated = len(payload) > self.max_udp_payload
            if was_truncated:
                # Too big for UDP: answer with just the question + TC bit.
                truncated = query.make_response(aa=response.aa)
                truncated.tc = True
                payload = truncated.encode()
            if len(_RESPONSE_WIRE_CACHE) >= _RESPONSE_WIRE_CACHE_CAP:
                _RESPONSE_WIRE_CACHE.clear()
            _RESPONSE_WIRE_CACHE[key] = (payload[2:], was_truncated)
        else:
            tail, was_truncated = cached
            payload = wire[:2] + tail
        if was_truncated:
            self.truncated_responses += 1
        delay = self._response_delay(question.name, question.rtype)
        if delay > 0:
            self.host.sim.schedule(delay, self._send_reply, sock, payload,
                                   datagram)
        else:
            self._send_reply(sock, payload, datagram)

    def _send_reply(self, sock: UDPSocket, payload: bytes,
                    datagram: Datagram) -> None:
        if sock.closed:
            return
        # Reply from the address that was queried, like a real server.
        sock.sendto(payload, datagram.src, datagram.sport,
                    src=datagram.dst)

    # -- DNS over TCP -----------------------------------------------------------

    def _serve_tcp(self, listener):
        from ..transport.errors import SocketClosed

        while self._running:
            try:
                connection = yield listener.accept()
            except SocketClosed:
                return
            self.host.sim.process(self._serve_tcp_connection(connection),
                                  name="auth-tcp-conn")

    def _serve_tcp_connection(self, connection):
        """Length-prefixed DNS over one TCP connection (RFC 1035 §4.2.2)."""
        from ..transport.errors import SocketClosed, ConnectionAborted

        buffer = b""
        while True:
            try:
                chunk = yield connection.recv()
            except (SocketClosed, ConnectionAborted):
                return
            if not chunk:
                return  # EOF
            buffer += chunk
            while len(buffer) >= 2:
                length = int.from_bytes(buffer[:2], "big")
                if len(buffer) < 2 + length:
                    break
                wire, buffer = buffer[2:2 + length], buffer[2 + length:]
                try:
                    query = DNSMessage.decode_interned(wire)
                except Exception:
                    return
                if query.qr or not query.questions:
                    continue
                self.tcp_queries += 1
                question = query.question
                self.query_log.append(QueryLogEntry(
                    timestamp=self.host.sim.now, qname=question.name,
                    qtype=question.rtype, client=connection.remote_addr,
                    client_port=connection.remote_port,
                    server_address=connection.local_addr))
                response = self._build_response(query).encode()
                delay = self._response_delay(question.name,
                                             question.rtype)
                framed = len(response).to_bytes(2, "big") + response
                if delay > 0:
                    self.host.sim.schedule(
                        delay, self._tcp_reply, connection, framed)
                else:
                    self._tcp_reply(connection, framed)

    @staticmethod
    def _tcp_reply(connection, framed: bytes) -> None:
        from ..transport.errors import SocketClosed

        try:
            connection.send(framed)
        except SocketClosed:
            pass

    # -- response construction ----------------------------------------------------

    def find_zone(self, qname: DNSName) -> Optional[Zone]:
        """Longest-origin-match zone for ``qname``."""
        best: Optional[Zone] = None
        for zone in self.zones:
            if qname.is_subdomain_of(zone.origin):
                if best is None or len(zone.origin) > len(best.origin):
                    best = zone
        return best

    def _build_response(self, query: DNSMessage) -> DNSMessage:
        question = query.question
        zone = self.find_zone(question.name)
        if zone is None:
            return query.make_response(rcode=Rcode.REFUSED)
        try:
            result = zone.lookup(question.name, question.rtype)
        except NotInZoneError:
            return query.make_response(rcode=Rcode.REFUSED)

        if result.kind is LookupKind.NXDOMAIN:
            response = query.make_response(rcode=Rcode.NXDOMAIN, aa=True)
        elif result.kind is LookupKind.REFERRAL:
            response = query.make_response(aa=False)
        else:
            response = query.make_response(aa=True)

        from .message import ResourceRecord

        def emit(rrsets, section):
            for rrset in rrsets:
                for rdata in rrset:
                    section.append(ResourceRecord(
                        rrset.name, rrset.rtype, rrset.ttl, rdata))

        emit(result.answers, response.answers)
        emit(result.authority, response.authorities)
        emit(result.glue, response.additionals)

        if result.kind is LookupKind.CNAME:
            self._chase_cname(zone, result, question.rtype, response)
        return response

    def _chase_cname(self, zone: Zone, result, qtype: RdataType,
                     response: DNSMessage) -> None:
        """Follow in-zone CNAME chains, appending to the answer."""
        from .message import ResourceRecord

        seen = set()
        current = result.answers[0].rdatas[0].target  # type: ignore
        for _ in range(8):
            if current in seen:
                break
            seen.add(current)
            if not current.is_subdomain_of(zone.origin):
                break
            chased = zone.lookup(current, qtype)
            for rrset in chased.answers:
                for rdata in rrset:
                    response.answers.append(ResourceRecord(
                        rrset.name, rrset.rtype, rrset.ttl, rdata))
            if chased.kind is LookupKind.CNAME:
                current = chased.answers[0].rdatas[0].target  # type: ignore
                continue
            break

    # -- delay logic -----------------------------------------------------------------

    def _response_delay(self, qname: DNSName, qtype: RdataType) -> float:
        if not qname.is_root:
            params = TestParams.parse_label(qname.first_label)
            if params is not None:
                return params.delay_ms / 1000.0 if params.applies_to(qtype) \
                    else 0.0
        return self.static_delays.get(qtype, 0.0)

    # -- instrumentation ------------------------------------------------------------

    def clear_log(self) -> None:
        self.query_log.clear()

    def queries_for(self, suffix: Union[str, DNSName]) -> List[QueryLogEntry]:
        suffix_name = (suffix if isinstance(suffix, DNSName)
                       else DNSName.from_text(suffix))
        return [entry for entry in self.query_log
                if entry.qname.is_subdomain_of(suffix_name)]
