"""DNS response caching, including negative caching (RFC 2308).

The paper's measurement design works *around* caches: nonce labels,
unique zone apexes, unique name-server names (§4.2).  For that design
to be meaningful the substrate needs real caching behaviour — this
module provides it, and the tests verify both sides: repeated names
hit the cache, nonce names never do.

Negative caching matters to Happy Eyeballs specifically: Foremski et
al. observed domains with up to 90 % empty AAAA responses cached with
small TTLs because of HE's paired queries (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .message import DNSMessage, Rcode, ResourceRecord
from .name import DNSName
from .rdata import RdataType, SOA

DEFAULT_NEGATIVE_TTL = 300
MAX_CACHE_TTL = 86400

CacheKey = Tuple[DNSName, RdataType]


@dataclass
class CacheEntry:
    """One cached answer (positive or negative)."""

    key: CacheKey
    stored_at: float
    ttl: float
    records: List[ResourceRecord] = field(default_factory=list)
    rcode: Rcode = Rcode.NOERROR

    @property
    def negative(self) -> bool:
        return not self.records

    def expired(self, now: float) -> bool:
        return now - self.stored_at >= self.ttl

    def remaining_ttl(self, now: float) -> int:
        return max(0, int(self.ttl - (now - self.stored_at)))


class DNSCache:
    """A TTL-honoring cache of query responses."""

    def __init__(self, max_entries: int = 4096,
                 negative_ttl_cap: int = DEFAULT_NEGATIVE_TTL) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one slot")
        self._entries: Dict[CacheKey, CacheEntry] = {}
        self.max_entries = max_entries
        self.negative_ttl_cap = negative_ttl_cap
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- storing -----------------------------------------------------------

    def store_response(self, response: DNSMessage, now: float
                       ) -> Optional[CacheEntry]:
        """Cache a response message (positive or negative)."""
        if not response.questions:
            return None
        question = response.question
        key: CacheKey = (question.name, question.rtype)
        matching = [rr for rr in response.answers
                    if rr.name == question.name or rr.rtype ==
                    RdataType.CNAME]
        if response.rcode is Rcode.NOERROR and matching:
            ttl = min(rr.ttl for rr in matching)
            entry = CacheEntry(key=key, stored_at=now,
                               ttl=min(ttl, MAX_CACHE_TTL),
                               records=list(response.answers))
        elif response.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN):
            # Negative answer: TTL from the SOA minimum (RFC 2308 §5).
            ttl = self._negative_ttl(response)
            entry = CacheEntry(key=key, stored_at=now, ttl=ttl,
                               rcode=response.rcode)
        else:
            return None  # SERVFAIL etc. are not cached
        self._entries[key] = entry
        self._evict_if_needed(now)
        return entry

    def _negative_ttl(self, response: DNSMessage) -> float:
        for rr in response.authorities:
            if rr.rtype is RdataType.SOA and isinstance(rr.rdata, SOA):
                return float(min(rr.rdata.minimum, rr.ttl,
                                 self.negative_ttl_cap))
        return float(self.negative_ttl_cap)

    def _evict_if_needed(self, now: float) -> None:
        if len(self._entries) <= self.max_entries:
            return
        self.purge_expired(now)
        while len(self._entries) > self.max_entries:
            oldest = min(self._entries.values(),
                         key=lambda entry: entry.stored_at)
            del self._entries[oldest.key]

    # -- lookups ---------------------------------------------------------------

    def lookup(self, name: DNSName, rtype: RdataType,
               now: float) -> Optional[CacheEntry]:
        entry = self._entries.get((name, rtype))
        if entry is None:
            self.misses += 1
            return None
        if entry.expired(now):
            del self._entries[(name, rtype)]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def answer_from_cache(self, query: DNSMessage,
                          now: float) -> Optional[DNSMessage]:
        """Synthesize a response for ``query``, or None on cache miss."""
        question = query.question
        entry = self.lookup(question.name, question.rtype, now)
        if entry is None:
            return None
        response = query.make_response(rcode=entry.rcode, ra=True)
        remaining = entry.remaining_ttl(now)
        for rr in entry.records:
            response.answers.append(ResourceRecord(
                rr.name, rr.rtype, remaining, rr.rdata, rr.rclass))
        return response

    # -- maintenance ------------------------------------------------------------

    def purge_expired(self, now: float) -> int:
        stale = [key for key, entry in self._entries.items()
                 if entry.expired(now)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def flush(self) -> None:
        self._entries.clear()
