"""Resource record data types.

Covers everything the study touches: A / AAAA (the two families being
raced), NS + SOA (delegation for the resolver experiments), CNAME, TXT,
PTR, OPT (EDNS), and SVCB / HTTPS (RFC 9460) which HEv3 consumes for
protocol selection (ALPN, ECH, address hints).
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..simnet.addr import IPAddress, parse_address
from .errors import MessageError
from .name import DNSName


class RdataType(enum.IntEnum):
    """Resource record TYPE values (RFC 1035 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    TXT = 16
    AAAA = 28
    OPT = 41
    SVCB = 64
    HTTPS = 65
    ANY = 255

    @classmethod
    def for_family(cls, family) -> "RdataType":
        from ..simnet.addr import Family

        return cls.AAAA if family is Family.V6 else cls.A


class RdataClass(enum.IntEnum):
    IN = 1
    ANY = 255


class SvcParamKey(enum.IntEnum):
    """SVCB/HTTPS service parameter keys (RFC 9460 §14.3.2)."""

    MANDATORY = 0
    ALPN = 1
    NO_DEFAULT_ALPN = 2
    PORT = 3
    IPV4HINT = 4
    ECH = 5
    IPV6HINT = 6


CompressionTable = Dict[Tuple[bytes, ...], int]


class Rdata:
    """Base class: every rdata knows its TYPE and wire codec."""

    rtype: RdataType

    def to_wire(self, compression: Optional[CompressionTable],
                offset: int) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "Rdata":
        raise NotImplementedError


@dataclass(frozen=True)
class A(Rdata):
    """IPv4 address record."""

    address: ipaddress.IPv4Address
    rtype = RdataType.A

    def __post_init__(self) -> None:
        if not isinstance(self.address, ipaddress.IPv4Address):
            object.__setattr__(
                self, "address", ipaddress.IPv4Address(self.address))

    def to_wire(self, compression=None, offset=0) -> bytes:
        return self.address.packed

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "A":
        if rdlength != 4:
            raise MessageError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(ipaddress.IPv4Address(wire[offset:offset + 4]))

    def __str__(self) -> str:
        return str(self.address)


@dataclass(frozen=True)
class AAAA(Rdata):
    """IPv6 address record."""

    address: ipaddress.IPv6Address
    rtype = RdataType.AAAA

    def __post_init__(self) -> None:
        if not isinstance(self.address, ipaddress.IPv6Address):
            object.__setattr__(
                self, "address", ipaddress.IPv6Address(self.address))

    def to_wire(self, compression=None, offset=0) -> bytes:
        return self.address.packed

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise MessageError(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(ipaddress.IPv6Address(wire[offset:offset + 16]))

    def __str__(self) -> str:
        return str(self.address)


@dataclass(frozen=True)
class _SingleName(Rdata):
    """Shared shape for NS / CNAME / PTR."""

    target: DNSName

    def to_wire(self, compression=None, offset=0) -> bytes:
        return self.target.encode(compression, offset)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int):
        name, _ = DNSName.decode(wire, offset)
        return cls(name)

    def __str__(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class NS(_SingleName):
    rtype = RdataType.NS


@dataclass(frozen=True)
class CNAME(_SingleName):
    rtype = RdataType.CNAME


@dataclass(frozen=True)
class PTR(_SingleName):
    rtype = RdataType.PTR


@dataclass(frozen=True)
class SOA(Rdata):
    """Start of authority (zone apex bookkeeping)."""

    mname: DNSName
    rname: DNSName
    serial: int = 1
    refresh: int = 7200
    retry: int = 3600
    expire: int = 1209600
    minimum: int = 300
    rtype = RdataType.SOA

    def to_wire(self, compression=None, offset=0) -> bytes:
        out = bytearray(self.mname.encode(compression, offset))
        out += self.rname.encode(compression, offset + len(out))
        out += struct.pack("!IIIII", self.serial, self.refresh,
                           self.retry, self.expire, self.minimum)
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "SOA":
        mname, offset = DNSName.decode(wire, offset)
        rname, offset = DNSName.decode(wire, offset)
        if offset + 20 > len(wire):
            raise MessageError("truncated SOA")
        serial, refresh, retry, expire, minimum = struct.unpack(
            "!IIIII", wire[offset:offset + 20])
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


@dataclass(frozen=True)
class TXT(Rdata):
    """Text record (tuple of character-strings)."""

    strings: Tuple[bytes, ...]
    rtype = RdataType.TXT

    def __post_init__(self) -> None:
        for chunk in self.strings:
            if len(chunk) > 255:
                raise MessageError("TXT character-string exceeds 255 bytes")

    def to_wire(self, compression=None, offset=0) -> bytes:
        out = bytearray()
        for chunk in self.strings:
            out.append(len(chunk))
            out += chunk
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "TXT":
        end = offset + rdlength
        strings = []
        while offset < end:
            length = wire[offset]
            offset += 1
            if offset + length > end:
                raise MessageError("TXT character-string overruns rdata")
            strings.append(wire[offset:offset + length])
            offset += length
        return cls(tuple(strings))

    @classmethod
    def from_text(cls, *texts: str) -> "TXT":
        return cls(tuple(t.encode("utf-8") for t in texts))


@dataclass(frozen=True)
class OPT(Rdata):
    """EDNS(0) pseudo-record payload (options only; TTL fields live
    in the resource record wrapper)."""

    options: Tuple[Tuple[int, bytes], ...] = ()
    rtype = RdataType.OPT

    def to_wire(self, compression=None, offset=0) -> bytes:
        out = bytearray()
        for code, data in self.options:
            out += struct.pack("!HH", code, len(data))
            out += data
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int) -> "OPT":
        end = offset + rdlength
        options = []
        while offset < end:
            if offset + 4 > end:
                raise MessageError("truncated EDNS option")
            code, length = struct.unpack("!HH", wire[offset:offset + 4])
            offset += 4
            if offset + length > end:
                raise MessageError("EDNS option overruns rdata")
            options.append((code, wire[offset:offset + length]))
            offset += length
        return cls(tuple(options))


def _encode_svc_params(params: Dict[int, bytes]) -> bytes:
    out = bytearray()
    for key in sorted(params):
        value = params[key]
        out += struct.pack("!HH", key, len(value))
        out += value
    return bytes(out)


def _decode_svc_params(wire: bytes, offset: int, end: int) -> Dict[int, bytes]:
    params: Dict[int, bytes] = {}
    previous = -1
    while offset < end:
        if offset + 4 > end:
            raise MessageError("truncated SvcParam")
        key, length = struct.unpack("!HH", wire[offset:offset + 4])
        offset += 4
        if key <= previous:
            raise MessageError("SvcParams not in strictly ascending order")
        previous = key
        if offset + length > end:
            raise MessageError("SvcParam overruns rdata")
        params[key] = wire[offset:offset + length]
        offset += length
    return params


@dataclass(frozen=True)
class SVCB(Rdata):
    """Service binding record (RFC 9460).

    ``priority`` 0 is AliasMode; otherwise ServiceMode.  Convenience
    accessors decode the parameters HEv3's selection consumes.
    """

    priority: int
    target: DNSName
    params: Tuple[Tuple[int, bytes], ...] = ()
    rtype = RdataType.SVCB

    def __post_init__(self) -> None:
        if not 0 <= self.priority <= 0xFFFF:
            raise MessageError(f"bad SvcPriority {self.priority}")

    @property
    def param_dict(self) -> Dict[int, bytes]:
        return dict(self.params)

    @property
    def alpn(self) -> Tuple[str, ...]:
        """Decoded ALPN list, e.g. ``("h3", "h2")``."""
        raw = self.param_dict.get(SvcParamKey.ALPN)
        if raw is None:
            return ()
        out = []
        offset = 0
        while offset < len(raw):
            length = raw[offset]
            offset += 1
            out.append(raw[offset:offset + length].decode("ascii", "replace"))
            offset += length
        return tuple(out)

    @property
    def has_ech(self) -> bool:
        """True when an ECH config is advertised (HEv3's top criterion)."""
        return SvcParamKey.ECH in self.param_dict

    @property
    def port(self) -> Optional[int]:
        raw = self.param_dict.get(SvcParamKey.PORT)
        if raw is None:
            return None
        if len(raw) != 2:
            raise MessageError("SVCB port param must be 2 bytes")
        return struct.unpack("!H", raw)[0]

    @property
    def ipv4_hints(self) -> Tuple[ipaddress.IPv4Address, ...]:
        raw = self.param_dict.get(SvcParamKey.IPV4HINT, b"")
        if len(raw) % 4:
            raise MessageError("ipv4hint length not a multiple of 4")
        return tuple(ipaddress.IPv4Address(raw[i:i + 4])
                     for i in range(0, len(raw), 4))

    @property
    def ipv6_hints(self) -> Tuple[ipaddress.IPv6Address, ...]:
        raw = self.param_dict.get(SvcParamKey.IPV6HINT, b"")
        if len(raw) % 16:
            raise MessageError("ipv6hint length not a multiple of 16")
        return tuple(ipaddress.IPv6Address(raw[i:i + 16])
                     for i in range(0, len(raw), 16))

    def to_wire(self, compression=None, offset=0) -> bytes:
        out = bytearray(struct.pack("!H", self.priority))
        # RFC 9460: the TargetName is never compressed.
        out += self.target.encode(None, 0)
        out += _encode_svc_params(self.param_dict)
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int):
        end = offset + rdlength
        if offset + 2 > end:
            raise MessageError("truncated SVCB priority")
        priority = struct.unpack("!H", wire[offset:offset + 2])[0]
        target, offset = DNSName.decode(wire, offset + 2)
        params = _decode_svc_params(wire, offset, end)
        return cls(priority, target, tuple(sorted(params.items())))

    # -- construction helpers ------------------------------------------------

    @classmethod
    def service(cls, priority: int, target: DNSName,
                alpn: Tuple[str, ...] = (),
                port: Optional[int] = None,
                ech: bool = False,
                ipv4_hints: Tuple[str, ...] = (),
                ipv6_hints: Tuple[str, ...] = ()) -> "SVCB":
        """Build a ServiceMode record from friendly arguments."""
        params: Dict[int, bytes] = {}
        if alpn:
            encoded = bytearray()
            for proto in alpn:
                raw = proto.encode("ascii")
                encoded.append(len(raw))
                encoded += raw
            params[SvcParamKey.ALPN] = bytes(encoded)
        if port is not None:
            params[SvcParamKey.PORT] = struct.pack("!H", port)
        if ech:
            params[SvcParamKey.ECH] = b"\x00\x01fake-ech-config"
        if ipv4_hints:
            params[SvcParamKey.IPV4HINT] = b"".join(
                ipaddress.IPv4Address(a).packed for a in ipv4_hints)
        if ipv6_hints:
            params[SvcParamKey.IPV6HINT] = b"".join(
                ipaddress.IPv6Address(a).packed for a in ipv6_hints)
        return cls(priority, target, tuple(sorted(params.items())))


@dataclass(frozen=True)
class HTTPS(SVCB):
    """HTTPS record: SVCB with HTTP-specific semantics (RFC 9460 §9)."""

    rtype = RdataType.HTTPS


@dataclass(frozen=True)
class GenericRdata(Rdata):
    """Fallback for unknown TYPEs: opaque bytes (RFC 3597 style)."""

    type_value: int
    data: bytes

    @property
    def rtype(self) -> int:  # type: ignore[override]
        return self.type_value

    def to_wire(self, compression=None, offset=0) -> bytes:
        return self.data

    @classmethod
    def from_wire(cls, wire, offset, rdlength):  # pragma: no cover - direct
        raise NotImplementedError("decode via decode_rdata()")


_RDATA_CLASSES = {
    RdataType.A: A,
    RdataType.AAAA: AAAA,
    RdataType.NS: NS,
    RdataType.CNAME: CNAME,
    RdataType.PTR: PTR,
    RdataType.SOA: SOA,
    RdataType.TXT: TXT,
    RdataType.OPT: OPT,
    RdataType.SVCB: SVCB,
    RdataType.HTTPS: HTTPS,
}


def decode_rdata(rtype: int, wire: bytes, offset: int,
                 rdlength: int) -> Rdata:
    """Decode rdata of ``rtype``; unknown types become GenericRdata."""
    try:
        cls = _RDATA_CLASSES[RdataType(rtype)]
    except (ValueError, KeyError):
        return GenericRdata(rtype, wire[offset:offset + rdlength])
    return cls.from_wire(wire, offset, rdlength)


_ADDRESS_RDATA_CACHE: "dict" = {}
_ADDRESS_RDATA_CACHE_CAP = 65536


def address_rdata(address: Union[str, IPAddress]) -> Rdata:
    """A() or AAAA() depending on the address family (memoized).

    A/AAAA rdatas are frozen, so the instances can be shared; zone
    construction builds the same few records for every simulated run.
    """
    cached = _ADDRESS_RDATA_CACHE.get(address)
    if cached is not None:
        return cached
    parsed = parse_address(address)
    rdata = A(parsed) if parsed.version == 4 else AAAA(parsed)
    if len(_ADDRESS_RDATA_CACHE) >= _ADDRESS_RDATA_CACHE_CAP:
        _ADDRESS_RDATA_CACHE.clear()
    _ADDRESS_RDATA_CACHE[address] = rdata
    return rdata
