"""Full DNS implementation: wire format, zones, servers, resolvers.

This package provides every DNS component the study needs:

* RFC 1035 wire codec with compression (:mod:`repro.dns.message`),
* the record types HE versions consume, including SVCB/HTTPS
  (:mod:`repro.dns.rdata`),
* zones with delegation, glue, and wildcards (:mod:`repro.dns.zone`),
* the paper's custom authoritative server with qname-encoded test
  parameters (:mod:`repro.dns.auth`),
* a client stub resolver with HEv2's paired AAAA/A lookup
  (:mod:`repro.dns.stub`),
* a policy-driven iterative recursive resolver and a forwarding
  resolver (:mod:`repro.dns.recursive`, :mod:`repro.dns.nsselect`).
"""

from .auth import AuthoritativeServer, QueryLogEntry, TestParams
from .cache import CacheEntry, DNSCache
from .errors import (DNSError, MessageError, NoAnswerError, NxDomainError,
                     QueryTimeout, ResolutionError, ServFailError)
from .message import (DNSMessage, Opcode, Question, Rcode, ResourceRecord)
from .name import DNSName
from .nsselect import (ConfigurableNSPolicy, GluePlan, ResolverBehavior,
                       RetryAction, ServerInfo)
from .rdata import (A, AAAA, CNAME, HTTPS, NS, OPT, PTR, Rdata, RdataClass,
                    RdataType, SOA, SVCB, SvcParamKey, TXT, address_rdata)
from .recursive import (ForwardingResolver, RecursiveResolver,
                        ResolutionResult, UpstreamQuery)
from .stub import DualLookup, StubAnswer, StubResolver
from .zone import LookupKind, NotInZoneError, RRset, Zone, ZoneLookupResult

__all__ = [
    "A", "AAAA", "AuthoritativeServer", "CNAME", "CacheEntry",
    "ConfigurableNSPolicy", "DNSCache",
    "DNSError", "DNSMessage", "DNSName", "DualLookup", "ForwardingResolver",
    "GluePlan", "HTTPS", "LookupKind", "MessageError", "NS", "NoAnswerError",
    "NotInZoneError", "NxDomainError", "OPT", "Opcode", "PTR", "QueryLogEntry",
    "QueryTimeout", "Question", "RRset", "Rcode", "Rdata", "RdataClass",
    "RdataType", "RecursiveResolver", "ResolutionError", "ResolutionResult",
    "ResolverBehavior", "ResourceRecord", "RetryAction", "SOA", "SVCB",
    "ServFailError", "ServerInfo", "StubAnswer", "StubResolver",
    "SvcParamKey", "TXT", "TestParams", "UpstreamQuery", "Zone",
    "ZoneLookupResult", "address_rdata",
]
