"""DNS-specific error types."""

from __future__ import annotations


class DNSError(Exception):
    """Base class for DNS errors."""


class NameError_(DNSError):
    """Malformed domain name (label too long, name too long, bad text)."""


class MessageError(DNSError):
    """Malformed wire-format message."""


class CompressionLoopError(MessageError):
    """Compression pointers form a loop or point forward."""


class QueryTimeout(DNSError):
    """No response from the queried server within the timeout."""

    def __init__(self, message: str, elapsed: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed = elapsed


class ResolutionError(DNSError):
    """Recursive resolution failed (all servers exhausted, loop, ...)."""


class NoAnswerError(ResolutionError):
    """The name exists but has no records of the requested type."""


class NxDomainError(ResolutionError):
    """The name does not exist (authoritative NXDOMAIN)."""


class ServFailError(ResolutionError):
    """Upstream answered SERVFAIL (how resolver timeouts surface to stubs)."""
