"""Name-server address selection policies.

When a recursive resolver follows a delegation it must pick *which* of
the zone's name-server addresses to query — in a dual-stack deployment
this is the resolver's equivalent of Happy Eyeballs, and it is exactly
what §5.3 / Table 3 measure: whether AAAA glue is (re-)queried and in
which order, how often IPv6 is chosen, how long the resolver waits
before falling back, and how many packets it fires at an IPv6 address.

All measured daemons and open-resolver services are expressed as
parameterizations of one policy (:class:`ResolverBehavior` +
:class:`ConfigurableNSPolicy`); the behavioral fingerprints themselves
live in :mod:`repro.resolvers`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..simnet.addr import Family, IPAddress, family_of
from .name import DNSName


class GluePlan(enum.Enum):
    """When/how the resolver looks up name-server addresses.

    Mirrors the markers in Table 3:

    * ``AAAA_FIRST`` — sends the AAAA query before the A query, both
      before contacting the authoritative server (the RFC 8305 §3
      behaviour; "•" in the table).
    * ``A_FIRST`` — A before AAAA, both before contacting the server
      ("sends AAAA after A").
    * ``AAAA_AFTER_USE`` — contacts the (IPv4) authoritative server
      first and only then queries AAAA (Google Public DNS).
    * ``SINGLE`` — sends either A or AAAA but never both (Knot).
    """

    AAAA_FIRST = "aaaa-first"
    A_FIRST = "a-first"
    AAAA_AFTER_USE = "aaaa-after-use"
    SINGLE = "single"


class RetryAction(enum.Enum):
    """What to do after an attempt times out."""

    RETRY_SAME = "retry-same"
    SWITCH_FAMILY = "switch-family"
    GIVE_UP = "give-up"


@dataclass
class ServerInfo:
    """One candidate name-server address with its runtime state."""

    ns_name: DNSName
    address: IPAddress
    srtt: Optional[float] = None
    failures: int = 0
    queries_sent: int = 0

    @property
    def family(self) -> Family:
        return family_of(self.address)


@dataclass(frozen=True)
class ResolverBehavior:
    """The measurable fingerprint of a resolver implementation.

    Every column of Table 3 maps onto a field here; see
    :mod:`repro.resolvers` for the concrete values per implementation.
    """

    name: str
    glue_plan: GluePlan = GluePlan.AAAA_FIRST
    v6_preference: float = 0.5
    attempt_timeout: float = 0.4
    backoff_factor: float = 1.0
    retry_same_probability: float = 0.0
    max_queries_per_address: int = 1
    switch_family_on_failure: bool = True
    max_total_attempts: int = 6
    queries_ns_addresses_despite_glue: bool = True
    parallel_families: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.v6_preference <= 1.0:
            raise ValueError(
                f"v6_preference must be a probability: {self.v6_preference}")
        if self.attempt_timeout <= 0:
            raise ValueError(f"bad timeout {self.attempt_timeout}")
        if self.max_queries_per_address < 1:
            raise ValueError("max_queries_per_address must be >= 1")


class ConfigurableNSPolicy:
    """Drives address choice and retries from a :class:`ResolverBehavior`."""

    def __init__(self, behavior: ResolverBehavior,
                 rng: Optional[random.Random] = None) -> None:
        self.behavior = behavior
        self.rng = rng if rng is not None else random.Random(0)
        self.selections: List[Family] = []  # instrumentation

    # -- initial choice -----------------------------------------------------

    def initial_select(self, servers: Sequence[ServerInfo]
                       ) -> Optional[ServerInfo]:
        """Pick the first address to try for a fresh delegation."""
        v6 = [s for s in servers if s.family is Family.V6]
        v4 = [s for s in servers if s.family is Family.V4]
        if not v6 and not v4:
            return None
        if not v6:
            chosen = v4[0]
        elif not v4:
            chosen = v6[0]
        else:
            use_v6 = self.rng.random() < self.behavior.v6_preference
            chosen = v6[0] if use_v6 else v4[0]
        self.selections.append(chosen.family)
        return chosen

    # -- retry decisions -------------------------------------------------------

    def after_timeout(self, current: ServerInfo,
                      servers: Sequence[ServerInfo],
                      attempts_so_far: int) -> "tuple[RetryAction, Optional[ServerInfo], float]":
        """Decide the next step after ``current`` timed out.

        Returns ``(action, next_server, timeout_for_next_attempt)``.
        """
        behavior = self.behavior
        if attempts_so_far >= behavior.max_total_attempts:
            return RetryAction.GIVE_UP, None, 0.0

        may_retry_same = current.queries_sent < behavior.max_queries_per_address
        if may_retry_same and behavior.retry_same_probability > 0.0:
            if self.rng.random() < behavior.retry_same_probability:
                timeout = (behavior.attempt_timeout
                           * behavior.backoff_factor ** current.queries_sent)
                return RetryAction.RETRY_SAME, current, timeout
        elif may_retry_same and behavior.retry_same_probability == 0.0 \
                and not behavior.switch_family_on_failure:
            timeout = (behavior.attempt_timeout
                       * behavior.backoff_factor ** current.queries_sent)
            return RetryAction.RETRY_SAME, current, timeout

        if behavior.switch_family_on_failure:
            other = [s for s in servers
                     if s.family is not current.family
                     and s.queries_sent < behavior.max_queries_per_address]
            if other:
                return (RetryAction.SWITCH_FAMILY, other[0],
                        behavior.attempt_timeout)
        # Same family, different (or same) address as a last resort.
        same = [s for s in servers
                if s.family is current.family and s is not current
                and s.queries_sent < behavior.max_queries_per_address]
        if same:
            return RetryAction.RETRY_SAME, same[0], behavior.attempt_timeout
        if not behavior.switch_family_on_failure:
            return RetryAction.GIVE_UP, None, 0.0
        exhausted_other = [s for s in servers if s.family is not current.family]
        if exhausted_other:
            return (RetryAction.SWITCH_FAMILY, exhausted_other[0],
                    behavior.attempt_timeout)
        return RetryAction.GIVE_UP, None, 0.0

    def first_timeout(self) -> float:
        return self.behavior.attempt_timeout
