"""Domain names with RFC 1035 wire encoding and compression.

Names are immutable tuples of label bytes, compared case-insensitively
(RFC 1035 §2.3.3).  The codec supports compression pointers on encode
(shared suffix table) and decode (pointer chasing with loop protection),
which the property-based round-trip tests exercise heavily.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from .errors import CompressionLoopError, MessageError, NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
_POINTER_MASK = 0xC0


#: Bounded memo for :meth:`DNSName.from_text`; simulations build the
#: same handful of query names millions of times (every run constructs
#: the same zone and the same queries), and names are immutable, so the
#: instances can be shared freely.
_FROM_TEXT_CACHE: "Dict[str, DNSName]" = {}
_FROM_TEXT_CACHE_CAP = 65536


class DNSName:
    """An absolute domain name (always fully qualified)."""

    __slots__ = ("_labels", "_folded", "_wire")

    def __init__(self, labels: Iterable[bytes]) -> None:
        labels = tuple(labels)
        for label in labels:
            if not isinstance(label, bytes):
                raise NameError_(f"label must be bytes, got {label!r}")
            if not label:
                raise NameError_("empty label inside a name")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(
                    f"label exceeds {MAX_LABEL_LENGTH} bytes: {label!r}")
        wire_length = sum(len(l) + 1 for l in labels) + 1
        if wire_length > MAX_NAME_LENGTH:
            raise NameError_(
                f"name exceeds {MAX_NAME_LENGTH} bytes on the wire")
        self._labels = labels
        self._folded = tuple(l.lower() for l in labels)
        self._wire: Optional[bytes] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "DNSName":
        """Parse ``"www.example.com"`` (trailing dot optional, memoized)."""
        cached = _FROM_TEXT_CACHE.get(text)
        if cached is not None:
            return cached
        if text in (".", ""):
            name = cls(())
        else:
            stripped = text.rstrip(".")
            if not stripped:
                raise NameError_(f"bad name text: {text!r}")
            labels = []
            for part in stripped.split("."):
                if not part:
                    raise NameError_(f"empty label in {text!r}")
                labels.append(part.encode("ascii"))
            name = cls(labels)
        if len(_FROM_TEXT_CACHE) >= _FROM_TEXT_CACHE_CAP:
            _FROM_TEXT_CACHE.clear()
        _FROM_TEXT_CACHE[text] = name
        return name

    @classmethod
    def _from_wire_labels(cls, labels: "list[bytes]") -> "DNSName":
        """Fast constructor for :meth:`decode`.

        The decode loop has already enforced the per-label invariants
        (non-empty, ≤63 bytes — a length byte without pointer bits can
        say nothing else) and the total wire length, so this skips the
        per-label validation pass of ``__init__``.
        """
        self = object.__new__(cls)
        self._labels = tuple(labels)
        self._folded = tuple(l.lower() for l in labels)
        self._wire = None
        return self

    @classmethod
    def root(cls) -> "DNSName":
        return cls(())

    # -- structure -------------------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def to_text(self) -> str:
        if self.is_root:
            return "."
        return ".".join(l.decode("ascii", "replace")
                        for l in self._labels) + "."

    @classmethod
    def _compose(cls, labels: "Tuple[bytes, ...]",
                 folded: "Tuple[bytes, ...]") -> "DNSName":
        """Build from already-validated label tuples (no re-validation)."""
        self = object.__new__(cls)
        self._labels = labels
        self._folded = folded
        self._wire = None
        return self

    def parent(self) -> "DNSName":
        if self.is_root:
            raise NameError_("root has no parent")
        return DNSName._compose(self._labels[1:], self._folded[1:])

    def prepend(self, label: Union[str, bytes]) -> "DNSName":
        if isinstance(label, str):
            label = label.encode("ascii")
        if not isinstance(label, bytes):
            raise NameError_(f"label must be bytes, got {label!r}")
        if not label:
            raise NameError_("empty label inside a name")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(
                f"label exceeds {MAX_LABEL_LENGTH} bytes: {label!r}")
        labels = (label,) + self._labels
        if sum(len(l) + 1 for l in labels) + 1 > MAX_NAME_LENGTH:
            raise NameError_(
                f"name exceeds {MAX_NAME_LENGTH} bytes on the wire")
        return DNSName._compose(labels, (label.lower(),) + self._folded)

    def concatenate(self, suffix: "DNSName") -> "DNSName":
        labels = self._labels + suffix._labels
        if sum(len(l) + 1 for l in labels) + 1 > MAX_NAME_LENGTH:
            raise NameError_(
                f"name exceeds {MAX_NAME_LENGTH} bytes on the wire")
        return DNSName._compose(labels, self._folded + suffix._folded)

    def is_subdomain_of(self, other: "DNSName") -> bool:
        """True if self is ``other`` or ends with ``other``'s labels."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded):] == other._folded

    def relativize(self, origin: "DNSName") -> Tuple[bytes, ...]:
        """Labels of self with ``origin`` stripped from the right."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        count = len(self._labels) - len(origin.labels)
        return self._labels[:count]

    @property
    def first_label(self) -> bytes:
        if self.is_root:
            raise NameError_("root has no labels")
        return self._labels[0]

    def __len__(self) -> int:
        return len(self._labels)

    # -- comparison (case-insensitive) ----------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNSName):
            return NotImplemented
        return self._folded == other._folded

    def __hash__(self) -> int:
        return hash(self._folded)

    def __lt__(self, other: "DNSName") -> bool:
        # Canonical DNS ordering: compare reversed label sequences.
        return tuple(reversed(self._folded)) < tuple(reversed(other._folded))

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"DNSName({self.to_text()!r})"

    # -- wire format -------------------------------------------------------------

    def encode(self, compression: Optional[Dict[Tuple[bytes, ...], int]] = None,
               offset: int = 0) -> bytes:
        """Wire-encode, optionally using/extending a compression table.

        ``compression`` maps folded label suffixes to message offsets;
        ``offset`` is where this name starts in the message.
        """
        if compression is None:
            # Uncompressed wire is offset-independent; cache it on the
            # instance (names are interned and re-encoded constantly).
            wire = self._wire
            if wire is None:
                out = bytearray()
                for label in self._labels:
                    out.append(len(label))
                    out += label
                out.append(0)
                self._wire = wire = bytes(out)
            return wire
        out = bytearray()
        labels = self._labels
        for index in range(len(labels)):
            suffix = self._folded[index:]
            if compression is not None:
                pointer = compression.get(suffix)
                if pointer is not None and pointer < 0x4000:
                    out += bytes(((_POINTER_MASK | (pointer >> 8)),
                                  pointer & 0xFF))
                    return bytes(out)
                if offset + len(out) < 0x4000:
                    compression[suffix] = offset + len(out)
            label = labels[index]
            out.append(len(label))
            out += label
        out.append(0)
        return bytes(out)

    @classmethod
    def decode(cls, wire: bytes, offset: int) -> Tuple["DNSName", int]:
        """Decode a name at ``offset``; returns (name, offset-after-name)."""
        labels = []
        jumps = 0
        cursor = offset
        wire_length = 1
        end_offset: Optional[int] = None
        seen_pointers = set()
        size = len(wire)
        while True:
            if cursor >= size:
                raise MessageError("truncated name")
            length = wire[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                if cursor + 1 >= size:
                    raise MessageError("truncated compression pointer")
                pointer = ((length & ~_POINTER_MASK) << 8) | wire[cursor + 1]
                if end_offset is None:
                    end_offset = cursor + 2
                if pointer in seen_pointers or pointer >= cursor:
                    raise CompressionLoopError(
                        f"bad compression pointer {pointer} at {cursor}")
                seen_pointers.add(pointer)
                jumps += 1
                if jumps > 128:
                    raise CompressionLoopError("too many compression jumps")
                cursor = pointer
                continue
            if length & _POINTER_MASK:
                raise MessageError(f"reserved label type {length:#x}")
            cursor += 1
            if length == 0:
                break
            if cursor + length > size:
                raise MessageError("label runs past end of message")
            wire_length += length + 1
            if wire_length > MAX_NAME_LENGTH:
                raise NameError_(
                    f"name exceeds {MAX_NAME_LENGTH} bytes on the wire")
            labels.append(wire[cursor:cursor + length])
            cursor += length
        if end_offset is None:
            end_offset = cursor
        return cls._from_wire_labels(labels), end_offset
