"""Authoritative zone data with delegation, glue, and wildcards.

The measurement design needs three zone features:

* **wildcards** — the test-parameter encoding puts a fresh nonce in
  every query name (§4.1(ii)), so zones answer synthesized names via
  RFC 1034 §4.3.3 wildcard matching;
* **delegation + glue** — the resolver study walks real delegation
  chains, with unique zone apexes and name-server names per measured
  delay (§4.2);
* **IPv6-only delegation** — the capability probe that disqualified
  Hurricane Electric, Level3, Dyn, and G-Core (§5.3) needs zones whose
  name servers only have AAAA records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..simnet.addr import IPAddress
from .errors import DNSError
from .name import DNSName
from .rdata import (NS, Rdata, RdataType, SOA, address_rdata)

DEFAULT_TTL = 60


class NotInZoneError(DNSError):
    """Query name is outside this zone's bailiwick."""


@dataclass
class RRset:
    """All records of one (name, type), sharing a TTL."""

    name: DNSName
    rtype: RdataType
    ttl: int
    rdatas: List[Rdata] = field(default_factory=list)

    def __iter__(self):
        return iter(self.rdatas)

    def __len__(self) -> int:
        return len(self.rdatas)

    def copy_at(self, name: DNSName) -> "RRset":
        """The same data owned by ``name`` (wildcard synthesis)."""
        return RRset(name, self.rtype, self.ttl, list(self.rdatas))


class LookupKind(enum.Enum):
    ANSWER = "answer"
    CNAME = "cname"
    REFERRAL = "referral"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"


@dataclass
class ZoneLookupResult:
    """Outcome of a zone lookup, ready to map onto a response."""

    kind: LookupKind
    answers: List[RRset] = field(default_factory=list)
    authority: List[RRset] = field(default_factory=list)
    glue: List[RRset] = field(default_factory=list)


class Zone:
    """One authoritative zone."""

    def __init__(self, origin: Union[str, DNSName],
                 soa: Optional[SOA] = None) -> None:
        self.origin = (origin if isinstance(origin, DNSName)
                       else DNSName.from_text(origin))
        self._nodes: Dict[DNSName, Dict[RdataType, RRset]] = {}
        # Deterministic content fingerprint: a canonical byte string
        # over the add() log, built lazily on first use and invalidated
        # by further adds.  Two zones built by the same construction
        # sequence compare equal, letting response caches key on zone
        # content across otherwise-independent simulation runs.  Bytes
        # hash in one C pass, unlike a tuple of rdatas.
        self._content_log: list = []
        self._content_key_cache: Optional[bytes] = None
        self.soa = soa or SOA(
            mname=DNSName.from_text("ns1").concatenate(self.origin),
            rname=DNSName.from_text("hostmaster").concatenate(self.origin))
        self.add(self.origin, self.soa)

    # -- building -------------------------------------------------------------

    def _as_name(self, name: Union[str, DNSName]) -> DNSName:
        if isinstance(name, str):
            parsed = DNSName.from_text(name)
            if not parsed.is_subdomain_of(self.origin):
                # Treat as relative to the origin.
                parsed = parsed.concatenate(self.origin)
            return parsed
        return name

    def add(self, name: Union[str, DNSName], rdata: Rdata,
            ttl: int = DEFAULT_TTL) -> "Zone":
        """Add one record; ``name`` may be relative to the origin."""
        owner = self._as_name(name)
        if not owner.is_subdomain_of(self.origin):
            raise NotInZoneError(f"{owner} is outside {self.origin}")
        rtype = RdataType(rdata.rtype)
        node = self._nodes.setdefault(owner, {})
        rrset = node.get(rtype)
        if rrset is None:
            node[rtype] = RRset(owner, rtype, ttl, [rdata])
        else:
            rrset.rdatas.append(rdata)
        self._content_log.append((owner, rtype, ttl, rdata))
        self._content_key_cache = None
        return self

    @property
    def _content_key(self) -> bytes:
        key = self._content_key_cache
        if key is None:
            parts = [b"zone"]
            for owner, rtype, ttl, rdata in self._content_log:
                rdata_wire = rdata.to_wire(None, 0)
                parts += (owner.encode(),
                          int(rtype).to_bytes(2, "big"),
                          ttl.to_bytes(4, "big"),
                          len(rdata_wire).to_bytes(2, "big"), rdata_wire)
            self._content_key_cache = key = b"".join(parts)
        return key

    def add_address(self, name: Union[str, DNSName],
                    address: Union[str, IPAddress],
                    ttl: int = DEFAULT_TTL) -> "Zone":
        """Add an A or AAAA record depending on the address family."""
        return self.add(name, address_rdata(address), ttl)

    def add_addresses(self, name: Union[str, DNSName],
                      addresses: Iterable[Union[str, IPAddress]],
                      ttl: int = DEFAULT_TTL) -> "Zone":
        for address in addresses:
            self.add_address(name, address, ttl)
        return self

    def delegate(self, child: Union[str, DNSName],
                 ns_names: Iterable[Union[str, DNSName]],
                 glue: Optional[Dict[str, Iterable[Union[str, IPAddress]]]]
                 = None) -> "Zone":
        """Create a delegation (NS at the cut, optional glue addresses)."""
        child_name = self._as_name(child)
        for ns in ns_names:
            ns_name = self._as_name(ns) if isinstance(ns, str) else ns
            self.add(child_name, NS(ns_name))
        for ns_text, addresses in (glue or {}).items():
            glue_name = self._as_name(ns_text)
            if not glue_name.is_subdomain_of(child_name):
                raise NotInZoneError(
                    f"glue {glue_name} does not belong under {child_name}")
            for address in addresses:
                # Glue is stored at the node; lookup() only surfaces it
                # in the additional section of referrals.
                self.add_address(glue_name, address)
        return self

    # -- introspection -----------------------------------------------------------

    @property
    def names(self) -> List[DNSName]:
        return sorted(self._nodes)

    def rrset(self, name: Union[str, DNSName],
              rtype: RdataType) -> Optional[RRset]:
        return self._nodes.get(self._as_name(name), {}).get(rtype)

    def _delegation_cut(self, qname: DNSName) -> Optional[DNSName]:
        """Deepest delegation point strictly between origin and qname."""
        # Walk down from just below the apex toward qname.
        relative = qname.relativize(self.origin)
        current = self.origin
        for label in reversed(relative):
            current = current.prepend(label)
            if current == qname:
                node = self._nodes.get(current, {})
                if RdataType.NS in node and current != self.origin:
                    return current
                break
            node = self._nodes.get(current, {})
            if RdataType.NS in node and current != self.origin:
                return current
        return None

    def _has_descendants(self, qname: DNSName) -> bool:
        return any(name != qname and name.is_subdomain_of(qname)
                   for name in self._nodes)

    def _find_wildcard(self, qname: DNSName) -> Optional[Dict[RdataType,
                                                               RRset]]:
        """Closest-encloser wildcard node for ``qname``, if any."""
        candidate = qname
        while candidate != self.origin:
            candidate = candidate.parent()
            wildcard = candidate.prepend(b"*")
            node = self._nodes.get(wildcard)
            if node is not None:
                return node
            if candidate in self._nodes:
                # A closer non-wildcard ancestor exists; RFC 1034 stops
                # wildcard synthesis at the closest encloser.
                return None
        return None

    # -- lookup -------------------------------------------------------------------

    def lookup(self, qname: DNSName, qtype: RdataType) -> ZoneLookupResult:
        """Authoritative lookup per RFC 1034 §4.3.2 (simplified)."""
        if not qname.is_subdomain_of(self.origin):
            raise NotInZoneError(f"{qname} is not in zone {self.origin}")

        cut = self._delegation_cut(qname)
        if cut is not None and not (cut == qname and qtype is RdataType.NS):
            ns_rrset = self._nodes[cut][RdataType.NS]
            glue = self._collect_glue(ns_rrset)
            return ZoneLookupResult(LookupKind.REFERRAL,
                                    authority=[ns_rrset], glue=glue)

        node = self._nodes.get(qname)
        if node is None and not self._has_descendants(qname):
            node = self._find_wildcard(qname)
            if node is not None:
                node = {rtype: rrset.copy_at(qname)
                        for rtype, rrset in node.items()}

        if node is None:
            if self._has_descendants(qname):
                return self._nodata()
            return ZoneLookupResult(LookupKind.NXDOMAIN,
                                    authority=[self._soa_rrset()])

        cname = node.get(RdataType.CNAME)
        if cname is not None and qtype not in (RdataType.CNAME,
                                               RdataType.ANY):
            return ZoneLookupResult(LookupKind.CNAME, answers=[cname])

        if qtype is RdataType.ANY:
            rrsets = [rrset for rrset in node.values()]
            if rrsets:
                return ZoneLookupResult(LookupKind.ANSWER, answers=rrsets)
            return self._nodata()

        rrset = node.get(qtype)
        if rrset is None:
            return self._nodata()
        return ZoneLookupResult(LookupKind.ANSWER, answers=[rrset])

    def _nodata(self) -> ZoneLookupResult:
        return ZoneLookupResult(LookupKind.NODATA,
                                authority=[self._soa_rrset()])

    def _soa_rrset(self) -> RRset:
        return RRset(self.origin, RdataType.SOA, DEFAULT_TTL, [self.soa])

    def _collect_glue(self, ns_rrset: RRset) -> List[RRset]:
        glue: List[RRset] = []
        for ns_rdata in ns_rrset:
            target = ns_rdata.target  # type: ignore[attr-defined]
            node = self._nodes.get(target)
            if node is None:
                continue
            for rtype in (RdataType.A, RdataType.AAAA):
                rrset = node.get(rtype)
                if rrset is not None:
                    glue.append(rrset)
        return glue

    def __repr__(self) -> str:
        return f"<Zone {self.origin} nodes={len(self._nodes)}>"
