"""Staggered connection racing — the heart of Happy Eyeballs.

Connection attempts start one Connection Attempt Delay apart
(RFC 8305 §5); the first attempt to complete its handshake wins and all
others are aborted.  A failed attempt (RST) releases the next attempt
immediately.  Addresses resolved *after* racing began (late AAAA
answers) can be appended to a running race.

The racer is protocol-agnostic: candidates carry their transport
(TCP or QUIC for HEv3), and the per-attempt connector is looked up from
the host's stacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..simnet.addr import Family, address_str
from ..simnet.host import Host, NoRouteError
from ..simnet.packet import Protocol
from ..transport.errors import ConnectError, ConnectionAborted
from .events import HEEventKind, HETrace
from .params import HEParams
from .sortlist import HistoryStore
from .svcb import ServiceCandidate

if False:  # typing only, avoids a policy<->racing import cycle
    from .policy import RacingStage  # noqa: F401


#: CAD at or above this threshold means "never stagger": the next
#: attempt starts only when the previous one fails (wget-style serial
#: connecting, i.e. no Happy Eyeballs at all).
NEVER_CAD = 1.0e5


class AttemptOutcome(enum.Enum):
    PENDING = "pending"
    WON = "won"
    FAILED = "failed"
    ABORTED = "aborted"


@dataclass(eq=False)  # identity semantics: records key runtime tables
class AttemptRecord:
    """Bookkeeping for one connection attempt in a race."""

    index: int
    candidate: ServiceCandidate
    started_at: float
    finished_at: Optional[float] = None
    outcome: AttemptOutcome = AttemptOutcome.PENDING
    error: Optional[Exception] = None

    @property
    def family(self) -> Family:
        return self.candidate.family

    @property
    def protocol(self) -> Protocol:
        return self.candidate.protocol

    @property
    def elapsed(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


@dataclass
class RaceResult:
    """Outcome of one race."""

    started_at: float
    finished_at: Optional[float] = None
    winner: Optional[object] = None  # TCPConnection or QUICConnection
    winning_attempt: Optional[AttemptRecord] = None
    attempts: List[AttemptRecord] = field(default_factory=list)
    error: Optional[Exception] = None

    @property
    def success(self) -> bool:
        return self.winner is not None

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def winning_family(self) -> Optional[Family]:
        if self.winning_attempt is None:
            return None
        return self.winning_attempt.family

    def attempts_of(self, family: Family) -> List[AttemptRecord]:
        return [a for a in self.attempts if a.family is family]


class AllAttemptsFailed(ConnectError):
    """Every candidate address failed."""


class RaceDeadlineExceeded(ConnectError):
    """The overall deadline passed before any attempt succeeded."""


CadProvider = Callable[[int, ServiceCandidate], float]


class ConnectionRacer:
    """Runs one staggered race on a host.

    ``params`` is anything exposing the CAD schedule fields — a legacy
    :class:`HEParams` bag or the :class:`~repro.core.policy.RacingStage`
    of a policy stack (the stage is the canonical driver now).
    """

    def __init__(self, host: Host, params: "HEParams | RacingStage",
                 trace: Optional[HETrace] = None,
                 history: Optional[HistoryStore] = None,
                 cad_provider: Optional[CadProvider] = None,
                 attempt_timeout: Optional[float] = None) -> None:
        self.host = host
        self.params = params
        self.trace = trace
        self.history = history
        self.attempt_timeout = attempt_timeout
        self._cad_provider = cad_provider or self._default_cad
        self._queue: List[ServiceCandidate] = []
        self._new_candidates_event = None

    # -- CAD computation ----------------------------------------------------

    def _default_cad(self, index: int,
                     candidate: ServiceCandidate) -> float:
        """Fixed CAD, or the RFC 8305 §5 dynamic rule when enabled.

        Dynamic rule: with RTT history toward this address, wait twice
        the smoothed RTT (clamped to [min, max]); with no history the
        conservative choice is the maximum CAD — which is exactly why
        Safari shows a 2 s CAD in the paper's pristine local testbed.
        """
        params = self.params
        if not params.dynamic_cad:
            return params.connection_attempt_delay
        srtt = None
        if self.history is not None:
            srtt = self.history.srtt(candidate.address, self.host.sim.now)
        if srtt is None:
            return params.maximum_cad
        return params.clamp_dynamic_cad(2.0 * srtt)

    # -- dynamic candidate addition ------------------------------------------

    def add_candidates(self, candidates: Sequence[ServiceCandidate]) -> None:
        """Append late-resolved candidates to a running race."""
        self._queue.extend(candidates)
        if (self._new_candidates_event is not None
                and not self._new_candidates_event.triggered):
            self._new_candidates_event.succeed(len(candidates))

    # -- the race -------------------------------------------------------------

    def run(self, candidates: Sequence[ServiceCandidate],
            deadline: Optional[float] = None):
        """Generator running the race; returns a :class:`RaceResult`.

        Drive with ``yield from`` inside a simulator process.  Raises
        :class:`AllAttemptsFailed` / :class:`RaceDeadlineExceeded` with
        the partial result attached as ``.race_result``.
        """
        sim = self.host.sim
        self._queue = list(candidates)
        result = RaceResult(started_at=sim.now)
        active = {}  # watcher Process -> AttemptRecord
        connections = {}  # AttemptRecord -> connection object
        next_start_at = sim.now
        deadline_at = None if deadline is None else sim.now + deadline

        def fail_race(error: ConnectError):
            for record, connection in connections.items():
                if record.outcome is AttemptOutcome.PENDING:
                    record.outcome = AttemptOutcome.ABORTED
                    record.finished_at = sim.now
                    connection.abort()
            result.finished_at = sim.now
            result.error = error
            error.race_result = result  # type: ignore[attr-defined]
            self._trace(HEEventKind.CONNECT_FAILED, reason=str(error))
            return error

        # Stagger-gate and deadline timers are superseded every loop
        # iteration (a finished attempt reshapes the wait set).  They are
        # retained so the superseded ones can be physically cancelled —
        # O(1) on the timer wheel — instead of lingering until they fire
        # as no-ops, which on CAD-heavy races leaves thousands of dead
        # wheel entries.
        gate_timer = None
        deadline_timer = None
        try:
            while True:
                # Start every attempt that is due.
                while self._queue and sim.now >= next_start_at:
                    candidate = self._queue.pop(0)
                    record, watcher = self._start_attempt(
                        len(result.attempts), candidate, connections)
                    result.attempts.append(record)
                    if watcher is not None:
                        active[watcher] = record
                        cad = self._cad_provider(record.index, candidate)
                        next_start_at = sim.now + cad
                    # If the attempt failed synchronously (no route), the
                    # next candidate starts immediately: leave next_start_at.

                if gate_timer is not None:
                    gate_timer.cancel()
                    gate_timer = None
                if deadline_timer is not None:
                    deadline_timer.cancel()
                    deadline_timer = None
                waits = list(active)
                self._new_candidates_event = sim.event(
                    name="race-new-candidates")
                waits.append(self._new_candidates_event)
                if self._queue and next_start_at - sim.now < NEVER_CAD:
                    gate_timer = sim.timeout(
                        max(0.0, next_start_at - sim.now))
                    waits.append(gate_timer)
                elif not self._queue and not active:
                    raise fail_race(AllAttemptsFailed(
                        f"all {len(result.attempts)} attempts failed"))
                if deadline_at is not None:
                    remaining = deadline_at - sim.now
                    if remaining <= 0:
                        raise fail_race(RaceDeadlineExceeded(
                            f"no connection within {deadline}s"))
                    deadline_timer = sim.timeout(remaining)
                    waits.append(deadline_timer)

                yield sim.any_of(waits)

                if (deadline_at is not None and sim.now >= deadline_at
                        and not any(w.triggered and w.value[1] is not None
                                    for w in active)):
                    raise fail_race(RaceDeadlineExceeded(
                        f"no connection within {deadline}s"))

                # Collect finished watchers.
                finished = [w for w in list(active) if w.triggered]
                for watcher in finished:
                    record = active.pop(watcher)
                    _, connection, error = watcher.value
                    record.finished_at = sim.now
                    if connection is not None:
                        record.outcome = AttemptOutcome.WON
                        result.winner = connection
                        result.winning_attempt = record
                        result.finished_at = sim.now
                        self._on_win(record, connection)
                        self._abort_losers(record, connections, active)
                        return result
                    if isinstance(error, ConnectionAborted):
                        record.outcome = AttemptOutcome.ABORTED
                    else:
                        record.outcome = AttemptOutcome.FAILED
                        record.error = error
                        self._on_failure(record, error)
                        # RFC 8305 §5: a failed attempt unblocks the next.
                        next_start_at = sim.now
        finally:
            # Whatever ended the race (win, failure, deadline, or an
            # abandoned generator), drop any still-pending timers.
            if gate_timer is not None:
                gate_timer.cancel()
            if deadline_timer is not None:
                deadline_timer.cancel()

    # -- attempt plumbing ----------------------------------------------------------

    def _start_attempt(self, index: int, candidate: ServiceCandidate,
                       connections: dict):
        sim = self.host.sim
        record = AttemptRecord(index=index, candidate=candidate,
                               started_at=sim.now)
        self._trace(HEEventKind.ATTEMPT_STARTED, index=index,
                    address=address_str(candidate.address),
                    family=candidate.family.label,
                    protocol=candidate.protocol.value)
        try:
            if candidate.protocol is Protocol.QUIC:
                connection = self.host.quic.connect(
                    candidate.address, candidate.port,
                    timeout=self.attempt_timeout)
            else:
                connection = self.host.tcp.connect(
                    candidate.address, candidate.port,
                    timeout=self.attempt_timeout)
        except NoRouteError as exc:
            record.outcome = AttemptOutcome.FAILED
            record.error = exc
            record.finished_at = sim.now
            self._on_failure(record, exc)
            return record, None
        connections[record] = connection
        watcher = sim.process(self._watch(record, connection),
                              name=f"attempt-{index}")
        return record, watcher

    def _watch(self, record: AttemptRecord, connection):
        """Normalize attempt completion to (record, connection|None, error)."""
        try:
            established = yield connection.established
        except Exception as exc:  # noqa: BLE001 - reported via tuple
            return (record, None, exc)
        return (record, established, None)

    def _abort_losers(self, winning: AttemptRecord, connections: dict,
                      active: dict) -> None:
        for record, connection in connections.items():
            if record is winning:
                continue
            if record.outcome is AttemptOutcome.PENDING:
                record.outcome = AttemptOutcome.ABORTED
                record.finished_at = self.host.sim.now
                self._trace(HEEventKind.ATTEMPT_ABORTED,
                            index=record.index,
                            address=address_str(record.candidate.address))
                connection.abort()
        active.clear()

    # -- callbacks ----------------------------------------------------------------

    def _on_win(self, record: AttemptRecord, connection) -> None:
        sim = self.host.sim
        self._trace(HEEventKind.ATTEMPT_SUCCEEDED, index=record.index,
                    address=address_str(record.candidate.address),
                    family=record.family.label,
                    elapsed_ms=(record.elapsed or 0.0) * 1000.0)
        self._trace(HEEventKind.CONNECTION_WON,
                    address=address_str(record.candidate.address),
                    family=record.family.label,
                    protocol=record.protocol.value)
        if self.history is not None and record.elapsed is not None:
            self.history.record_success(record.candidate.address,
                                        record.elapsed, sim.now)

    def _on_failure(self, record: AttemptRecord,
                    error: Optional[Exception]) -> None:
        self._trace(HEEventKind.ATTEMPT_FAILED, index=record.index,
                    address=address_str(record.candidate.address),
                    family=record.family.label,
                    error=type(error).__name__ if error else "unknown")
        if self.history is not None:
            self.history.record_failure(record.candidate.address,
                                        self.host.sim.now)

    def _trace(self, kind: HEEventKind, **detail) -> None:
        if self.trace is not None:
            self.trace.record(self.host.sim.now, kind, **detail)
