"""Structured event trace of a Happy Eyeballs run.

Every phase of a connection establishment — queries out, answers in,
resolution-delay timers, staggered attempts, the winner — is recorded
as a timestamped event.  The trace is what the analysis layer and the
quickstart example read; rendering it reproduces the Figure 1 message
sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class HEEventKind(enum.Enum):
    CONNECT_REQUESTED = "connect-requested"
    CACHE_HIT = "cache-hit"
    QUERY_SENT = "query-sent"
    ANSWER_RECEIVED = "answer-received"
    RESOLUTION_DELAY_STARTED = "resolution-delay-started"
    RESOLUTION_DELAY_CANCELLED = "resolution-delay-cancelled"
    RESOLUTION_DELAY_EXPIRED = "resolution-delay-expired"
    ADDRESSES_SELECTED = "addresses-selected"
    LATE_ADDRESSES_ADDED = "late-addresses-added"
    ATTEMPT_STARTED = "attempt-started"
    ATTEMPT_SUCCEEDED = "attempt-succeeded"
    ATTEMPT_FAILED = "attempt-failed"
    ATTEMPT_ABORTED = "attempt-aborted"
    CONNECTION_WON = "connection-won"
    CONNECT_FAILED = "connect-failed"


@dataclass(frozen=True)
class HEEvent:
    """One timestamped step of an HE run."""

    timestamp: float
    kind: HEEventKind
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        extras = " ".join(f"{key}={value}" for key, value
                          in sorted(self.detail.items()))
        return f"{self.timestamp * 1000:9.3f} ms  {self.kind.value:28s} {extras}"


class HETrace:
    """Append-only event log for one or more HE runs."""

    def __init__(self) -> None:
        self.events: List[HEEvent] = []

    def record(self, timestamp: float, kind: HEEventKind,
               **detail: Any) -> HEEvent:
        event = HEEvent(timestamp, kind, dict(detail))
        self.events.append(event)
        return event

    def of_kind(self, kind: HEEventKind) -> List[HEEvent]:
        return [event for event in self.events if event.kind is kind]

    def first_of(self, kind: HEEventKind) -> Optional[HEEvent]:
        for event in self.events:
            if event.kind is kind:
                return event
        return None

    def last_of(self, kind: HEEventKind) -> Optional[HEEvent]:
        found = None
        for event in self.events:
            if event.kind is kind:
                found = event
        return found

    def attempts(self) -> List[HEEvent]:
        return self.of_kind(HEEventKind.ATTEMPT_STARTED)

    def clear(self) -> None:
        self.events.clear()

    def render(self) -> str:
        """Human-readable sequence, Figure-1 style."""
        return "\n".join(event.describe() for event in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
