"""HEv3 service discovery: SVCB/HTTPS-driven candidate building.

draft-ietf-happy-happyeyeballs-v3 extends the race to layer 4: SVCB and
HTTPS records advertise per-endpoint protocol support (ALPN), address
hints, and TLS Encrypted ClientHello configs.  "The HEv3 address
selection should favor IP addresses with available TLS Encrypted
ClientHello (ECH) over QUIC over TCP" (§2).

This module turns DNS answers into an ordered list of
:class:`ServiceCandidate` (address, family, protocol, ECH flag) ready
for the racing engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

from ..simnet.addr import Family, IPAddress, family_of, parse_address
from ..simnet.packet import Protocol
from ..dns.rdata import SVCB
from .interlace import apply_interlace
from .params import HEParams

#: ALPN tokens that imply a QUIC-based protocol.
QUIC_ALPNS = frozenset({"h3", "h3-29", "doq"})


@dataclass(frozen=True)
class ServiceCandidate:
    """One raceable endpoint: where to connect and with what."""

    address: IPAddress
    protocol: Protocol
    port: int
    ech: bool = False
    svcb_priority: int = 0  # 0 = synthesized without an SVCB record

    @property
    def family(self) -> Family:
        return family_of(self.address)

    def preference_rank(self) -> "tuple[int, int]":
        """Lower is better: ECH first, then QUIC over TCP (HEv3 §2)."""
        ech_rank = 0 if self.ech else 1
        protocol_rank = 0 if self.protocol is Protocol.QUIC else 1
        return (ech_rank, protocol_rank)

    def __str__(self) -> str:
        flags = "+ech" if self.ech else ""
        return (f"{self.protocol.value}://{self.address}:{self.port}"
                f"{flags}")


def candidates_from_addresses(addresses: Iterable[Union[str, IPAddress]],
                              port: int,
                              protocols: Sequence[Protocol] = (Protocol.TCP,)
                              ) -> List[ServiceCandidate]:
    """Plain candidates when no SVCB/HTTPS records exist."""
    out: List[ServiceCandidate] = []
    for value in addresses:
        address = parse_address(value)
        for protocol in protocols:
            out.append(ServiceCandidate(address=address, protocol=protocol,
                                        port=port))
    return out


def candidates_from_svcb(records: Sequence[SVCB],
                         resolved_addresses: Iterable[Union[str, IPAddress]],
                         default_port: int) -> List[ServiceCandidate]:
    """Expand ServiceMode SVCB/HTTPS records into candidates.

    Addresses come from the records' ipv4hint/ipv6hint parameters when
    present, otherwise from the resolved A/AAAA answers.  ALPN tokens
    decide the protocol: any QUIC ALPN yields a QUIC candidate, any
    other (or no) ALPN yields TCP.
    """
    resolved = [parse_address(a) for a in resolved_addresses]
    out: List[ServiceCandidate] = []
    service_records = sorted(
        (record for record in records if record.priority > 0),
        key=lambda record: record.priority)
    for record in service_records:
        hinted: List[IPAddress] = list(record.ipv6_hints) + list(
            record.ipv4_hints)
        addresses = hinted if hinted else resolved
        port = record.port if record.port is not None else default_port
        alpn = record.alpn
        protocols: List[Protocol] = []
        if any(token in QUIC_ALPNS for token in alpn):
            protocols.append(Protocol.QUIC)
        if not alpn or any(token not in QUIC_ALPNS for token in alpn):
            protocols.append(Protocol.TCP)
        for address in addresses:
            for protocol in protocols:
                out.append(ServiceCandidate(
                    address=address, protocol=protocol, port=port,
                    ech=record.has_ech, svcb_priority=record.priority))
    return out


def order_candidates(candidates: Sequence[ServiceCandidate],
                     params) -> List[ServiceCandidate]:
    """HEv3 ordering: protocol preference, then family interlacing.

    Candidates are bucketed by ``(ech, protocol)`` preference; within a
    bucket the address families are interlaced per the parameters
    (``params`` is an :class:`HEParams` bag or the ``SortingStage`` of
    a policy stack — both expose the interlace fields), so the result
    still guarantees fast cross-family fallback.
    """
    buckets: dict = {}
    for candidate in candidates:
        buckets.setdefault(candidate.preference_rank(), []).append(candidate)

    ordered: List[ServiceCandidate] = []
    for rank in sorted(buckets):
        bucket = buckets[rank]
        by_address = {}
        for candidate in bucket:
            by_address.setdefault(candidate.address, []).append(candidate)
        interlaced = apply_interlace(
            list(by_address), params.interlace,
            preferred=params.preferred_family,
            first_count=params.first_address_family_count)
        for address in interlaced:
            ordered.extend(by_address[address])
    return ordered
