"""Connection outcome cache (RFC 6555 §4.1).

"Once one connection attempt succeeds, the client discards the others
and should cache the outcome for the order of 10 minutes."  The cache
biases subsequent resolutions of the same destination toward the
address (family) that last worked, so a host behind broken IPv6 does
not pay the CAD on every single connection.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

from ..simnet.addr import Family, IPAddress, family_of, parse_address

DEFAULT_CACHE_TTL = 600.0
DEFAULT_CAPACITY = 1024


@dataclass(frozen=True)
class CachedOutcome:
    """The remembered winner for one destination name."""

    hostname: str
    address: IPAddress
    family: Family
    recorded_at: float
    ttl: float

    def expired(self, now: float) -> bool:
        return now - self.recorded_at >= self.ttl


class OutcomeCache:
    """LRU cache of winning addresses keyed by destination hostname."""

    def __init__(self, ttl: float = DEFAULT_CACHE_TTL,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive: {ttl}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.ttl = ttl
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedOutcome]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def record(self, hostname: str, address: Union[str, IPAddress],
               now: float) -> CachedOutcome:
        """Remember that ``address`` won the race for ``hostname``."""
        parsed = parse_address(address)
        outcome = CachedOutcome(hostname=hostname.lower(), address=parsed,
                                family=family_of(parsed), recorded_at=now,
                                ttl=self.ttl)
        key = hostname.lower()
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = outcome
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return outcome

    def lookup(self, hostname: str, now: float) -> Optional[CachedOutcome]:
        key = hostname.lower()
        outcome = self._entries.get(key)
        if outcome is None:
            self.misses += 1
            return None
        if outcome.expired(now):
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return outcome

    def invalidate(self, hostname: str) -> None:
        self._entries.pop(hostname.lower(), None)

    def purge_expired(self, now: float) -> int:
        stale = [key for key, outcome in self._entries.items()
                 if outcome.expired(now)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, hostname: str) -> bool:
        return hostname.lower() in self._entries
