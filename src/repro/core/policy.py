"""The staged client policy API: PolicyStack = resolution · sorting · racing.

RFC 8305 is a pipeline — resolve names, sort destinations, race
connections — and the paper fingerprints clients by the *stage* they
deviate in.  This module decomposes the historical flat
:class:`~repro.core.params.HEParams` bag into three explicit,
composable policy stages mirroring those phases:

* :class:`ResolutionStage` — how DNS answers become "start connecting
  now": the §3 Resolution Delay state machine (or the wait-both /
  first-usable behaviours real clients ship), plus HEv3's SVCB/HTTPS
  record consumption;
* :class:`SortingStage` — §4 destination ordering: family preference
  or an explicit per-OS RFC 6724 sortlist
  (:mod:`repro.core.sortlist`), then First-Address-Family-Count
  interlacing;
* :class:`RacingStage` — §5 staggered racing: the CAD schedule (fixed,
  dynamic, or serial), per-family attempt caps, the outcome cache TTL,
  and HEv3's QUIC-vs-TCP protocol racing.

A :class:`PolicyStack` composes one of each.  Every stage is a frozen,
declarative dataclass, so the testbed's configuration digests
(:func:`repro.testbed.store.canonical`) cover a client's policies
field-by-field with no extra plumbing, and ``repro ls --clients`` can
print a registry row straight from the declarations.

The legacy ``HEParams`` bag survives as a *derived view*
(:meth:`PolicyStack.params`): ``PolicyStack.from_heparams(p).params()
== p`` for every representable parameter set, which is what keeps all
pre-stack goldens byte-identical.  Stack-only features (per-OS
sortlists) have no ``HEParams`` home and simply do not appear in the
view.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from ..simnet.addr import Family, IPAddress
from .interlace import apply_interlace
from .params import (HEParams, HEVersion, InterlaceStrategy,
                     ResolutionPolicy)
from .sortlist import HistoryStore, PolicyTable, order_addresses, \
    policy_table


@dataclass(frozen=True)
class ResolutionStage:
    """How DNS answers trigger connecting (RFC 8305 §3, HEv3 §3).

    ``mode`` picks the state machine (see
    :class:`~repro.core.params.ResolutionPolicy`); ``resolution_delay``
    is its grace period in seconds (None = the client implements no RD
    at all); ``use_svcb`` adds the HEv3 HTTPS/SVCB query and feeds the
    answered records to the racing stage.
    """

    mode: ResolutionPolicy = ResolutionPolicy.HE_V2
    resolution_delay: Optional[float] = 0.050
    use_svcb: bool = False

    def __post_init__(self) -> None:
        if self.resolution_delay is not None and self.resolution_delay < 0:
            raise ValueError(
                f"negative resolution delay: {self.resolution_delay}")

    # ``resolve_addresses`` (and anything else written against the
    # HEParams field names) reads these two attributes; aliasing them
    # here lets a stage drive the state machines directly.
    @property
    def resolution_policy(self) -> ResolutionPolicy:
        return self.mode

    def query_https(self, stub, hostname: str):
        """Issue the HEv3 HTTPS query, or None when SVCB is off."""
        if not self.use_svcb:
            return None
        from ..dns.rdata import RdataType

        return stub.query(hostname, RdataType.HTTPS)

    def resolve(self, sim, dual, trace):
        """Drive the resolution state machine (a simulator generator)."""
        from .resolution import resolve_addresses

        return resolve_addresses(sim, dual, self, trace)

    def harvest_svcb(self, https_process) -> List:
        """SVCB/HTTPS records from a completed HTTPS lookup (best
        effort: an unanswered or failed lookup contributes nothing)."""
        from ..dns.rdata import RdataType

        if https_process is None or not https_process.triggered:
            return []
        try:
            response = https_process.value
        except Exception:  # noqa: BLE001 - HTTPS lookup is best-effort
            return []
        if response is None:
            return []
        return [rr.rdata for rr in response.answers
                if rr.rtype in (RdataType.HTTPS, RdataType.SVCB)]

    def summary(self) -> str:
        parts = [self.mode.value]
        if self.resolution_delay is not None \
                and self.mode is ResolutionPolicy.HE_V2:
            parts.append(f"rd={self.resolution_delay * 1000:.0f}ms")
        if self.use_svcb:
            parts.append("svcb")
        return " ".join(parts)


@dataclass(frozen=True)
class SortingStage:
    """Destination ordering and interlacing (RFC 8305 §4, RFC 6724).

    ``sortlist`` optionally names a per-OS RFC 6724 policy table
    (:data:`repro.core.sortlist.POLICY_TABLES`); without one the stage
    keeps the legacy family-preference ordering every pre-stack profile
    used, which is what holds the historical artifacts byte-identical.
    """

    preferred_family: Family = Family.V6
    interlace: InterlaceStrategy = InterlaceStrategy.RFC8305
    first_address_family_count: int = 1
    sortlist: Optional[str] = None

    def __post_init__(self) -> None:
        if self.first_address_family_count < 1:
            raise ValueError("first_address_family_count must be >= 1")
        if self.sortlist is not None:
            policy_table(self.sortlist)  # raises on unknown names

    @property
    def table(self) -> Optional[PolicyTable]:
        return None if self.sortlist is None else policy_table(self.sortlist)

    def select(self, addresses: Sequence[IPAddress],
               history: Optional[HistoryStore], now: float,
               biased_family: Optional[Family] = None) -> List[IPAddress]:
        """Order + interlace the resolved addresses.

        ``biased_family`` is the RFC 6555 §4.1 outcome-cache bias; it
        overrides the declared family preference (legacy mode) or
        outranks the policy table (sortlist mode).
        """
        table = self.table
        if table is None:
            preferred = (biased_family if biased_family is not None
                         else self.preferred_family)
            ordered = order_addresses(addresses, preferred_family=preferred,
                                      history=history, now=now)
        else:
            ordered = order_addresses(addresses,
                                      preferred_family=self.preferred_family,
                                      history=history, now=now,
                                      policy=table,
                                      biased_family=biased_family)
            # The table decided the leading family; interlacing below
            # must not shuffle it back.
            preferred = (self.family_of_first(ordered)
                         or self.preferred_family)
        return apply_interlace(ordered, self.interlace, preferred=preferred,
                               first_count=self.first_address_family_count)

    def interleave_late(self, addresses: Sequence[IPAddress],
                        preferred: Family) -> List[IPAddress]:
        """Interlace late-resolved addresses joining a running race."""
        return apply_interlace(addresses, self.interlace,
                               preferred=preferred,
                               first_count=self.first_address_family_count)

    @staticmethod
    def family_of_first(ordered: Sequence[IPAddress]) -> Optional[Family]:
        if not ordered:
            return None
        return Family.V6 if ordered[0].version == 6 else Family.V4

    def summary(self) -> str:
        parts = [f"prefer={self.preferred_family.label}",
                 self.interlace.value,
                 f"fafc={self.first_address_family_count}"]
        if self.sortlist is not None:
            parts.append(f"sortlist={self.sortlist}")
        return " ".join(parts)


@dataclass(frozen=True)
class RacingStage:
    """The staggered connection race (RFC 8305 §5, HEv3 §4).

    Field names deliberately match :class:`HEParams` so the stage can
    drive :class:`~repro.core.racing.ConnectionRacer` directly as its
    parameter object.
    """

    connection_attempt_delay: float = 0.250
    dynamic_cad: bool = False
    minimum_cad: float = 0.010
    recommended_cad: float = 0.100
    maximum_cad: float = 2.0
    max_attempts_per_family: Optional[int] = None
    race_quic: bool = False
    outcome_cache_ttl: float = 600.0

    def __post_init__(self) -> None:
        if self.connection_attempt_delay <= 0:
            raise ValueError(
                f"CAD must be positive: {self.connection_attempt_delay}")
        if not (0 < self.minimum_cad <= self.recommended_cad
                <= self.maximum_cad):
            raise ValueError(
                "dynamic CAD bounds must satisfy 0 < min <= rec <= max")
        if (self.max_attempts_per_family is not None
                and self.max_attempts_per_family < 1):
            raise ValueError("max_attempts_per_family must be >= 1")

    def clamp_dynamic_cad(self, proposed: float) -> float:
        """Clamp a history-derived CAD into the RFC's min/max bounds."""
        return max(self.minimum_cad, min(self.maximum_cad, proposed))

    def cap_per_family(self, ordered: Sequence[IPAddress]
                       ) -> List[IPAddress]:
        """Apply the per-family attempt budget (None = all addresses)."""
        cap = self.max_attempts_per_family
        if cap is None:
            return list(ordered)
        kept: List[IPAddress] = []
        counts = {Family.V4: 0, Family.V6: 0}
        for address in ordered:
            family = Family.V6 if address.version == 6 else Family.V4
            if counts[family] < cap:
                counts[family] += 1
                kept.append(address)
        return kept

    def build_candidates(self, ordered: Sequence[IPAddress],
                         svcb_records: Sequence, port: int,
                         sorting: SortingStage, use_svcb: bool) -> List:
        """Raceable candidates: per-family caps, then — when SVCB
        records are in play — protocol expansion and HEv3 preference
        ordering (ECH over QUIC over TCP)."""
        from .svcb import (candidates_from_addresses, candidates_from_svcb,
                           order_candidates)
        from ..simnet.packet import Protocol

        capped = self.cap_per_family(ordered)
        if use_svcb and svcb_records:
            candidates = candidates_from_svcb(svcb_records, capped, port)
            if not self.race_quic:
                candidates = [c for c in candidates
                              if c.protocol is Protocol.TCP]
            return order_candidates(candidates, sorting)
        return candidates_from_addresses(capped, port)

    def racer(self, host, trace=None, history=None, attempt_timeout=None):
        from .racing import ConnectionRacer

        return ConnectionRacer(host, self, trace=trace, history=history,
                               attempt_timeout=attempt_timeout)

    @property
    def serial(self) -> bool:
        """True for the no-HE marker CAD (next attempt only on failure)."""
        from .racing import NEVER_CAD

        return not self.dynamic_cad \
            and self.connection_attempt_delay >= NEVER_CAD

    def summary(self) -> str:
        if self.serial:
            parts = ["serial"]
        elif self.dynamic_cad:
            parts = [f"cad=dyn({self.minimum_cad * 1000:.0f}/"
                     f"{self.recommended_cad * 1000:.0f}/"
                     f"{self.maximum_cad * 1000:.0f}ms)"]
        else:
            parts = [f"cad={self.connection_attempt_delay * 1000:.0f}ms"]
        if self.max_attempts_per_family is not None:
            parts.append(f"cap={self.max_attempts_per_family}/family")
        if self.race_quic:
            parts.append("quic")
        return " ".join(parts)


@dataclass(frozen=True)
class PolicyStack:
    """One client's composed Happy Eyeballs behaviour, stage by stage."""

    resolution: ResolutionStage = ResolutionStage()
    sorting: SortingStage = SortingStage()
    racing: RacingStage = RacingStage()
    version: HEVersion = HEVersion.V2

    # -- composition ---------------------------------------------------------

    def with_resolution(self, **changes) -> "PolicyStack":
        return replace(self, resolution=replace(self.resolution, **changes))

    def with_sorting(self, **changes) -> "PolicyStack":
        return replace(self, sorting=replace(self.sorting, **changes))

    def with_racing(self, **changes) -> "PolicyStack":
        return replace(self, racing=replace(self.racing, **changes))

    # -- the legacy view -----------------------------------------------------

    def params(self) -> HEParams:
        """The flat ``HEParams`` view of this stack.

        Byte-identical round trip with :meth:`from_heparams` — the
        compatibility contract every pre-stack artifact relies on.
        Stack-only features (per-OS sortlists) are not representable
        and do not appear.
        """
        return HEParams(
            version=self.version,
            connection_attempt_delay=self.racing.connection_attempt_delay,
            dynamic_cad=self.racing.dynamic_cad,
            minimum_cad=self.racing.minimum_cad,
            recommended_cad=self.racing.recommended_cad,
            maximum_cad=self.racing.maximum_cad,
            resolution_delay=self.resolution.resolution_delay,
            first_address_family_count=(
                self.sorting.first_address_family_count),
            preferred_family=self.sorting.preferred_family,
            interlace=self.sorting.interlace,
            resolution_policy=self.resolution.mode,
            outcome_cache_ttl=self.racing.outcome_cache_ttl,
            race_quic=self.racing.race_quic,
            use_svcb=self.resolution.use_svcb,
            max_attempts_per_family=self.racing.max_attempts_per_family,
        )

    @classmethod
    def from_heparams(cls, params: HEParams) -> "PolicyStack":
        """Decompose a legacy parameter bag into its stages."""
        return cls(
            resolution=ResolutionStage(
                mode=params.resolution_policy,
                resolution_delay=params.resolution_delay,
                use_svcb=params.use_svcb),
            sorting=SortingStage(
                preferred_family=params.preferred_family,
                interlace=params.interlace,
                first_address_family_count=(
                    params.first_address_family_count)),
            racing=RacingStage(
                connection_attempt_delay=params.connection_attempt_delay,
                dynamic_cad=params.dynamic_cad,
                minimum_cad=params.minimum_cad,
                recommended_cad=params.recommended_cad,
                maximum_cad=params.maximum_cad,
                max_attempts_per_family=params.max_attempts_per_family,
                race_quic=params.race_quic,
                outcome_cache_ttl=params.outcome_cache_ttl),
            version=params.version,
        )

    # -- introspection -------------------------------------------------------

    def stage_summaries(self) -> "Tuple[Tuple[str, str], ...]":
        """``(stage name, one-line declaration)`` per stage — the single
        source ``repro ls --clients`` renders from."""
        return (("resolution", self.resolution.summary()),
                ("sorting", self.sorting.summary()),
                ("racing", self.racing.summary()))

    def describe(self) -> str:
        return " | ".join(f"{name}: {summary}"
                          for name, summary in self.stage_summaries())


def coerce_stack(policy: Union[HEParams, PolicyStack]) -> PolicyStack:
    """A PolicyStack from either form (the engine's input contract)."""
    if isinstance(policy, PolicyStack):
        return policy
    return PolicyStack.from_heparams(policy)
