"""Happy Eyeballs configurable values (Table 1).

Every knob the three HE versions define is a field of
:class:`HEParams`; the module-level presets are the RFC-recommended
parameter sets the paper compares implementations against:

=====================  ============  ============  ===================
Parameter              HEv1 (2012)   HEv2 (2017)   HEv3 (draft, 2025)
=====================  ============  ============  ===================
Considered protocols   IPv4, IPv6    + DNS         + QUIC
DNS records            —             AAAA, A       + SVCB, HTTPS
Resolution delay       —             50 ms         50 ms
Address selection      v6 then v4    interlaced    + L4 protocol
Fixed CAD              150–250 ms    250 ms        250 ms
Dynamic CAD min/rec/max  —           10/100/2000 ms same
=====================  ============  ============  ===================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..simnet.addr import Family


class HEVersion(enum.Enum):
    """The standardized / drafted Happy Eyeballs generations."""

    V1 = "RFC 6555 (2012)"
    V2 = "RFC 8305 (2017)"
    V3 = "draft-ietf-happy-happyeyeballs-v3 (2025)"

    @property
    def short(self) -> str:
        return {"V1": "HEv1", "V2": "HEv2", "V3": "HEv3"}[self.name]


class ResolutionPolicy(enum.Enum):
    """How a client turns DNS answers into "start connecting now".

    * ``HE_V2`` — the RFC 8305 §3 Resolution Delay state machine.
    * ``WAIT_BOTH`` — wait for *both* the AAAA and the A answer (or the
      resolver's timeout) before any connection attempt.  This is what
      Chromium, Firefox, curl, and wget actually do (§5.2) and the root
      of the delayed-A pathology.
    * ``FIRST_USABLE`` — connect as soon as any answer with addresses
      arrives (no delay logic at all).
    """

    HE_V2 = "hev2-resolution-delay"
    WAIT_BOTH = "wait-both-answers"
    FIRST_USABLE = "first-usable-answer"


class InterlaceStrategy(enum.Enum):
    """How the ordered dual-stack address list is interleaved.

    * ``RFC8305`` — strict alternation after the First Address Family
      Count prefix (RFC 8305 §4).
    * ``FIRST_FAMILY_BURST`` — Safari's observed pattern (App. D): two
      IPv6, one IPv4, then all remaining IPv6, then remaining IPv4.
    * ``SEQUENTIAL`` — no interlacing: all preferred-family addresses,
      then the other family (HEv1's "IPv6 once, then IPv4").
    """

    RFC8305 = "rfc8305"
    FIRST_FAMILY_BURST = "first-family-burst"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class HEParams:
    """All configurable values of a Happy Eyeballs implementation.

    Times are in seconds.  ``resolution_delay=None`` means the client
    implements no RD at all (most clients in Table 2).
    """

    version: HEVersion = HEVersion.V2
    connection_attempt_delay: float = 0.250
    dynamic_cad: bool = False
    minimum_cad: float = 0.010
    recommended_cad: float = 0.100
    maximum_cad: float = 2.0
    resolution_delay: Optional[float] = 0.050
    first_address_family_count: int = 1
    preferred_family: Family = Family.V6
    interlace: InterlaceStrategy = InterlaceStrategy.RFC8305
    resolution_policy: ResolutionPolicy = ResolutionPolicy.HE_V2
    outcome_cache_ttl: float = 600.0  # "on the order of 10 minutes"
    race_quic: bool = False  # HEv3: race QUIC alongside TCP
    use_svcb: bool = False   # HEv3: consume SVCB/HTTPS records
    max_attempts_per_family: Optional[int] = None  # None = all addresses

    def __post_init__(self) -> None:
        if self.connection_attempt_delay <= 0:
            raise ValueError(
                f"CAD must be positive: {self.connection_attempt_delay}")
        if not (0 < self.minimum_cad <= self.recommended_cad
                <= self.maximum_cad):
            raise ValueError(
                "dynamic CAD bounds must satisfy 0 < min <= rec <= max")
        if self.resolution_delay is not None and self.resolution_delay < 0:
            raise ValueError(
                f"negative resolution delay: {self.resolution_delay}")
        if self.first_address_family_count < 1:
            raise ValueError("first_address_family_count must be >= 1")
        if (self.max_attempts_per_family is not None
                and self.max_attempts_per_family < 1):
            raise ValueError("max_attempts_per_family must be >= 1")

    def clamp_dynamic_cad(self, proposed: float) -> float:
        """Clamp a history-derived CAD into the RFC's min/max bounds."""
        return max(self.minimum_cad, min(self.maximum_cad, proposed))

    def with_overrides(self, **changes) -> "HEParams":
        return replace(self, **changes)


def rfc6555_params() -> HEParams:
    """HEv1 as recommended: 150–250 ms fixed CAD, no DNS handling.

    The RFC gives a range; 250 ms (its upper recommendation, kept by
    HEv2) is used as the fixed value.
    """
    return HEParams(
        version=HEVersion.V1,
        connection_attempt_delay=0.250,
        resolution_delay=None,
        interlace=InterlaceStrategy.SEQUENTIAL,
        resolution_policy=ResolutionPolicy.WAIT_BOTH,
        max_attempts_per_family=1,
    )


def rfc8305_params() -> HEParams:
    """HEv2 as recommended: 250 ms CAD, 50 ms RD, interlacing, FAFC 1."""
    return HEParams(
        version=HEVersion.V2,
        connection_attempt_delay=0.250,
        resolution_delay=0.050,
        first_address_family_count=1,
        interlace=InterlaceStrategy.RFC8305,
        resolution_policy=ResolutionPolicy.HE_V2,
    )


def hev3_draft_params() -> HEParams:
    """HEv3 draft: HEv2 values plus SVCB processing and QUIC racing."""
    return HEParams(
        version=HEVersion.V3,
        connection_attempt_delay=0.250,
        resolution_delay=0.050,
        first_address_family_count=1,
        interlace=InterlaceStrategy.RFC8305,
        resolution_policy=ResolutionPolicy.HE_V2,
        race_quic=True,
        use_svcb=True,
    )


#: The three parameter sets of Table 1, keyed by version.
RFC_PARAMETER_SETS: Tuple[HEParams, ...] = (
    rfc6555_params(), rfc8305_params(), hev3_draft_params())
