"""Happy Eyeballs core: RFC 6555 / RFC 8305 / draft-HEv3 algorithms.

The paper's subject matter.  :class:`HappyEyeballsEngine` composes the
phase implementations — resolution-delay state machine, address
sorting + interlacing, staggered connection racing, outcome caching,
SVCB-driven protocol selection — into a configurable client, and every
client model in :mod:`repro.clients` is a parameterization of it.
"""

from .cache import CachedOutcome, OutcomeCache
from .engine import HEResult, HappyEyeballsEngine, HappyEyeballsError
from .events import HEEvent, HEEventKind, HETrace
from .interlace import (apply_interlace, interlace_first_family_burst,
                        interlace_rfc8305, interlace_sequential)
from .params import (HEParams, HEVersion, InterlaceStrategy,
                     RFC_PARAMETER_SETS, ResolutionPolicy, hev3_draft_params,
                     rfc6555_params, rfc8305_params)
from .policy import (PolicyStack, RacingStage, ResolutionStage,
                     SortingStage, coerce_stack)
from .racing import (AllAttemptsFailed, AttemptOutcome, AttemptRecord,
                     ConnectionRacer, NEVER_CAD, RaceDeadlineExceeded,
                     RaceResult)
from .resolution import ResolutionOutcome, resolve_addresses
from .sortlist import (AddressHistory, HistoryStore, POLICY_TABLES,
                       PolicyEntry, PolicyTable, common_prefix_len,
                       order_addresses, policy_table, scope_of,
                       select_source)
from .svcb import (ServiceCandidate, candidates_from_addresses,
                   candidates_from_svcb, order_candidates)

__all__ = [
    "AddressHistory", "AllAttemptsFailed", "AttemptOutcome", "AttemptRecord",
    "CachedOutcome", "ConnectionRacer", "HEEvent", "HEEventKind", "HEParams",
    "HEResult", "HETrace", "HEVersion", "HappyEyeballsEngine",
    "HappyEyeballsError", "HistoryStore", "InterlaceStrategy", "NEVER_CAD",
    "OutcomeCache", "POLICY_TABLES", "PolicyEntry", "PolicyStack",
    "PolicyTable", "RFC_PARAMETER_SETS", "RaceDeadlineExceeded",
    "RaceResult", "RacingStage", "ResolutionOutcome", "ResolutionPolicy",
    "ResolutionStage", "ServiceCandidate", "SortingStage",
    "apply_interlace", "candidates_from_addresses", "candidates_from_svcb",
    "coerce_stack", "common_prefix_len", "hev3_draft_params",
    "interlace_first_family_burst", "interlace_rfc8305",
    "interlace_sequential", "order_addresses", "order_candidates",
    "policy_table", "resolve_addresses", "rfc6555_params", "rfc8305_params",
    "scope_of", "select_source",
]
