"""Happy Eyeballs core: RFC 6555 / RFC 8305 / draft-HEv3 algorithms.

The paper's subject matter.  :class:`HappyEyeballsEngine` composes the
phase implementations — resolution-delay state machine, address
sorting + interlacing, staggered connection racing, outcome caching,
SVCB-driven protocol selection — into a configurable client, and every
client model in :mod:`repro.clients` is a parameterization of it.
"""

from .cache import CachedOutcome, OutcomeCache
from .engine import HEResult, HappyEyeballsEngine, HappyEyeballsError
from .events import HEEvent, HEEventKind, HETrace
from .interlace import (apply_interlace, interlace_first_family_burst,
                        interlace_rfc8305, interlace_sequential)
from .params import (HEParams, HEVersion, InterlaceStrategy,
                     RFC_PARAMETER_SETS, ResolutionPolicy, hev3_draft_params,
                     rfc6555_params, rfc8305_params)
from .racing import (AllAttemptsFailed, AttemptOutcome, AttemptRecord,
                     ConnectionRacer, NEVER_CAD, RaceDeadlineExceeded,
                     RaceResult)
from .resolution import ResolutionOutcome, resolve_addresses
from .sortlist import AddressHistory, HistoryStore, order_addresses
from .svcb import (ServiceCandidate, candidates_from_addresses,
                   candidates_from_svcb, order_candidates)

__all__ = [
    "AddressHistory", "AllAttemptsFailed", "AttemptOutcome", "AttemptRecord",
    "CachedOutcome", "ConnectionRacer", "HEEvent", "HEEventKind", "HEParams",
    "HEResult", "HETrace", "HEVersion", "HappyEyeballsEngine",
    "HappyEyeballsError", "HistoryStore", "InterlaceStrategy", "NEVER_CAD",
    "OutcomeCache", "RFC_PARAMETER_SETS", "RaceDeadlineExceeded",
    "RaceResult", "ResolutionOutcome", "ResolutionPolicy",
    "ServiceCandidate", "apply_interlace", "candidates_from_addresses",
    "candidates_from_svcb", "hev3_draft_params",
    "interlace_first_family_burst", "interlace_rfc8305",
    "interlace_sequential", "order_addresses", "order_candidates",
    "resolve_addresses", "rfc6555_params", "rfc8305_params",
]
