"""The HEv2/HEv3 resolution phase (RFC 8305 §3).

Turns the pair of asynchronously arriving AAAA/A answers into the
moment the client starts connecting, under one of three policies:

* the RFC's Resolution Delay state machine — start immediately when
  AAAA arrives first; if A arrives first, give AAAA a 50 ms grace
  period before going v4-only;
* ``WAIT_BOTH`` — what Chromium/Firefox/curl/wget actually do: no own
  timer at all, wait for both answers (i.e. inherit the resolver's
  timeout), the behaviour behind the §5.2 pathology;
* ``FIRST_USABLE`` — connect on the first answer that has addresses.

The phase is a generator meant to be driven inside an engine process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..simnet.addr import IPAddress
from ..simnet.scheduler import Simulator
from ..dns.rdata import RdataType
from ..dns.stub import DualLookup, StubAnswer
from .events import HEEventKind, HETrace
from .params import HEParams, ResolutionPolicy


@dataclass
class ResolutionOutcome:
    """What the resolution phase hands to the connection phase."""

    go_at: float
    trigger: str
    addresses: List[IPAddress] = field(default_factory=list)
    aaaa: Optional[StubAnswer] = None
    a: Optional[StubAnswer] = None
    dual: Optional[DualLookup] = None

    @property
    def has_addresses(self) -> bool:
        return bool(self.addresses)

    def usable_answers(self) -> List[StubAnswer]:
        return [answer for answer in (self.aaaa, self.a)
                if answer is not None and answer.usable]


def _collect(*answers: Optional[StubAnswer]) -> List[IPAddress]:
    """Addresses of all usable answers, AAAA contributions first."""
    out: List[IPAddress] = []
    for answer in answers:
        if answer is not None and answer.usable:
            out.extend(answer.addresses)
    return out


def resolve_addresses(sim: Simulator, dual: DualLookup, params: HEParams,
                      trace: Optional[HETrace] = None):
    """Generator driving the resolution phase; returns ResolutionOutcome.

    Must be iterated inside a simulator process (``yield from``).
    """
    policy = params.resolution_policy
    if policy is ResolutionPolicy.WAIT_BOTH:
        return (yield from _wait_both(sim, dual, trace))
    if policy is ResolutionPolicy.FIRST_USABLE:
        return (yield from _first_usable(sim, dual, trace))
    return (yield from _hev2_machine(sim, dual, params, trace))


def _record(trace: Optional[HETrace], sim: Simulator, kind: HEEventKind,
            **detail) -> None:
    if trace is not None:
        trace.record(sim.now, kind, **detail)


def _answer_detail(answer: StubAnswer) -> dict:
    return {
        "rtype": answer.rtype.name,
        "addresses": len(answer.addresses),
        "ok": answer.usable,
    }


def _wait_both(sim: Simulator, dual: DualLookup,
               trace: Optional[HETrace]):
    """Wait for both answers (or their inherited timeouts)."""
    first = yield sim.any_of([dual.aaaa, dual.a])
    for event in (dual.aaaa, dual.a):
        if event in first:
            _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                    **_answer_detail(event.value))
    remaining = [event for event in (dual.aaaa, dual.a)
                 if not event.triggered]
    for event in remaining:
        answer = yield event
        _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                **_answer_detail(answer))
    aaaa, a = dual.aaaa.value, dual.a.value
    return ResolutionOutcome(
        go_at=sim.now, trigger="both-answers",
        addresses=_collect(aaaa, a), aaaa=aaaa, a=a, dual=dual)


def _first_usable(sim: Simulator, dual: DualLookup,
                  trace: Optional[HETrace]):
    """Connect on the first answer carrying addresses."""
    pending = [dual.aaaa, dual.a]
    aaaa: Optional[StubAnswer] = None
    a: Optional[StubAnswer] = None
    while pending:
        yield sim.any_of([event for event in pending
                          if not event.triggered] or pending)
        for event in list(pending):
            if event.triggered:
                pending.remove(event)
                answer = event.value
                _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                        **_answer_detail(answer))
                if answer.rtype is RdataType.AAAA:
                    aaaa = answer
                else:
                    a = answer
                if answer.usable:
                    return ResolutionOutcome(
                        go_at=sim.now,
                        trigger=f"first-usable-{answer.rtype.name.lower()}",
                        addresses=list(answer.addresses),
                        aaaa=aaaa, a=a, dual=dual)
    return ResolutionOutcome(go_at=sim.now, trigger="no-usable-answer",
                             aaaa=aaaa, a=a, dual=dual)


def _hev2_machine(sim: Simulator, dual: DualLookup, params: HEParams,
                  trace: Optional[HETrace]):
    """RFC 8305 §3 Resolution Delay state machine."""
    rd = params.resolution_delay if params.resolution_delay is not None \
        else 0.050

    first = yield sim.any_of([dual.aaaa, dual.a])
    aaaa_arrived = dual.aaaa in first or dual.aaaa.triggered
    if aaaa_arrived:
        aaaa = dual.aaaa.value
        _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                **_answer_detail(aaaa))
        a = dual.a.value if dual.a.triggered else None
        if a is not None:
            _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                    **_answer_detail(a))
        if aaaa.usable:
            # AAAA first (or tied): start connecting immediately.
            return ResolutionOutcome(
                go_at=sim.now, trigger="aaaa-first",
                addresses=_collect(aaaa, a), aaaa=aaaa, a=a, dual=dual)
        # AAAA arrived but unusable: fall through to waiting for A.
        if a is None:
            a = yield dual.a
            _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                    **_answer_detail(a))
        return ResolutionOutcome(
            go_at=sim.now, trigger="aaaa-unusable",
            addresses=_collect(a), aaaa=aaaa, a=a, dual=dual)

    # A arrived first.
    a = dual.a.value
    _record(trace, sim, HEEventKind.ANSWER_RECEIVED, **_answer_detail(a))
    if not a.usable:
        # Nothing to fall back on yet; only AAAA can save this lookup.
        aaaa = yield dual.aaaa
        _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                **_answer_detail(aaaa))
        return ResolutionOutcome(
            go_at=sim.now, trigger="a-unusable",
            addresses=_collect(aaaa), aaaa=aaaa, a=a, dual=dual)

    _record(trace, sim, HEEventKind.RESOLUTION_DELAY_STARTED,
            delay_ms=rd * 1000.0)
    grace = sim.timeout(rd)
    raced = yield sim.any_of([dual.aaaa, grace])
    if dual.aaaa in raced or dual.aaaa.triggered:
        aaaa = dual.aaaa.value
        _record(trace, sim, HEEventKind.RESOLUTION_DELAY_CANCELLED)
        _record(trace, sim, HEEventKind.ANSWER_RECEIVED,
                **_answer_detail(aaaa))
        return ResolutionOutcome(
            go_at=sim.now, trigger="aaaa-within-rd",
            addresses=_collect(aaaa, a), aaaa=aaaa, a=a, dual=dual)
    _record(trace, sim, HEEventKind.RESOLUTION_DELAY_EXPIRED)
    return ResolutionOutcome(
        go_at=sim.now, trigger="rd-expired",
        addresses=_collect(a), aaaa=None, a=a, dual=dual)
