"""The Happy Eyeballs engine: a thin driver over a PolicyStack.

:class:`HappyEyeballsEngine` walks the stages exactly as Figure 1
depicts and RFC 8305 phrases them: the **resolution** stage issues the
AAAA/A (and, for HEv3, HTTPS) queries and decides when connecting
starts; the **sorting** stage orders and interlaces the destinations
(family preference or an explicit RFC 6724 sortlist); the **racing**
stage builds the raceable candidates (per-family caps, QUIC-vs-TCP
expansion) and staggers attempts one CAD apart.  The engine itself
only carries the host plumbing — caches, tracing, late-answer feeds —
while every behavioural decision lives in the
:class:`~repro.core.policy.PolicyStack` stages.

Engines accept either a stack or a legacy
:class:`~repro.core.params.HEParams` bag (coerced via
:func:`~repro.core.policy.coerce_stack`); every observable the paper
measures — query order, RD behaviour, attempt schedule, winner — comes
out in the :class:`~repro.core.events.HETrace` and the
:class:`HEResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..simnet.addr import Family, address_str
from ..simnet.host import Host
from ..simnet.process import Process
from ..dns.rdata import RdataType
from ..dns.stub import StubResolver
from .cache import OutcomeCache
from .events import HEEventKind, HETrace
from .params import HEParams
from .policy import PolicyStack, coerce_stack
from .racing import AttemptRecord, ConnectionRacer, RaceResult
from .resolution import ResolutionOutcome
from .sortlist import HistoryStore
from .svcb import candidates_from_addresses


class HappyEyeballsError(Exception):
    """Engine-level failure (no addresses, all attempts failed)."""

    def __init__(self, message: str, result: "HEResult") -> None:
        super().__init__(message)
        self.result = result


@dataclass
class HEResult:
    """Everything observable about one ``connect()`` call."""

    hostname: str
    port: int
    started_at: float
    finished_at: Optional[float] = None
    connection: Optional[object] = None
    resolution: Optional[ResolutionOutcome] = None
    race: Optional[RaceResult] = None
    trace: HETrace = field(default_factory=HETrace)
    error: Optional[str] = None

    @property
    def success(self) -> bool:
        return self.connection is not None

    @property
    def winning_family(self) -> Optional[Family]:
        if self.race is None:
            return None
        return self.race.winning_family

    @property
    def time_to_connect(self) -> Optional[float]:
        if self.finished_at is None or not self.success:
            return None
        return self.finished_at - self.started_at

    @property
    def attempts(self) -> List[AttemptRecord]:
        return self.race.attempts if self.race is not None else []


class HappyEyeballsEngine:
    """A configurable Happy Eyeballs implementation on one host."""

    def __init__(self, host: Host, stub: StubResolver,
                 params: Union[HEParams, PolicyStack],
                 cache: Optional[OutcomeCache] = None,
                 history: Optional[HistoryStore] = None,
                 query_first: RdataType = RdataType.AAAA,
                 attempt_timeout: Optional[float] = None,
                 overall_deadline: Optional[float] = None) -> None:
        self.host = host
        self.stub = stub
        self.stack = coerce_stack(params)
        self.cache = cache if cache is not None else OutcomeCache(
            ttl=self.stack.racing.outcome_cache_ttl)
        self.history = history
        self.query_first = query_first
        self.attempt_timeout = attempt_timeout
        self.overall_deadline = overall_deadline

    @property
    def params(self) -> HEParams:
        """The legacy flat-parameter view of the engine's stack."""
        return self.stack.params()

    @params.setter
    def params(self, value: Union[HEParams, PolicyStack]) -> None:
        self.stack = coerce_stack(value)

    # -- public API ---------------------------------------------------------

    def connect(self, hostname: str, port: int = 80,
                trace: Optional[HETrace] = None) -> Process:
        """Spawn the connection process; its value is an :class:`HEResult`.

        The process raises :class:`HappyEyeballsError` (carrying the
        partial result) when no connection could be established.
        """
        # Note: `trace or HETrace()` would be wrong — an empty HETrace
        # is falsy (len 0) and the caller's trace would be dropped.
        return self.host.sim.process(
            self._connect_body(hostname, port,
                               trace if trace is not None else HETrace()),
            name=f"he-connect:{hostname}")

    # -- the stage driver ----------------------------------------------------

    def _connect_body(self, hostname: str, port: int, trace: HETrace):
        sim = self.host.sim
        stack = self.stack
        result = HEResult(hostname=hostname, port=port, started_at=sim.now,
                          trace=trace)
        trace.record(sim.now, HEEventKind.CONNECT_REQUESTED,
                     hostname=hostname, port=port,
                     version=stack.version.short)

        biased_family: Optional[Family] = None
        cached = self.cache.lookup(hostname, sim.now)
        if cached is not None:
            # RFC 6555 §4.1: bias toward the family that last won.
            biased_family = cached.family
            trace.record(sim.now, HEEventKind.CACHE_HIT,
                         address=address_str(cached.address),
                         family=cached.family.label)

        # -- resolution stage -------------------------------------------------
        dual = self.stub.lookup_dual(hostname, first=self.query_first)
        trace.record(sim.now, HEEventKind.QUERY_SENT,
                     first=self.query_first.name,
                     order="AAAA,A" if self.query_first is RdataType.AAAA
                     else "A,AAAA")
        https_process = stack.resolution.query_https(self.stub, hostname)

        resolution = yield from stack.resolution.resolve(sim, dual, trace)
        result.resolution = resolution
        if not resolution.has_addresses:
            result.finished_at = sim.now
            result.error = "no usable addresses"
            trace.record(sim.now, HEEventKind.CONNECT_FAILED,
                         reason=result.error)
            raise HappyEyeballsError(
                f"resolution of {hostname!r} yielded no addresses", result)
        svcb_records = stack.resolution.harvest_svcb(https_process)

        # -- sorting stage ----------------------------------------------------
        ordered = stack.sorting.select(resolution.addresses,
                                       history=self.history, now=sim.now,
                                       biased_family=biased_family)

        # -- racing stage -----------------------------------------------------
        candidates = stack.racing.build_candidates(
            ordered, svcb_records, port, stack.sorting,
            use_svcb=stack.resolution.use_svcb)
        trace.record(sim.now, HEEventKind.ADDRESSES_SELECTED,
                     count=len(candidates),
                     order=",".join(c.family.label[3] + ":" + address_str(c.address)
                                    for c in candidates[:12]))
        racer = stack.racing.racer(self.host, trace=trace,
                                   history=self.history,
                                   attempt_timeout=self.attempt_timeout)
        self._arm_late_answers(racer, resolution, port, biased_family, trace)
        try:
            race = yield from racer.run(candidates,
                                        deadline=self.overall_deadline)
        except Exception as exc:  # noqa: BLE001 - attach partial result
            result.race = getattr(exc, "race_result", None)
            result.finished_at = sim.now
            result.error = str(exc)
            raise HappyEyeballsError(
                f"connection to {hostname!r} failed: {exc}", result) from exc

        result.race = race
        result.connection = race.winner
        result.finished_at = sim.now
        if race.winning_attempt is not None:
            self.cache.record(hostname,
                              race.winning_attempt.candidate.address,
                              sim.now)
        return result

    # -- late answers ------------------------------------------------------------------

    def _arm_late_answers(self, racer: ConnectionRacer,
                          resolution: ResolutionOutcome, port: int,
                          biased_family: Optional[Family],
                          trace: HETrace) -> None:
        """Feed addresses that arrive mid-race into the racer.

        RFC 8305 §3: when the RD expires and connecting starts with IPv4
        only, a later AAAA answer still joins the race.
        """
        dual = resolution.dual
        if dual is None:
            return
        known = set(resolution.addresses)
        sim = self.host.sim
        stack = self.stack
        preferred = (biased_family if biased_family is not None
                     else stack.sorting.preferred_family)

        def feed(event):
            def watcher():
                answer = yield event
                fresh = [addr for addr in answer.addresses
                         if addr not in known]
                if not answer.usable or not fresh:
                    return
                known.update(fresh)
                ordered = stack.sorting.interleave_late(fresh, preferred)
                ordered = stack.racing.cap_per_family(ordered)
                if not ordered:
                    return
                trace.record(sim.now, HEEventKind.LATE_ADDRESSES_ADDED,
                             rtype=answer.rtype.name, count=len(ordered))
                racer.add_candidates(
                    candidates_from_addresses(ordered, port))
            sim.process(watcher(), name="late-answers")

        for event in (dual.aaaa, dual.a):
            if not event.triggered:
                feed(event)
