"""The Happy Eyeballs engine: resolution → selection → racing.

:class:`HappyEyeballsEngine` glues the phase implementations together
exactly as Figure 1 depicts: issue the AAAA/A (and, for HEv3, HTTPS)
queries, run the resolution policy, order and interlace the addresses,
then race connection attempts one CAD apart.  Every observable the
paper measures — query order, RD behaviour, attempt schedule, winner —
comes out in the :class:`~repro.core.events.HETrace` and the
:class:`HEResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..simnet.addr import Family, IPAddress
from ..simnet.host import Host
from ..simnet.packet import Protocol
from ..simnet.process import Process
from ..dns.rdata import RdataType, SVCB
from ..dns.stub import DualLookup, StubResolver
from .cache import OutcomeCache
from .events import HEEventKind, HETrace
from .interlace import apply_interlace
from .params import HEParams, ResolutionPolicy
from .racing import (AllAttemptsFailed, AttemptRecord, ConnectionRacer,
                     NEVER_CAD, RaceResult)
from .resolution import ResolutionOutcome, resolve_addresses
from .sortlist import HistoryStore, order_addresses
from .svcb import (ServiceCandidate, candidates_from_addresses,
                   candidates_from_svcb, order_candidates)

class HappyEyeballsError(Exception):
    """Engine-level failure (no addresses, all attempts failed)."""

    def __init__(self, message: str, result: "HEResult") -> None:
        super().__init__(message)
        self.result = result


@dataclass
class HEResult:
    """Everything observable about one ``connect()`` call."""

    hostname: str
    port: int
    started_at: float
    finished_at: Optional[float] = None
    connection: Optional[object] = None
    resolution: Optional[ResolutionOutcome] = None
    race: Optional[RaceResult] = None
    trace: HETrace = field(default_factory=HETrace)
    error: Optional[str] = None

    @property
    def success(self) -> bool:
        return self.connection is not None

    @property
    def winning_family(self) -> Optional[Family]:
        if self.race is None:
            return None
        return self.race.winning_family

    @property
    def time_to_connect(self) -> Optional[float]:
        if self.finished_at is None or not self.success:
            return None
        return self.finished_at - self.started_at

    @property
    def attempts(self) -> List[AttemptRecord]:
        return self.race.attempts if self.race is not None else []


class HappyEyeballsEngine:
    """A configurable Happy Eyeballs implementation on one host."""

    def __init__(self, host: Host, stub: StubResolver, params: HEParams,
                 cache: Optional[OutcomeCache] = None,
                 history: Optional[HistoryStore] = None,
                 query_first: RdataType = RdataType.AAAA,
                 attempt_timeout: Optional[float] = None,
                 overall_deadline: Optional[float] = None) -> None:
        self.host = host
        self.stub = stub
        self.params = params
        self.cache = cache if cache is not None else OutcomeCache(
            ttl=params.outcome_cache_ttl)
        self.history = history
        self.query_first = query_first
        self.attempt_timeout = attempt_timeout
        self.overall_deadline = overall_deadline

    # -- public API ---------------------------------------------------------

    def connect(self, hostname: str, port: int = 80,
                trace: Optional[HETrace] = None) -> Process:
        """Spawn the connection process; its value is an :class:`HEResult`.

        The process raises :class:`HappyEyeballsError` (carrying the
        partial result) when no connection could be established.
        """
        # Note: `trace or HETrace()` would be wrong — an empty HETrace
        # is falsy (len 0) and the caller's trace would be dropped.
        return self.host.sim.process(
            self._connect_body(hostname, port,
                               trace if trace is not None else HETrace()),
            name=f"he-connect:{hostname}")

    # -- the run -------------------------------------------------------------

    def _connect_body(self, hostname: str, port: int, trace: HETrace):
        sim = self.host.sim
        params = self.params
        result = HEResult(hostname=hostname, port=port, started_at=sim.now,
                          trace=trace)
        trace.record(sim.now, HEEventKind.CONNECT_REQUESTED,
                     hostname=hostname, port=port,
                     version=params.version.short)

        preferred = params.preferred_family
        cached = self.cache.lookup(hostname, sim.now)
        if cached is not None:
            # RFC 6555 §4.1: bias toward the family that last won.
            preferred = cached.family
            trace.record(sim.now, HEEventKind.CACHE_HIT,
                         address=str(cached.address),
                         family=cached.family.label)

        # -- resolution phase ------------------------------------------------
        dual = self.stub.lookup_dual(hostname, first=self.query_first)
        trace.record(sim.now, HEEventKind.QUERY_SENT,
                     first=self.query_first.name,
                     order="AAAA,A" if self.query_first is RdataType.AAAA
                     else "A,AAAA")
        https_process = None
        if params.use_svcb:
            https_process = self.stub.query(hostname, RdataType.HTTPS)

        resolution = yield from resolve_addresses(sim, dual, params, trace)
        result.resolution = resolution
        if not resolution.has_addresses:
            result.finished_at = sim.now
            result.error = "no usable addresses"
            trace.record(sim.now, HEEventKind.CONNECT_FAILED,
                         reason=result.error)
            raise HappyEyeballsError(
                f"resolution of {hostname!r} yielded no addresses", result)

        # -- selection phase ---------------------------------------------------
        svcb_records: List[SVCB] = []
        if https_process is not None and https_process.triggered:
            try:
                https_response = https_process.value
            except Exception:  # noqa: BLE001 - HTTPS lookup is best-effort
                https_response = None
            if https_response is not None:
                svcb_records = [
                    rr.rdata for rr in https_response.answers
                    if rr.rtype in (RdataType.HTTPS, RdataType.SVCB)]
        candidates = self._build_candidates(
            resolution.addresses, svcb_records, port, preferred)
        trace.record(sim.now, HEEventKind.ADDRESSES_SELECTED,
                     count=len(candidates),
                     order=",".join(c.family.label[3] + ":" + str(c.address)
                                    for c in candidates[:12]))

        # -- racing phase -----------------------------------------------------------
        racer = ConnectionRacer(self.host, params, trace=trace,
                                history=self.history,
                                attempt_timeout=self.attempt_timeout)
        self._arm_late_answers(racer, resolution, port, preferred, trace)
        try:
            race = yield from racer.run(candidates,
                                        deadline=self.overall_deadline)
        except Exception as exc:  # noqa: BLE001 - attach partial result
            result.race = getattr(exc, "race_result", None)
            result.finished_at = sim.now
            result.error = str(exc)
            raise HappyEyeballsError(
                f"connection to {hostname!r} failed: {exc}", result) from exc

        result.race = race
        result.connection = race.winner
        result.finished_at = sim.now
        if race.winning_attempt is not None:
            self.cache.record(hostname,
                              race.winning_attempt.candidate.address,
                              sim.now)
        return result

    # -- candidate construction -----------------------------------------------------

    def _build_candidates(self, addresses: Sequence[IPAddress],
                          svcb_records: Sequence[SVCB], port: int,
                          preferred: Family) -> List[ServiceCandidate]:
        params = self.params
        ordered = order_addresses(addresses, preferred_family=preferred,
                                  history=self.history, now=self.host.sim.now)
        ordered = apply_interlace(
            ordered, params.interlace, preferred=preferred,
            first_count=params.first_address_family_count)
        ordered = self._cap_per_family(ordered)

        if params.use_svcb and svcb_records:
            candidates = candidates_from_svcb(svcb_records, ordered, port)
            if params.race_quic:
                return order_candidates(candidates, params)
            candidates = [c for c in candidates
                          if c.protocol is Protocol.TCP]
            return order_candidates(candidates, params)
        return candidates_from_addresses(ordered, port)

    def _cap_per_family(self, ordered: Sequence[IPAddress]
                        ) -> List[IPAddress]:
        cap = self.params.max_attempts_per_family
        if cap is None:
            return list(ordered)
        kept: List[IPAddress] = []
        counts = {Family.V4: 0, Family.V6: 0}
        for address in ordered:
            family = Family.V6 if address.version == 6 else Family.V4
            if counts[family] < cap:
                counts[family] += 1
                kept.append(address)
        return kept

    # -- late answers ------------------------------------------------------------------

    def _arm_late_answers(self, racer: ConnectionRacer,
                          resolution: ResolutionOutcome, port: int,
                          preferred: Family, trace: HETrace) -> None:
        """Feed addresses that arrive mid-race into the racer.

        RFC 8305 §3: when the RD expires and connecting starts with IPv4
        only, a later AAAA answer still joins the race.
        """
        dual = resolution.dual
        if dual is None:
            return
        known = set(resolution.addresses)
        sim = self.host.sim

        def feed(event):
            def watcher():
                answer = yield event
                fresh = [addr for addr in answer.addresses
                         if addr not in known]
                if not answer.usable or not fresh:
                    return
                known.update(fresh)
                ordered = apply_interlace(
                    fresh, self.params.interlace, preferred=preferred,
                    first_count=self.params.first_address_family_count)
                ordered = self._cap_per_family(ordered)
                if not ordered:
                    return
                trace.record(sim.now, HEEventKind.LATE_ADDRESSES_ADDED,
                             rtype=answer.rtype.name, count=len(ordered))
                racer.add_candidates(
                    candidates_from_addresses(ordered, port))
            sim.process(watcher(), name="late-answers")

        for event in (dual.aaaa, dual.a):
            if not event.triggered:
                feed(event)
