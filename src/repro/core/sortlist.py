"""Destination address ordering, RFC 6724 sortlists, connection history.

RFC 8305 §4 orders resolved addresses with the host's address selection
policy (RFC 6724) and allows clients to fold in "knowledge about
historical TCP round-trip times and previously used addresses"; this
module provides all three pieces:

* :class:`HistoryStore` — per-destination smoothed RTTs and last-used
  addresses with expiry (also feeds dynamic CAD, Safari-style),
* :func:`order_addresses` — family preference + history-aware ordering
  that keeps DNS order as the tiebreaker, optionally driven by an
  explicit RFC 6724 :class:`PolicyTable`,
* the per-OS policy tables themselves (:data:`POLICY_TABLES`) with
  scope comparison (:func:`scope_of`) and source selection
  (:func:`select_source`) — the machinery the ``SortingStage`` of a
  :class:`~repro.core.policy.PolicyStack` declares by name.

Documented per-table orderings (asserted by the regression tests) for
destinations answered in the order ULA, site-local, Teredo, 6to4,
global v6, IPv4 — equal precedences keep that answer order:

===========  ========================================================
Table        Ordering (first attempted → last)
===========  ========================================================
rfc6724      global v6 · v4 · 6to4 · Teredo · ULA · site-local
linux        global v6 · v4 · 6to4 · Teredo · ULA · site-local
windows      global v6 · v4 · 6to4 · Teredo · ULA · site-local
macos        global v6 · v4 · ULA · 6to4 · Teredo · site-local
rfc3484      ULA · site-local · Teredo · global v6 · 6to4 · v4
===========  ========================================================

RFC 3484's table has no ULA/site-local/Teredo entries, so they match
``::/0`` (precedence 40) and sort *above* IPv4 (whose mapped prefix
has precedence 10 there) — the classic pre-RFC 6724 behaviour the
sortlist scenario battery discriminates.  macOS demotes the
transitional 6to4/Teredo prefixes below native space ("avoid
transition technologies when native works").
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..simnet.addr import Family, IPAddress, family_of, parse_address

SRTT_SMOOTHING = 0.25  # weight of a fresh sample, TCP-style


@dataclass
class AddressHistory:
    """What a client remembers about one destination address."""

    srtt: Optional[float] = None
    successes: int = 0
    failures: int = 0
    last_outcome_at: float = 0.0

    def record_success(self, rtt: float, now: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
        else:
            self.srtt = ((1 - SRTT_SMOOTHING) * self.srtt
                         + SRTT_SMOOTHING * rtt)
        self.successes += 1
        self.last_outcome_at = now

    def record_failure(self, now: float) -> None:
        self.failures += 1
        self.last_outcome_at = now


class HistoryStore:
    """RTT and outcome history across destinations.

    ``max_age`` bounds how long an entry influences decisions; stale
    entries are treated as absent (the paper's clients reset state per
    test run, so tests exercise both fresh and expired paths).
    """

    def __init__(self, max_age: float = 600.0) -> None:
        self.max_age = max_age
        self._entries: Dict[IPAddress, AddressHistory] = {}

    def record_success(self, address: Union[str, IPAddress], rtt: float,
                       now: float) -> None:
        entry = self._entries.setdefault(parse_address(address),
                                         AddressHistory())
        entry.record_success(rtt, now)

    def record_failure(self, address: Union[str, IPAddress],
                       now: float) -> None:
        entry = self._entries.setdefault(parse_address(address),
                                         AddressHistory())
        entry.record_failure(now)

    def lookup(self, address: Union[str, IPAddress],
               now: float) -> Optional[AddressHistory]:
        entry = self._entries.get(parse_address(address))
        if entry is None:
            return None
        if now - entry.last_outcome_at > self.max_age:
            return None
        return entry

    def srtt(self, address: Union[str, IPAddress],
             now: float) -> Optional[float]:
        entry = self.lookup(address, now)
        return entry.srtt if entry is not None else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


# --------------------------------------------------------------------------
# RFC 6724 policy tables (per-OS sortlists)
# --------------------------------------------------------------------------


def _as_v6(address: IPAddress) -> "ipaddress.IPv6Address":
    """The RFC 6724 view of an address: IPv4 becomes IPv4-mapped."""
    if address.version == 4:
        return ipaddress.IPv6Address(b"\x00" * 10 + b"\xff\xff"
                                     + address.packed)
    return address  # type: ignore[return-value]


@dataclass(frozen=True)
class PolicyEntry:
    """One row of an RFC 6724 §2.1 policy table."""

    prefix: str
    precedence: int
    label: int

    @property
    def network(self) -> "ipaddress.IPv6Network":
        # Parsed once per entry: the sort runs per simulated connect,
        # so re-parsing the prefix string per match would dominate.
        # (__dict__ assignment is legal on a frozen dataclass and
        # invisible to field-based equality and canonical digests.)
        cached = self.__dict__.get("_network")
        if cached is None:
            cached = ipaddress.IPv6Network(self.prefix)
            self.__dict__["_network"] = cached
        return cached

    def matches(self, address: IPAddress) -> bool:
        return _as_v6(address) in self.network

    @property
    def prefix_len(self) -> int:
        return self.network.prefixlen


@dataclass(frozen=True)
class PolicyTable:
    """A named RFC 6724 policy table: longest-prefix entry lookup.

    Per-OS sortlists are instances of this class; a client's
    ``SortingStage`` names one, and :func:`order_addresses` consults it
    for destination precedence.  An unmatched address (impossible with
    the standard tables, which all carry a catch-all) ranks below every
    matched one.
    """

    name: str
    entries: Tuple[PolicyEntry, ...]

    def lookup(self, address: Union[str, IPAddress]) -> Optional[PolicyEntry]:
        """Longest-prefix match, RFC 6724 §2.1 (memoized per address —
        campaigns look the same few destinations up per connect)."""
        parsed = parse_address(address)
        memo = self.__dict__.get("_lookup_memo")
        if memo is None:
            memo = self.__dict__["_lookup_memo"] = {}
        if parsed in memo:
            return memo[parsed]
        best: Optional[PolicyEntry] = None
        for entry in self.entries:
            if entry.matches(parsed) and (
                    best is None or entry.prefix_len > best.prefix_len):
                best = entry
        if len(memo) >= 4096:  # tables are process-wide singletons
            memo.clear()
        memo[parsed] = best
        return best

    def precedence(self, address: Union[str, IPAddress]) -> int:
        entry = self.lookup(address)
        return entry.precedence if entry is not None else -1

    def label(self, address: Union[str, IPAddress]) -> int:
        entry = self.lookup(address)
        return entry.label if entry is not None else -1

    def with_overrides(self, name: str,
                       *entries: PolicyEntry) -> "PolicyTable":
        """A derived table whose ``entries`` replace (by prefix) or
        extend this table's rows — the ``gai.conf``/"netsh prefixpolicy"
        override mechanism."""
        replaced = {entry.prefix: entry for entry in entries}
        merged = tuple(replaced.pop(row.prefix, row)
                       for row in self.entries) + tuple(replaced.values())
        return PolicyTable(name=name, entries=merged)


#: RFC 6724 §2.1 default policy table.
RFC6724_TABLE = PolicyTable("rfc6724", (
    PolicyEntry("::1/128", 50, 0),
    PolicyEntry("::/0", 40, 1),
    PolicyEntry("::ffff:0:0/96", 35, 4),
    PolicyEntry("2002::/16", 30, 2),
    PolicyEntry("2001::/32", 5, 5),
    PolicyEntry("fc00::/7", 3, 13),
    PolicyEntry("::/96", 1, 3),
    PolicyEntry("fec0::/10", 1, 11),
    PolicyEntry("3ffe::/16", 1, 12),
))

#: RFC 3484 §2.1 — the pre-2012 table legacy stacks still ship: no
#: ULA/site-local/Teredo rows (they match ``::/0``) and IPv4-mapped
#: space at precedence 10, i.e. below almost all IPv6.
RFC3484_TABLE = PolicyTable("rfc3484", (
    PolicyEntry("::1/128", 50, 0),
    PolicyEntry("::/0", 40, 1),
    PolicyEntry("2002::/16", 30, 2),
    PolicyEntry("::/96", 20, 3),
    PolicyEntry("::ffff:0:0/96", 10, 4),
))

#: glibc's default matches RFC 6724 row for row.
LINUX_TABLE = PolicyTable("linux", RFC6724_TABLE.entries)

#: Windows ships the RFC 6724 rows without the deprecated-space tail
#: (compatible-v4, site-local, 6bone fall back to the catch-all at
#: precedence 40 is *not* wanted, so the two low rows are kept).
WINDOWS_TABLE = PolicyTable("windows", (
    PolicyEntry("::1/128", 50, 0),
    PolicyEntry("::/0", 40, 1),
    PolicyEntry("::ffff:0:0/96", 35, 4),
    PolicyEntry("2002::/16", 30, 2),
    PolicyEntry("2001::/32", 5, 5),
    PolicyEntry("fc00::/7", 3, 13),
    PolicyEntry("fec0::/10", 1, 11),
    PolicyEntry("::/96", 1, 3),
))

#: Apple demotes transition technologies (6to4, Teredo) below native
#: and ULA space, and parks site-local at the very bottom.
MACOS_TABLE = RFC6724_TABLE.with_overrides(
    "macos",
    PolicyEntry("2002::/16", 2, 2),
    PolicyEntry("2001::/32", 1, 5),
    PolicyEntry("fec0::/10", 0, 11),
)

#: The registry of per-OS sortlists a ``SortingStage`` can name.
POLICY_TABLES: Dict[str, PolicyTable] = {
    table.name: table
    for table in (RFC6724_TABLE, RFC3484_TABLE, LINUX_TABLE,
                  WINDOWS_TABLE, MACOS_TABLE)
}


def policy_table(name: str) -> PolicyTable:
    """The named per-OS policy table, or KeyError listing the options."""
    try:
        return POLICY_TABLES[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_TABLES))
        raise KeyError(f"no policy table named {name!r} (known: {known})")


# -- scope comparison and source selection (RFC 6724 §3.1, §5) -------------

#: RFC 4007 scope values RFC 6724 compares.
SCOPE_INTERFACE_LOCAL = 0x1
SCOPE_LINK_LOCAL = 0x2
SCOPE_SITE_LOCAL = 0x5
SCOPE_GLOBAL = 0xE


def scope_of(address: Union[str, IPAddress]) -> int:
    """The RFC 6724 §3.1 scope of an address (IPv4 per its mapping
    rules: loopback and link-local 169.254/16 are link-local, the
    rest global)."""
    parsed = parse_address(address)
    if parsed.version == 4:
        if parsed in ipaddress.IPv4Network("169.254.0.0/16") \
                or parsed in ipaddress.IPv4Network("127.0.0.0/8"):
            return SCOPE_LINK_LOCAL
        return SCOPE_GLOBAL
    v6 = parsed
    if v6 == ipaddress.IPv6Address("::1"):
        return SCOPE_LINK_LOCAL  # RFC 6724 §3.1: loopback is link-local
    if v6 in ipaddress.IPv6Network("fe80::/10"):
        return SCOPE_LINK_LOCAL
    if v6 in ipaddress.IPv6Network("fec0::/10"):
        return SCOPE_SITE_LOCAL
    if v6.is_multicast:
        return int(v6.packed[1]) & 0x0F
    return SCOPE_GLOBAL


def common_prefix_len(a: Union[str, IPAddress],
                      b: Union[str, IPAddress]) -> int:
    """Length of the longest common prefix (RFC 6724 rule 8/9 input)."""
    left = int(_as_v6(parse_address(a)))
    right = int(_as_v6(parse_address(b)))
    return 128 - (left ^ right).bit_length()


def select_source(destination: Union[str, IPAddress],
                  sources: Sequence[Union[str, IPAddress]],
                  table: PolicyTable = RFC6724_TABLE
                  ) -> Optional[IPAddress]:
    """RFC 6724 §5 source selection (the rules the testbed exercises).

    Applied rules, in order: same family only; Rule 1 (prefer the
    destination itself), Rule 2 (prefer an appropriate scope — a
    source whose scope is >= the destination's, smallest such scope
    first), Rule 6 (prefer a source whose label matches the
    destination's — what keeps ULA talking to ULA while global space
    talks to global space), Rule 8 (longest common prefix), original
    order as the final tiebreaker.
    """
    dst = parse_address(destination)
    candidates = [parse_address(s) for s in sources
                  if family_of(parse_address(s)) is family_of(dst)]
    if not candidates:
        return None
    dst_scope = scope_of(dst)
    dst_label = table.label(dst)

    def rank(indexed):
        index, source = indexed
        src_scope = scope_of(source)
        scope_rank = ((0, src_scope) if src_scope >= dst_scope
                      else (1, -src_scope))
        return (
            0 if source == dst else 1,                      # rule 1
            scope_rank,                                     # rule 2
            0 if table.label(source) == dst_label else 1,   # rule 6
            -common_prefix_len(source, dst),                # rule 8
            index,
        )

    return min(enumerate(candidates), key=rank)[1]


# --------------------------------------------------------------------------
# destination ordering
# --------------------------------------------------------------------------


def order_addresses(addresses: Iterable[Union[str, IPAddress]],
                    preferred_family: Family = Family.V6,
                    history: Optional[HistoryStore] = None,
                    now: float = 0.0,
                    policy: Optional[PolicyTable] = None,
                    biased_family: Optional[Family] = None
                    ) -> List[IPAddress]:
    """Order candidate addresses for connection attempts.

    Without a ``policy`` table (the legacy family-preference sortlist),
    the rules in priority order are:

    1. addresses of ``preferred_family`` before the other family;
    2. within a family, addresses with a known-good history (lower
       smoothed RTT) first;
    3. addresses with recent failures last within their family;
    4. original DNS order as the final tiebreaker (stable sort).

    With a ``policy`` table the family-preference rule is replaced by
    RFC 6724 destination precedence (higher first; IPv4 ranks via its
    mapped prefix), with the same history rules and DNS-order
    tiebreaker below it.  ``biased_family`` — the RFC 6555 §4.1
    outcome-cache bias toward the family that last won — outranks the
    table in that mode, exactly as it overrides ``preferred_family``
    in the legacy mode.
    """
    parsed = [parse_address(a) for a in addresses]

    def history_key(address):
        srtt = None
        failures = 0
        if history is not None:
            entry = history.lookup(address, now)
            if entry is not None:
                srtt = entry.srtt
                failures = entry.failures if entry.successes == 0 else 0
        return (failures > 0, (1 if srtt is None else 0, srtt or 0.0))

    if policy is None:
        def sort_key(indexed):
            index, address = indexed
            family_rank = 0 if family_of(address) is preferred_family else 1
            failed, history_rank = history_key(address)
            return (family_rank, failed, history_rank, index)
    else:
        def sort_key(indexed):
            index, address = indexed
            biased_rank = (0 if biased_family is not None
                           and family_of(address) is biased_family else 1)
            failed, history_rank = history_key(address)
            return (biased_rank, -policy.precedence(address), failed,
                    history_rank, index)

    return [address for _, address in
            sorted(enumerate(parsed), key=sort_key)]
