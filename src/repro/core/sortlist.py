"""Destination address ordering and connection history.

RFC 8305 §4 orders resolved addresses with the host's address selection
policy (RFC 6724) and allows clients to fold in "knowledge about
historical TCP round-trip times and previously used addresses"; this
module provides both pieces:

* :class:`HistoryStore` — per-destination smoothed RTTs and last-used
  addresses with expiry (also feeds dynamic CAD, Safari-style),
* :func:`order_addresses` — family preference + history-aware ordering
  that keeps DNS order as the tiebreaker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..simnet.addr import Family, IPAddress, family_of, parse_address

SRTT_SMOOTHING = 0.25  # weight of a fresh sample, TCP-style


@dataclass
class AddressHistory:
    """What a client remembers about one destination address."""

    srtt: Optional[float] = None
    successes: int = 0
    failures: int = 0
    last_outcome_at: float = 0.0

    def record_success(self, rtt: float, now: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
        else:
            self.srtt = ((1 - SRTT_SMOOTHING) * self.srtt
                         + SRTT_SMOOTHING * rtt)
        self.successes += 1
        self.last_outcome_at = now

    def record_failure(self, now: float) -> None:
        self.failures += 1
        self.last_outcome_at = now


class HistoryStore:
    """RTT and outcome history across destinations.

    ``max_age`` bounds how long an entry influences decisions; stale
    entries are treated as absent (the paper's clients reset state per
    test run, so tests exercise both fresh and expired paths).
    """

    def __init__(self, max_age: float = 600.0) -> None:
        self.max_age = max_age
        self._entries: Dict[IPAddress, AddressHistory] = {}

    def record_success(self, address: Union[str, IPAddress], rtt: float,
                       now: float) -> None:
        entry = self._entries.setdefault(parse_address(address),
                                         AddressHistory())
        entry.record_success(rtt, now)

    def record_failure(self, address: Union[str, IPAddress],
                       now: float) -> None:
        entry = self._entries.setdefault(parse_address(address),
                                         AddressHistory())
        entry.record_failure(now)

    def lookup(self, address: Union[str, IPAddress],
               now: float) -> Optional[AddressHistory]:
        entry = self._entries.get(parse_address(address))
        if entry is None:
            return None
        if now - entry.last_outcome_at > self.max_age:
            return None
        return entry

    def srtt(self, address: Union[str, IPAddress],
             now: float) -> Optional[float]:
        entry = self.lookup(address, now)
        return entry.srtt if entry is not None else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def order_addresses(addresses: Iterable[Union[str, IPAddress]],
                    preferred_family: Family = Family.V6,
                    history: Optional[HistoryStore] = None,
                    now: float = 0.0) -> List[IPAddress]:
    """Order candidate addresses for connection attempts.

    Rules, in priority order (a practical subset of RFC 6724 plus the
    RFC 8305 §4 history extension):

    1. addresses of ``preferred_family`` before the other family;
    2. within a family, addresses with a known-good history (lower
       smoothed RTT) first;
    3. addresses with recent failures last within their family;
    4. original DNS order as the final tiebreaker (stable sort).
    """
    parsed = [parse_address(a) for a in addresses]

    def sort_key(indexed):
        index, address = indexed
        family_rank = 0 if family_of(address) is preferred_family else 1
        srtt = None
        failures = 0
        if history is not None:
            entry = history.lookup(address, now)
            if entry is not None:
                srtt = entry.srtt
                failures = entry.failures if entry.successes == 0 else 0
        history_rank = (1 if srtt is None else 0, srtt or 0.0)
        return (family_rank, failures > 0, history_rank, index)

    return [address for _, address in
            sorted(enumerate(parsed), key=sort_key)]
