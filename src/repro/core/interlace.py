"""Address family interlacing (RFC 8305 §4).

After sorting, HEv2 interleaves the two address families so that a
broken first family cannot stall the whole list.  The *First Address
Family Count* (FAFC) controls how many preferred-family addresses lead
the list — "1 or 2 for aggressively favoring one family" (Table 1).

Three strategies are implemented because the paper observes three
distinct behaviours (App. D / Figure 5):

* strict RFC 8305 alternation,
* Safari's burst pattern — FAFC 2, one IPv4, then *all* remaining IPv6,
  then the remaining IPv4,
* no interlacing at all (HEv1-era clients).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar, Union

from ..simnet.addr import Family, IPAddress, family_of, parse_address
from .params import InterlaceStrategy

T = TypeVar("T")


def _split(addresses: Sequence[Union[str, IPAddress]],
           preferred: Family) -> "tuple[List[IPAddress], List[IPAddress]]":
    first: List[IPAddress] = []
    second: List[IPAddress] = []
    for value in addresses:
        address = parse_address(value)
        (first if family_of(address) is preferred else second).append(address)
    return first, second


def interlace_rfc8305(addresses: Sequence[Union[str, IPAddress]],
                      preferred: Family = Family.V6,
                      first_count: int = 1) -> List[IPAddress]:
    """Strict RFC 8305 §4 interlacing.

    The list starts with ``first_count`` preferred-family addresses,
    then alternates families one by one; leftovers of either family are
    appended once the other runs out.
    """
    if first_count < 1:
        raise ValueError(f"first_count must be >= 1, got {first_count}")
    first, second = _split(addresses, preferred)
    out: List[IPAddress] = []
    out.extend(first[:first_count])
    remaining_first = first[first_count:]
    index = 0
    while index < max(len(remaining_first), len(second)):
        if index < len(second):
            out.append(second[index])
        if index < len(remaining_first):
            out.append(remaining_first[index])
        index += 1
    return out


def interlace_first_family_burst(addresses: Sequence[Union[str, IPAddress]],
                                 preferred: Family = Family.V6,
                                 first_count: int = 2) -> List[IPAddress]:
    """Safari's observed pattern (App. D).

    ``first_count`` preferred addresses, one other-family address, then
    all remaining preferred addresses, then the remaining other-family
    addresses.  With ten addresses per family this yields attempts
    v6 ×2, v4 ×1, v6 ×8, v4 ×9 — exactly Figure 5's Safari row.
    """
    first, second = _split(addresses, preferred)
    out: List[IPAddress] = []
    out.extend(first[:first_count])
    out.extend(second[:1])
    out.extend(first[first_count:])
    out.extend(second[1:])
    return out


def interlace_sequential(addresses: Sequence[Union[str, IPAddress]],
                         preferred: Family = Family.V6) -> List[IPAddress]:
    """No interlacing: the whole preferred family first (HEv1 style)."""
    first, second = _split(addresses, preferred)
    return first + second


def apply_interlace(addresses: Sequence[Union[str, IPAddress]],
                    strategy: InterlaceStrategy,
                    preferred: Family = Family.V6,
                    first_count: int = 1) -> List[IPAddress]:
    """Dispatch to the configured interlacing strategy."""
    if strategy is InterlaceStrategy.RFC8305:
        return interlace_rfc8305(addresses, preferred, first_count)
    if strategy is InterlaceStrategy.FIRST_FAMILY_BURST:
        return interlace_first_family_burst(addresses, preferred,
                                            max(first_count, 1))
    return interlace_sequential(addresses, preferred)
