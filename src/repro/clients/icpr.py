"""iCloud Private Relay egress modeling (§5.1/§5.2).

With iCPR enabled, Safari does not build an IP tunnel: it hands the
*server name* to a MASQUE egress node, which performs DNS resolution
and the whole transport stack on the client's behalf.  Measurements
through iCPR therefore show the **egress operator's** connection
establishment policy, not Safari's:

* Akamai egress — CAD 150 ms, A/AAAA query timeout 400 ms,
* Cloudflare egress — CAD 200 ms, A/AAAA query timeout 1.75 s,

and neither implements RD or address selection, so "Safari users lose
RD and address selection features" behind iCPR (§6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..core.engine import HappyEyeballsEngine, HappyEyeballsError, HEResult
from ..core.events import HETrace
from ..core.params import HEParams, InterlaceStrategy, ResolutionPolicy
from ..dns.stub import StubResolver
from ..seeding import stable_run_seed
from ..simnet.addr import IPAddress
from ..simnet.host import Host
from ..simnet.process import Process


@dataclass(frozen=True)
class EgressOperatorProfile:
    """Observable connection policy of one iCPR egress operator."""

    operator: str
    connection_attempt_delay: float
    dns_timeout: float  # applies to both the A and the AAAA query

    def params(self) -> HEParams:
        return HEParams(
            connection_attempt_delay=self.connection_attempt_delay,
            resolution_delay=None,
            resolution_policy=ResolutionPolicy.WAIT_BOTH,
            interlace=InterlaceStrategy.SEQUENTIAL,
            max_attempts_per_family=1,
        )


AKAMAI_EGRESS = EgressOperatorProfile(
    operator="Akamai", connection_attempt_delay=0.150, dns_timeout=0.400)
CLOUDFLARE_EGRESS = EgressOperatorProfile(
    operator="Cloudflare", connection_attempt_delay=0.200,
    dns_timeout=1.750)

EGRESS_OPERATORS = (AKAMAI_EGRESS, CLOUDFLARE_EGRESS)


class ICPREgressNode:
    """A MASQUE egress node performing HE on behalf of relay clients.

    The egress applies its *own* per-record-type DNS timeout (so a
    delayed AAAA only stalls it for ``dns_timeout``) and a fixed CAD —
    the behaviour the paper extracted from web measurements over iCPR.
    """

    def __init__(self, host: Host, operator: EgressOperatorProfile,
                 nameservers: Sequence[Union[str, IPAddress]]) -> None:
        self.host = host
        self.operator = operator
        # retries=0 and timeout=dns_timeout: the operator's stub gives
        # up on a record type after its own deadline, unlike browsers.
        self.stub = StubResolver(host, nameservers,
                                 timeout=operator.dns_timeout, retries=0)
        self.trace = HETrace()
        self.engine = HappyEyeballsEngine(host, self.stub,
                                          operator.params())
        self.connections_proxied = 0

    def proxied_fetch(self, hostname: str, port: int = 80) -> Process:
        """Fetch ``hostname`` the way a relayed Safari request would.

        Returns the egress-side :class:`HEResult`; the relay client only
        learns success/failure and payload, never addresses — which is
        why iCPR hides the client's HE features.
        """
        return self.host.sim.process(self._fetch_body(hostname, port),
                                     name=f"icpr:{self.operator.operator}")

    def _fetch_body(self, hostname: str, port: int):
        self.connections_proxied += 1
        result = yield self.engine.connect(hostname, port, trace=self.trace)
        connection = result.connection
        connection.send(b"GET /ip HTTP/1.1\r\nHost: "
                        + hostname.encode("ascii") + b"\r\n\r\n")
        reply = yield connection.recv()
        connection.close()
        return result, reply


class ICPRRelayService:
    """The egress node's proxy listener (MASQUE-style, simplified).

    Relay clients open a TCP connection and send
    ``CONNECT <hostname>\\r\\n``; the egress performs DNS + Happy
    Eyeballs + the fetch *itself* and streams the result back.  The
    client never sees target addresses — exactly why iCPR measurements
    reveal the egress operator's stack, not Safari's (§5.1).
    """

    PROXY_PORT = 4443

    def __init__(self, egress: ICPREgressNode,
                 port: int = PROXY_PORT) -> None:
        self.egress = egress
        self.port = port
        self.listener = None

    def start(self) -> "ICPRRelayService":
        host = self.egress.host
        self.listener = host.tcp.listen(self.port)
        host.sim.process(self._accept_loop(), name="icpr-relay")
        return self

    def _accept_loop(self):
        from ..transport.errors import SocketClosed

        while self.listener is not None:
            try:
                connection = yield self.listener.accept()
            except SocketClosed:
                return
            self.egress.host.sim.process(
                self._serve(connection), name="icpr-relay-conn")

    def _serve(self, connection):
        from ..transport.errors import SocketClosed, ConnectionAborted

        try:
            request = yield connection.recv()
        except (SocketClosed, ConnectionAborted):
            return
        if not request.startswith(b"CONNECT "):
            connection.abort()
            return
        hostname = request[len(b"CONNECT "):].split(b"\r\n")[0].decode()
        try:
            _result, reply = yield self.egress.proxied_fetch(hostname)
        except Exception:  # noqa: BLE001 - proxy reports failure inline
            try:
                connection.send(b"ICPR-ERROR\r\n")
            except SocketClosed:
                pass
            return
        try:
            connection.send(b"ICPR-OK\r\n" + reply)
            connection.close()
        except SocketClosed:
            pass


class ICPRRelayClient:
    """A Safari-with-iCPR-enabled client: everything goes via the relay."""

    def __init__(self, host: Host, relay_address,
                 relay_port: int = ICPRRelayService.PROXY_PORT) -> None:
        self.host = host
        self.relay_address = relay_address
        self.relay_port = relay_port

    def fetch(self, hostname: str) -> Process:
        return self.host.sim.process(self._fetch_body(hostname),
                                     name=f"icpr-client:{hostname}")

    def _fetch_body(self, hostname: str):
        attempt = self.host.tcp.connect(self.relay_address,
                                        self.relay_port)
        connection = yield attempt.established
        connection.send(b"CONNECT " + hostname.encode("ascii") + b"\r\n")
        reply = yield connection.recv()
        connection.close()
        ok = reply.startswith(b"ICPR-OK")
        body = reply.split(b"\r\n", 1)[-1] if ok else b""
        return ok, body


# --------------------------------------------------------------------------
# Measurement helpers (the §5.1/§5.2 iCPR experiments)
# --------------------------------------------------------------------------


def measure_egress_cad(operator: EgressOperatorProfile,
                       delays_ms: Sequence[int],
                       seed: int = 0) -> "dict[int, str]":
    """Egress-node family choice per configured IPv6 delay.

    Returns ``{delay_ms: "IPv6"|"IPv4"}``; the crossover reveals the
    operator's CAD (Akamai 150 ms, Cloudflare 200 ms in the paper).
    """
    from ..testbed.topology import LocalTestbed

    outcomes = {}
    for delay_ms in delays_ms:
        testbed = LocalTestbed(seed=stable_run_seed(seed, delay_ms))
        testbed.delay_ipv6_tcp(delay_ms / 1000.0)
        egress = ICPREgressNode(testbed.client, operator,
                                testbed.resolver_addresses[:1])
        process = egress.proxied_fetch(
            f"icpr-{delay_ms}.{testbed.test_domain}")
        result, _reply = testbed.sim.run_until(process)
        outcomes[delay_ms] = result.winning_family.label
    return outcomes


def measure_egress_dns_timeout(operator: EgressOperatorProfile,
                               delayed_rtype,
                               injected_delay_s: float = 3.0,
                               seed: int = 0) -> float:
    """How long the egress stalls when one record type is delayed.

    Both measured operators apply the *same* timeout to A and AAAA
    queries (Akamai 400 ms, Cloudflare 1.75 s) — far from Safari's own
    50 ms resolution delay, which iCPR users therefore lose.
    """
    from ..testbed.topology import LocalTestbed
    from ..testbed.inference import time_to_first_attempt

    testbed = LocalTestbed(seed=seed)
    testbed.set_dns_delay(delayed_rtype, injected_delay_s)
    capture = testbed.start_client_capture()
    egress = ICPREgressNode(testbed.client, operator,
                            testbed.resolver_addresses[:1])
    process = egress.proxied_fetch(f"icpr-rd.{testbed.test_domain}")
    testbed.sim.run_until(process)
    stall = time_to_first_attempt(capture)
    assert stall is not None
    return stall
