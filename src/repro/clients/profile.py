"""Client behaviour profiles.

A :class:`ClientProfile` is the externally observable fingerprint of
one client implementation + version: its Happy Eyeballs parameters
(or lack thereof), DNS query order, attempt budget, and measurement
quirks (Firefox's occasional late fallbacks, Safari's dynamic CAD).
The registry in :mod:`repro.clients.registry` instantiates one profile
per client/version measured in the paper; the testbed and web tool
treat them as black boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.params import HEParams, InterlaceStrategy, ResolutionPolicy
from ..dns.rdata import RdataType

#: Marker CAD for clients that never race (no Happy Eyeballs): the next
#: attempt starts only after the previous one fails.
SERIAL_CAD = 2.0e5


@dataclass(frozen=True)
class ClientProfile:
    """One client implementation/version as a measurable black box."""

    name: str
    version: str
    released: str  # "YYYY-MM" as shown on the Figure 2 axis
    engine_family: str  # chromium | gecko | webkit | curl | wget
    kind: str  # browser | mobile-browser | cli
    params: HEParams
    query_first: RdataType = RdataType.AAAA
    implements_happy_eyeballs: bool = True
    outlier_probability: float = 0.0  # Firefox: rare late IPv4 fallback
    outlier_extra_cad: float = 0.0
    hev3_flag_available: bool = False
    supports_local_tests: bool = True
    supports_web_tests: bool = True
    os_hint: str = "Linux"
    notes: str = ""

    def __post_init__(self) -> None:
        if self.engine_family not in ("chromium", "gecko", "webkit",
                                      "curl", "wget"):
            raise ValueError(f"unknown engine family {self.engine_family!r}")
        if not 0.0 <= self.outlier_probability <= 1.0:
            raise ValueError("outlier_probability must be a probability")

    @property
    def full_name(self) -> str:
        return f"{self.name} {self.version}"

    @property
    def label(self) -> str:
        """Figure 2 row label, e.g. ``"Chrome (130.0 10-2024)"``."""
        return f"{self.name} ({self.version} {self.released})"

    @property
    def nominal_cad(self) -> Optional[float]:
        """The fixed CAD in seconds, or None when dynamic / absent."""
        if not self.implements_happy_eyeballs:
            return None
        if self.params.dynamic_cad:
            return None
        return self.params.connection_attempt_delay

    @property
    def implements_resolution_delay(self) -> bool:
        return (self.params.resolution_policy is ResolutionPolicy.HE_V2
                and self.params.resolution_delay is not None)

    @property
    def nominal_rd(self) -> Optional[float]:
        """The declared Resolution Delay in seconds, or None.

        The conformance fingerprint compares its *measured* RD against
        this declared value, exactly as :attr:`nominal_cad` anchors
        the measured CAD.
        """
        if not self.implements_happy_eyeballs:
            return None
        if not self.implements_resolution_delay:
            return None
        return self.params.resolution_delay

    def with_hev3_flag(self) -> "ClientProfile":
        """The profile with Chromium's HEv3 feature flag enabled.

        Since April 2024 Chromium offers a flag that "adds RD and gets
        rid of" the delayed-A stall (§5.2).
        """
        if not self.hev3_flag_available:
            raise ValueError(
                f"{self.full_name} has no HEv3 feature flag")
        flagged = self.params.with_overrides(
            resolution_policy=ResolutionPolicy.HE_V2,
            resolution_delay=0.050)
        return replace(self, params=flagged,
                       notes=(self.notes + " [HEv3 flag]").strip())


def chromium_params(cad: float = 0.300) -> HEParams:
    """Chromium-family behaviour: fixed 300 ms CAD, no RD, HEv1-style.

    The 300 ms constant is in the Chromium source; the delayed-A stall
    comes from waiting for both DNS answers with no own timeout.
    """
    return HEParams(
        connection_attempt_delay=cad,
        resolution_delay=None,
        resolution_policy=ResolutionPolicy.WAIT_BOTH,
        interlace=InterlaceStrategy.SEQUENTIAL,
        max_attempts_per_family=1,
    )


def gecko_params(cad: float = 0.250) -> HEParams:
    """Firefox: the RFC-recommended 250 ms CAD, otherwise HEv1-style."""
    return HEParams(
        connection_attempt_delay=cad,
        resolution_delay=None,
        resolution_policy=ResolutionPolicy.WAIT_BOTH,
        interlace=InterlaceStrategy.SEQUENTIAL,
        max_attempts_per_family=1,
    )


def webkit_params(maximum_cad: float = 2.0) -> HEParams:
    """Safari: full HEv2 — dynamic CAD, 50 ms RD, FAFC 2, interlacing.

    With no connection history (the pristine local testbed) the dynamic
    CAD falls back to its maximum — which is why Safari's local CAD
    measures a constant 2 s (§5.1).  ``maximum_cad=1.0`` models the
    observed iOS preference for lower values.
    """
    return HEParams(
        dynamic_cad=True,
        connection_attempt_delay=0.250,  # unused while dynamic
        minimum_cad=0.010,
        recommended_cad=0.100,
        maximum_cad=maximum_cad,
        resolution_delay=0.050,
        resolution_policy=ResolutionPolicy.HE_V2,
        interlace=InterlaceStrategy.FIRST_FAMILY_BURST,
        first_address_family_count=2,
    )


def curl_params() -> HEParams:
    """curl: the smallest fixed CAD observed, 200 ms (a curl default)."""
    return HEParams(
        connection_attempt_delay=0.200,
        resolution_delay=None,
        resolution_policy=ResolutionPolicy.WAIT_BOTH,
        interlace=InterlaceStrategy.SEQUENTIAL,
        max_attempts_per_family=1,
    )


def wget_params() -> HEParams:
    """wget: no Happy Eyeballs at all — strictly serial attempts.

    It resolves both families, prefers IPv6, and only ever moves to the
    next address when the current attempt fails outright; with impaired
    IPv6 it "fails without using the provided IPv4 addresses".
    """
    return HEParams(
        connection_attempt_delay=SERIAL_CAD,
        resolution_delay=None,
        resolution_policy=ResolutionPolicy.WAIT_BOTH,
        interlace=InterlaceStrategy.SEQUENTIAL,
    )
