"""Client behaviour profiles as policy-stack compositions.

A :class:`ClientProfile` is the externally observable fingerprint of
one client implementation + version.  Since the staged redesign its
behaviour is declared as a :class:`~repro.core.policy.PolicyStack` —
resolution, sorting, and racing stages composed per client — while the
historical flat :class:`~repro.core.params.HEParams` bag survives as a
derived, byte-identical view (``profile.params``), so everything
written against the bag (goldens, digests, analysis) is unchanged.
The registry in :mod:`repro.clients.registry` instantiates one profile
per client/version measured in the paper; the testbed and web tool
treat them as black boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.params import (HEParams, HEVersion, InterlaceStrategy,
                           ResolutionPolicy)
from ..core.policy import (PolicyStack, RacingStage, ResolutionStage,
                           SortingStage)
from ..dns.rdata import RdataType

#: Marker CAD for clients that never race (no Happy Eyeballs): the next
#: attempt starts only after the previous one fails.
SERIAL_CAD = 2.0e5

#: Engine families a profile may declare (the paper's client taxonomy
#: plus the HEv3 draft reference implementation).
ENGINE_FAMILIES = ("chromium", "gecko", "webkit", "curl", "wget",
                   "reference")


@dataclass(frozen=True)
class ClientProfile:
    """One client implementation/version as a measurable black box.

    Either ``params`` (legacy) or ``stack`` (staged) may be given; the
    missing form is derived, and when both are given they must agree —
    the stack is the source of truth, the bag its compatibility view.
    """

    name: str
    version: str
    released: str  # "YYYY-MM" as shown on the Figure 2 axis
    engine_family: str  # chromium | gecko | webkit | curl | wget | reference
    kind: str  # browser | mobile-browser | cli
    params: Optional[HEParams] = None
    query_first: RdataType = RdataType.AAAA
    implements_happy_eyeballs: bool = True
    outlier_probability: float = 0.0  # Firefox: rare late IPv4 fallback
    outlier_extra_cad: float = 0.0
    hev3_flag_available: bool = False
    supports_local_tests: bool = True
    supports_web_tests: bool = True
    os_hint: str = "Linux"
    notes: str = ""
    stack: Optional[PolicyStack] = None

    def __post_init__(self) -> None:
        if self.engine_family not in ENGINE_FAMILIES:
            raise ValueError(f"unknown engine family {self.engine_family!r}")
        if not 0.0 <= self.outlier_probability <= 1.0:
            raise ValueError("outlier_probability must be a probability")
        if self.params is None and self.stack is None:
            raise ValueError(
                f"{self.name} {self.version}: a profile needs a policy "
                "stack (or a legacy HEParams bag)")
        if self.stack is None:
            object.__setattr__(self, "stack",
                               PolicyStack.from_heparams(self.params))
        elif self.params is None:
            object.__setattr__(self, "params", self.stack.params())
        elif self.stack.params() != self.params:
            raise ValueError(
                f"{self.name} {self.version}: params and stack disagree "
                "— drop one (the stack is the source of truth)")

    @property
    def full_name(self) -> str:
        return f"{self.name} {self.version}"

    @property
    def label(self) -> str:
        """Figure 2 row label, e.g. ``"Chrome (130.0 10-2024)"``."""
        return f"{self.name} ({self.version} {self.released})"

    @property
    def nominal_cad(self) -> Optional[float]:
        """The fixed CAD in seconds, or None when dynamic / serial /
        absent (the SERIAL_CAD marker is not a real stagger delay)."""
        if not self.implements_happy_eyeballs:
            return None
        racing = self.stack.racing
        if racing.dynamic_cad or racing.serial:
            return None
        return racing.connection_attempt_delay

    @property
    def implements_resolution_delay(self) -> bool:
        resolution = self.stack.resolution
        return (resolution.mode is ResolutionPolicy.HE_V2
                and resolution.resolution_delay is not None)

    @property
    def nominal_rd(self) -> Optional[float]:
        """The declared Resolution Delay in seconds, or None.

        The conformance fingerprint compares its *measured* RD against
        this declared value, exactly as :attr:`nominal_cad` anchors
        the measured CAD.
        """
        if not self.implements_happy_eyeballs:
            return None
        if not self.implements_resolution_delay:
            return None
        return self.stack.resolution.resolution_delay

    def with_stack(self, stack: PolicyStack) -> "ClientProfile":
        """This profile with a replacement policy stack (the derived
        ``params`` view is recomputed to keep both forms consistent)."""
        return replace(self, stack=stack, params=stack.params())

    def with_hev3_flag(self) -> "ClientProfile":
        """The profile with Chromium's HEv3 feature flag enabled.

        Since April 2024 Chromium offers a flag that "adds RD and gets
        rid of" the delayed-A stall (§5.2).
        """
        if not self.hev3_flag_available:
            raise ValueError(
                f"{self.full_name} has no HEv3 feature flag")
        flagged = self.stack.with_resolution(
            mode=ResolutionPolicy.HE_V2, resolution_delay=0.050)
        return replace(self.with_stack(flagged),
                       notes=(self.notes + " [HEv3 flag]").strip())


# --------------------------------------------------------------------------
# per-engine-family stack compositions
# --------------------------------------------------------------------------


def chromium_stack(cad: float = 0.300,
                   sortlist: Optional[str] = "linux") -> PolicyStack:
    """Chromium-family behaviour: fixed 300 ms CAD, no RD, HEv1-style.

    The 300 ms constant is in the Chromium source; the delayed-A stall
    comes from waiting for both DNS answers with no own timeout.
    """
    return PolicyStack(
        resolution=ResolutionStage(mode=ResolutionPolicy.WAIT_BOTH,
                                   resolution_delay=None),
        sorting=SortingStage(interlace=InterlaceStrategy.SEQUENTIAL,
                             sortlist=sortlist),
        racing=RacingStage(connection_attempt_delay=cad,
                           max_attempts_per_family=1),
    )


def gecko_stack(cad: float = 0.250,
                sortlist: Optional[str] = "linux") -> PolicyStack:
    """Firefox: the RFC-recommended 250 ms CAD, otherwise HEv1-style."""
    return PolicyStack(
        resolution=ResolutionStage(mode=ResolutionPolicy.WAIT_BOTH,
                                   resolution_delay=None),
        sorting=SortingStage(interlace=InterlaceStrategy.SEQUENTIAL,
                             sortlist=sortlist),
        racing=RacingStage(connection_attempt_delay=cad,
                           max_attempts_per_family=1),
    )


def webkit_stack(maximum_cad: float = 2.0,
                 sortlist: Optional[str] = "macos") -> PolicyStack:
    """Safari: full HEv2 — dynamic CAD, 50 ms RD, FAFC 2, interlacing.

    With no connection history (the pristine local testbed) the dynamic
    CAD falls back to its maximum — which is why Safari's local CAD
    measures a constant 2 s (§5.1).  ``maximum_cad=1.0`` models the
    observed iOS preference for lower values.
    """
    return PolicyStack(
        resolution=ResolutionStage(mode=ResolutionPolicy.HE_V2,
                                   resolution_delay=0.050),
        sorting=SortingStage(
            interlace=InterlaceStrategy.FIRST_FAMILY_BURST,
            first_address_family_count=2, sortlist=sortlist),
        racing=RacingStage(dynamic_cad=True,
                           connection_attempt_delay=0.250,  # unused: dynamic
                           minimum_cad=0.010, recommended_cad=0.100,
                           maximum_cad=maximum_cad),
    )


def curl_stack(sortlist: Optional[str] = "linux") -> PolicyStack:
    """curl: the smallest fixed CAD observed, 200 ms (a curl default)."""
    return PolicyStack(
        resolution=ResolutionStage(mode=ResolutionPolicy.WAIT_BOTH,
                                   resolution_delay=None),
        sorting=SortingStage(interlace=InterlaceStrategy.SEQUENTIAL,
                             sortlist=sortlist),
        racing=RacingStage(connection_attempt_delay=0.200,
                           max_attempts_per_family=1),
    )


def wget_stack(sortlist: Optional[str] = "rfc3484") -> PolicyStack:
    """wget: no Happy Eyeballs at all — strictly serial attempts.

    It resolves both families, prefers IPv6, and only ever moves to the
    next address when the current attempt fails outright; with impaired
    IPv6 it "fails without using the provided IPv4 addresses".  Its
    destination ordering is the legacy RFC 3484 sortlist (pre-6724
    getaddrinfo), which still ranks ULA and site-local space above
    IPv4 — exactly what the sortlist battery discriminates.
    """
    return PolicyStack(
        resolution=ResolutionStage(mode=ResolutionPolicy.WAIT_BOTH,
                                   resolution_delay=None),
        sorting=SortingStage(interlace=InterlaceStrategy.SEQUENTIAL,
                             sortlist=sortlist),
        racing=RacingStage(connection_attempt_delay=SERIAL_CAD),
    )


def hev3_reference_stack() -> PolicyStack:
    """The HEv3 draft as a client: SVCB consumption + QUIC racing."""
    return PolicyStack(
        resolution=ResolutionStage(mode=ResolutionPolicy.HE_V2,
                                   resolution_delay=0.050, use_svcb=True),
        sorting=SortingStage(interlace=InterlaceStrategy.RFC8305,
                             first_address_family_count=1,
                             sortlist="rfc6724"),
        racing=RacingStage(connection_attempt_delay=0.250, race_quic=True),
        version=HEVersion.V3,
    )


# --------------------------------------------------------------------------
# legacy HEParams views (compatibility shims over the stacks)
# --------------------------------------------------------------------------


def chromium_params(cad: float = 0.300) -> HEParams:
    return chromium_stack(cad).params()


def gecko_params(cad: float = 0.250) -> HEParams:
    return gecko_stack(cad).params()


def webkit_params(maximum_cad: float = 2.0) -> HEParams:
    return webkit_stack(maximum_cad).params()


def curl_params() -> HEParams:
    return curl_stack().params()


def wget_params() -> HEParams:
    return wget_stack().params()
