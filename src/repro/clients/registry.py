"""Catalog of every client + version the paper measures.

Figure 2 sweeps 17 client versions on the local testbed; Table 2
evaluates nine clients; Table 5 lists the browser/OS combinations seen
by the web tool.  This registry is the single source of truth for all
of them.  Every profile is declared as a
:class:`~repro.core.policy.PolicyStack` composition — per-engine
resolution/sorting/racing stages with a per-OS RFC 6724 sortlist —
and the registry additionally carries the HEv3 draft reference client
(QUIC racing + SVCB consumption) the protocol-racing battery
discriminates against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dns.rdata import RdataType
from .profile import (ClientProfile, chromium_stack, curl_stack,
                      gecko_stack, hev3_reference_stack, webkit_stack,
                      wget_stack)


def _sortlist_for_os(os_hint: str) -> str:
    """The per-OS RFC 6724 policy table a client inherits."""
    lowered = os_hint.lower()
    if "windows" in lowered:
        return "windows"
    if "mac" in lowered or "ios" in lowered:
        return "macos"
    return "linux"  # Linux and Android ship glibc/bionic ~ RFC 6724


def _chromium(name: str, version: str, released: str,
              hev3_flag: bool = False, kind: str = "browser",
              os_hint: str = "Linux") -> ClientProfile:
    return ClientProfile(
        name=name, version=version, released=released,
        engine_family="chromium", kind=kind,
        stack=chromium_stack(sortlist=_sortlist_for_os(os_hint)),
        query_first=RdataType.AAAA, hev3_flag_available=hev3_flag,
        supports_local_tests=kind != "mobile-browser",
        os_hint=os_hint,
        notes="CAD 300 ms (constant in the Chromium source); no RD")


def _firefox(version: str, released: str,
             os_hint: str = "Linux") -> ClientProfile:
    return ClientProfile(
        name="Firefox", version=version, released=released,
        engine_family="gecko", kind="browser",
        stack=gecko_stack(sortlist=_sortlist_for_os(os_hint)),
        # Table 2 marks Firefox's AAAA-first as "not observed": its
        # query order follows the OS stub resolver, observed A-first.
        query_first=RdataType.A,
        outlier_probability=0.15, outlier_extra_cad=0.200,
        os_hint=os_hint,
        notes="CAD 250 ms per RFC recommendation; occasional late outliers")


def _safari(version: str, released: str, mobile: bool = False
            ) -> ClientProfile:
    return ClientProfile(
        name="Mobile Safari" if mobile else "Safari",
        version=version, released=released,
        engine_family="webkit",
        kind="mobile-browser" if mobile else "browser",
        stack=webkit_stack(maximum_cad=1.0 if mobile else 2.0,
                           sortlist="macos"),
        query_first=RdataType.AAAA,
        supports_local_tests=not mobile,
        os_hint="iOS" if mobile else "Mac OS X 10.15.7",
        notes="full HEv2: dynamic CAD, 50 ms RD, FAFC 2, interlacing")


_PROFILES: List[ClientProfile] = [
    # -- Chromium family, Figure 2 versions ------------------------------
    _chromium("Chrome", "88.0", "01-2021"),
    _chromium("Chrome", "96.0", "11-2021"),
    _chromium("Chrome", "108.0", "11-2022"),
    _chromium("Chrome", "120.0", "11-2023"),
    _chromium("Chrome", "130.0", "10-2024", hev3_flag=True),
    _chromium("Chromium", "130.0", "10-2024", hev3_flag=True),
    _chromium("Edge", "90.0", "04-2021"),
    _chromium("Edge", "96.0", "11-2021"),
    _chromium("Edge", "108.0", "12-2022"),
    _chromium("Edge", "120.0", "12-2023"),
    _chromium("Edge", "130.0", "10-2024", hev3_flag=True),
    _chromium("Chrome Mobile", "130.0", "10-2024", kind="mobile-browser",
              os_hint="Android 10"),
    # -- Gecko family -------------------------------------------------------
    _firefox("96.0", "01-2022"),
    _firefox("109.0", "01-2023"),
    _firefox("122.0", "01-2024"),
    _firefox("132.0", "10-2024"),
    # -- WebKit family -------------------------------------------------------
    _safari("17.5", "05-2024"),
    _safari("17.6", "07-2024"),
    _safari("17.6", "07-2024", mobile=True),
    # -- command-line tools ---------------------------------------------------
    ClientProfile(
        name="curl", version="7.88.1", released="02-2023",
        engine_family="curl", kind="cli", stack=curl_stack(),
        query_first=RdataType.AAAA, supports_web_tests=False,
        notes="CAD 200 ms (--happy-eyeballs-timeout-ms default)"),
    ClientProfile(
        name="wget", version="1.21.3", released="02-2022",
        engine_family="wget", kind="cli", stack=wget_stack(),
        query_first=RdataType.A, implements_happy_eyeballs=False,
        supports_web_tests=False,
        notes="no HE: serial attempts, no IPv4 fallback under delay"),
    # -- the HEv3 draft as a client -------------------------------------------
    ClientProfile(
        name="hev3-reference", version="draft-07", released="05-2025",
        engine_family="reference", kind="cli",
        stack=hev3_reference_stack(),
        query_first=RdataType.AAAA, supports_web_tests=False,
        notes="draft-ietf-happy-happyeyeballs-v3 reference: SVCB/HTTPS "
              "consumption + QUIC racing"),
]

_BY_KEY: Dict[str, ClientProfile] = {
    f"{p.name} {p.version}".lower(): p for p in _PROFILES}


def all_profiles() -> List[ClientProfile]:
    return list(_PROFILES)


def get_profile(name: str, version: Optional[str] = None) -> ClientProfile:
    """Look up a profile by "Name version" or by name (latest version)."""
    if version is not None:
        key = f"{name} {version}".lower()
        if key in _BY_KEY:
            return _BY_KEY[key]
        raise KeyError(f"no profile for {name} {version}")
    matches = [p for p in _PROFILES if p.name.lower() == name.lower()]
    if not matches:
        raise KeyError(f"no profile named {name!r}")
    return matches[-1]


def resolve_profiles(selector: str) -> List[ClientProfile]:
    """Profiles matching a CLI-style selector.

    ``"all"`` (or ``"*"``) → every client the local testbed supports;
    ``"Name version"`` → that exact profile; ``"Name"`` → the latest
    version of that client.  Raises :class:`KeyError` with the valid
    keys when nothing matches.
    """
    if selector.strip().lower() in ("all", "*"):
        return local_testbed_clients()
    key = selector.strip().lower()
    if key in _BY_KEY:
        return [_BY_KEY[key]]
    matches = [p for p in _PROFILES if p.name.lower() == key]
    if matches:
        return [matches[-1]]
    known = ", ".join(sorted({p.full_name for p in _PROFILES}))
    raise KeyError(f"no client matches {selector!r} (known: {known})")


def figure2_clients() -> List[ClientProfile]:
    """The 17 rows of Figure 2, bottom-up order as plotted.

    Safari is excluded from the figure (its 2 s CAD would compress the
    axis), exactly as the paper does.
    """
    order = [
        ("wget", "1.21.3"), ("curl", "7.88.1"),
        ("Firefox", "96.0"), ("Firefox", "109.0"), ("Firefox", "122.0"),
        ("Firefox", "132.0"),
        ("Edge", "90.0"), ("Edge", "96.0"), ("Edge", "108.0"),
        ("Edge", "120.0"), ("Edge", "130.0"),
        ("Chromium", "130.0"),
        ("Chrome", "88.0"), ("Chrome", "96.0"), ("Chrome", "108.0"),
        ("Chrome", "120.0"), ("Chrome", "130.0"),
    ]
    return [get_profile(name, version) for name, version in order]


def table2_clients() -> List[ClientProfile]:
    """The nine clients of Table 2, in its row order."""
    rows = [
        ("Chrome", "130.0"), ("Chromium", "130.0"), ("Edge", "130.0"),
        ("Firefox", "132.0"), ("Safari", "17.6"),
        ("Mobile Safari", "17.6"), ("Chrome Mobile", "130.0"),
        ("curl", "7.88.1"), ("wget", "1.21.3"),
    ]
    return [get_profile(name, version) for name, version in rows]


def local_testbed_clients() -> List[ClientProfile]:
    return [p for p in _PROFILES if p.supports_local_tests]
