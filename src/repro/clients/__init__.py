"""Client models: the black boxes under test.

Each measured client (browsers, curl, wget, iCPR egress operators) is a
:class:`ClientProfile` — a parameterization of the real HE engine in
:mod:`repro.core` — instantiated as a runnable :class:`Client` on a
simulated host.  The registry carries every client/version from
Figure 2 and Table 2.
"""

from .base import CLIENT_STUB_TIMEOUT, Client, FetchResult
from .icpr import (AKAMAI_EGRESS, CLOUDFLARE_EGRESS, EGRESS_OPERATORS,
                   EgressOperatorProfile, ICPREgressNode, ICPRRelayClient,
                   ICPRRelayService)
from .profile import (ClientProfile, SERIAL_CAD, chromium_params,
                      chromium_stack, curl_params, curl_stack,
                      gecko_params, gecko_stack, hev3_reference_stack,
                      webkit_params, webkit_stack, wget_params, wget_stack)
from .registry import (all_profiles, figure2_clients, get_profile,
                       local_testbed_clients, resolve_profiles,
                       table2_clients)

__all__ = [
    "AKAMAI_EGRESS", "CLIENT_STUB_TIMEOUT", "CLOUDFLARE_EGRESS", "Client",
    "ClientProfile", "EGRESS_OPERATORS", "EgressOperatorProfile",
    "FetchResult", "ICPREgressNode", "ICPRRelayClient",
    "ICPRRelayService", "SERIAL_CAD", "all_profiles",
    "chromium_params", "chromium_stack", "curl_params", "curl_stack",
    "figure2_clients", "gecko_params", "gecko_stack",
    "get_profile", "hev3_reference_stack", "local_testbed_clients",
    "resolve_profiles", "table2_clients", "webkit_params", "webkit_stack",
    "wget_params", "wget_stack",
]
