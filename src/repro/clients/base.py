"""The runnable client: a profile instantiated on a host.

:class:`Client` is the black box the testbed measures — it resolves a
hostname, races connections per its profile, performs an HTTP-ish GET,
and reports what the *response body* said about the connection (the
web tool's client-side observable: the server echoes the client's
source address).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..core.engine import HappyEyeballsEngine, HappyEyeballsError, HEResult
from ..core.events import HETrace
from ..core.racing import ConnectionRacer
from ..core.sortlist import HistoryStore
from ..dns.stub import StubResolver
from ..simnet.addr import Family, IPAddress, family_of, parse_address
from ..simnet.host import Host
from ..simnet.process import Process
from .profile import ClientProfile

#: Clients in the study set no DNS timeout of their own (§5.2); their
#: stub waits essentially forever and inherits the resolver's timeout.
CLIENT_STUB_TIMEOUT = 3600.0


@dataclass
class FetchResult:
    """Outcome of one ``fetch()`` as the client sees it."""

    hostname: str
    he: HEResult
    body: Optional[bytes] = None
    reported_address: Optional[IPAddress] = None
    error: Optional[str] = None

    @property
    def success(self) -> bool:
        return self.body is not None

    @property
    def used_family(self) -> Optional[Family]:
        """Family as determined from the echoed source address."""
        if self.reported_address is None:
            return None
        return family_of(self.reported_address)


class Client:
    """A client profile bound to a host and a resolver."""

    def __init__(self, host: Host, profile: ClientProfile,
                 nameservers: Sequence[Union[str, IPAddress]],
                 history: Optional[HistoryStore] = None,
                 hev3_flag: bool = False,
                 attempt_timeout: Optional[float] = None) -> None:
        self.host = host
        self.profile = (profile.with_hev3_flag() if hev3_flag else profile)
        self.stub = StubResolver(host, nameservers,
                                 timeout=CLIENT_STUB_TIMEOUT, retries=0)
        self.history = history
        self.trace = HETrace()
        self._rng = host.sim.derive_rng(
            f"client:{profile.full_name}:{host.name}")
        self.engine = HappyEyeballsEngine(
            host, self.stub, self.profile.stack,
            history=history, query_first=self.profile.query_first,
            attempt_timeout=attempt_timeout)
        if self.profile.outlier_probability > 0.0:
            self._install_outlier_cad()

    def _install_outlier_cad(self) -> None:
        """Firefox-style rare late fallbacks: occasionally wait longer.

        "Only Firefox has a few outliers, but the median and standard
        deviation are within a ms of the obtained value" (§5.1).
        """
        profile = self.profile
        base_connect = self.engine._connect_body

        # Perturb per-connect by swapping the racing stage only: the
        # resolution and sorting declarations (including the per-OS
        # sortlist) must survive an outlier untouched.
        def perturbed_connect(hostname, port, trace):
            stack = profile.stack
            if self._rng.random() < profile.outlier_probability:
                racing = stack.racing
                stack = stack.with_racing(
                    connection_attempt_delay=(
                        racing.connection_attempt_delay
                        + self._rng.uniform(0.0, profile.outlier_extra_cad)))
            original = self.engine.stack
            self.engine.stack = stack
            try:
                result = yield from base_connect(hostname, port, trace)
            finally:
                self.engine.stack = original
            return result

        self.engine._connect_body = perturbed_connect

    # -- actions ------------------------------------------------------------------

    def connect(self, hostname: str, port: int = 80) -> Process:
        """Run Happy Eyeballs connection establishment only."""
        return self.engine.connect(hostname, port, trace=self.trace)

    def fetch(self, hostname: str, port: int = 80) -> Process:
        """Connect, GET, and read the echoed source address."""
        return self.host.sim.process(self._fetch_body(hostname, port),
                                     name=f"fetch:{hostname}")

    def _fetch_body(self, hostname: str, port: int):
        try:
            he_result = yield self.connect(hostname, port)
        except HappyEyeballsError as exc:
            return FetchResult(hostname=hostname, he=exc.result,
                               error=str(exc))
        connection = he_result.connection
        request = (f"GET /ip HTTP/1.1\r\nHost: {hostname}\r\n\r\n"
                   ).encode("ascii")
        connection.send(request)
        reply = yield connection.recv()
        connection.close()
        body = reply.split(b"\r\n\r\n", 1)[-1] if reply else b""
        reported: Optional[IPAddress] = None
        try:
            reported = parse_address(body.decode("ascii"))
        except Exception:  # noqa: BLE001 - body may be empty on failure
            pass
        return FetchResult(hostname=hostname, he=he_result, body=reply,
                           reported_address=reported)
