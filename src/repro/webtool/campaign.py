"""Web measurement campaigns over the Table 5 browser/OS matrix.

The paper collected 161 web-based results covering nine browsers in 22
versions on seven operating systems (33 combinations).  The campaign
object replays that structure: every matrix entry visits the tool a
configurable number of times; results aggregate per browser into the
validation and consistency columns of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..clients.profile import ClientProfile
from ..clients.registry import get_profile
from ..fanout import map_maybe_parallel
from ..seeding import stable_run_seed
from .server import WebToolDeployment
from .session import NetworkConditions, SessionResult, WebToolSession


@dataclass(frozen=True)
class UAEntry:
    """One user-agent combination as extracted from Table 5."""

    os_name: str
    os_version: str
    browser: str
    browser_version: str

    @property
    def label(self) -> str:
        os_part = (f"{self.os_name} {self.os_version}".strip())
        return f"{os_part} / {self.browser} {self.browser_version}"


#: The OS/browser matrix of Table 5 (33 combinations).
TABLE5_MATRIX: Tuple[UAEntry, ...] = (
    UAEntry("Android", "10", "Chrome Mobile", "127.0.0"),
    UAEntry("Android", "10", "Chrome Mobile", "130.0.0"),
    UAEntry("Android", "10", "Firefox Mobile", "131.0"),
    UAEntry("Android", "10", "Samsung Internet", "26.0"),
    UAEntry("Android", "14", "Firefox Mobile", "125.0"),
    UAEntry("Android", "14", "Firefox Mobile", "128.0"),
    UAEntry("Android", "14", "Firefox Mobile", "131.0"),
    UAEntry("Chrome OS", "14541.0.0", "Chrome", "129.0.0"),
    UAEntry("Linux", "", "Chrome", "130.0.0"),
    UAEntry("Linux", "", "Firefox", "128.0"),
    UAEntry("Linux", "", "Firefox", "130.0"),
    UAEntry("Linux", "", "Firefox", "131.0"),
    UAEntry("Linux", "", "Firefox", "132.0"),
    UAEntry("Mac OS X", "10.15", "Firefox", "128.0"),
    UAEntry("Mac OS X", "10.15", "Firefox", "131.0"),
    UAEntry("Mac OS X", "10.15", "Firefox", "132.0"),
    UAEntry("Mac OS X", "10.15.7", "Chrome", "127.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Chrome", "129.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Chrome", "130.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Opera", "114.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "17.4.1"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "17.5"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "17.6"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "18.0.1"),
    UAEntry("Ubuntu", "", "Firefox", "128.0"),
    UAEntry("Ubuntu", "", "Firefox", "131.0"),
    UAEntry("Windows", "10", "Chrome", "127.0.0"),
    UAEntry("Windows", "10", "Edge", "130.0.0"),
    UAEntry("Windows", "10", "Firefox", "130.0"),
    UAEntry("iOS", "17.5.1", "Mobile Safari", "17.5"),
    UAEntry("iOS", "17.6", "Mobile Safari", "17.6"),
    UAEntry("iOS", "17.6.1", "Mobile Safari", "17.6"),
    UAEntry("iOS", "18.1", "Mobile Safari", "18.1"),
)

#: Browsers not in the local registry map onto their engine family.
_FAMILY_OF_BROWSER = {
    "Chrome": "Chrome", "Chrome Mobile": "Chrome Mobile",
    "Chromium": "Chromium", "Edge": "Edge",
    "Opera": "Chrome", "Samsung Internet": "Chrome Mobile",
    "Firefox": "Firefox", "Firefox Mobile": "Firefox",
    "Safari": "Safari", "Mobile Safari": "Mobile Safari",
}


def profile_for_entry(entry: UAEntry) -> ClientProfile:
    """A client profile for a Table 5 combination.

    Versions outside the local registry inherit their engine family's
    behaviour — the paper finds behaviour constant within each engine
    family across the measured version range.
    """
    base_name = _FAMILY_OF_BROWSER.get(entry.browser)
    if base_name is None:
        raise KeyError(f"unknown browser {entry.browser!r}")
    base = get_profile(base_name)
    return replace(base, name=entry.browser,
                   version=entry.browser_version,
                   os_hint=(f"{entry.os_name} {entry.os_version}".strip()))


@dataclass
class BrowserAggregate:
    """Aggregated web results for one browser (one Table 2 cell group)."""

    browser: str
    sessions: List[SessionResult] = field(default_factory=list)

    @property
    def repetitions(self) -> int:
        return len(self.sessions)

    @property
    def inconsistent_sessions(self) -> int:
        return sum(1 for s in self.sessions if not s.is_monotonic())

    def modal_cad_interval(self) -> "Tuple[Optional[int], Optional[int]]":
        """Most common CAD interval across sessions."""
        votes: Dict[Tuple[Optional[int], Optional[int]], int] = {}
        for session in self.sessions:
            votes[session.cad_interval()] = votes.get(
                session.cad_interval(), 0) + 1
        if not votes:
            return (None, None)
        return max(votes, key=votes.get)

    def cad_interval_spread(self) -> "List[Tuple[Optional[int], Optional[int]]]":
        return sorted({s.cad_interval() for s in self.sessions},
                      key=lambda pair: (pair[0] is None, pair[0] or 0))


@dataclass
class CampaignResult:
    """All sessions of one web campaign."""

    sessions: List[SessionResult] = field(default_factory=list)

    def add(self, session: SessionResult) -> None:
        self.sessions.append(session)

    def by_browser(self) -> Dict[str, BrowserAggregate]:
        out: Dict[str, BrowserAggregate] = {}
        for session in self.sessions:
            name = session.browser.split(" ")[0]
            if session.browser.startswith(("Mobile Safari",
                                           "Chrome Mobile",
                                           "Firefox Mobile",
                                           "Samsung Internet")):
                name = " ".join(session.browser.split(" ")[:2])
            aggregate = out.setdefault(name, BrowserAggregate(browser=name))
            aggregate.sessions.append(session)
        return out

    def combinations(self) -> int:
        return len({(s.browser, s.os_name) for s in self.sessions})

    def __len__(self) -> int:
        return len(self.sessions)


def _run_entry_sessions(
        payload: "Tuple[UAEntry, int, int, NetworkConditions]"
        ) -> List[SessionResult]:
    """Process-pool entry point: all repetitions of one UA entry.

    Each entry gets its own deployment seeded from the campaign seed
    and the entry label, and explicit session indices — results are a
    pure function of the payload, independent of worker scheduling.
    """
    entry, seed, repetitions, conditions = payload
    deployment = WebToolDeployment(
        seed=stable_run_seed(seed, "web-entry", entry.label))
    profile = profile_for_entry(entry)
    sessions: List[SessionResult] = []
    for repetition in range(repetitions):
        session = WebToolSession(
            deployment, profile,
            os_name=f"{entry.os_name} {entry.os_version}".strip(),
            repetition=repetition, conditions=conditions,
            session_index=repetition + 1)
        sessions.append(session.run())
    return sessions


class WebCampaign:
    """Runs sessions for a set of UA entries on one deployment."""

    def __init__(self, seed: int = 0, repetitions: int = 10,
                 conditions: Optional[NetworkConditions] = None) -> None:
        self.seed = seed
        self.repetitions = repetitions
        self.conditions = conditions or NetworkConditions.residential()

    def run(self, entries: "Tuple[UAEntry, ...]" = TABLE5_MATRIX,
            repetitions: Optional[int] = None,
            workers: Optional[int] = None) -> CampaignResult:
        """Visit the tool for every entry × repetition.

        Every entry runs on its own deployment seeded from the
        campaign seed and the entry label, with explicit session
        indices — the campaign result is a pure function of
        ``(seed, entries, repetitions, conditions)``, independent of
        process history.  ``workers=N`` fans entries out over N
        processes and returns *identical* results in entry order.
        """
        result = CampaignResult()
        reps = repetitions if repetitions is not None else self.repetitions
        payloads = [(entry, self.seed, reps, self.conditions)
                    for entry in entries]
        for sessions in map_maybe_parallel(_run_entry_sessions, payloads,
                                           workers):
            for session in sessions:
                result.add(session)
        return result
