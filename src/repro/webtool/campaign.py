"""Web measurement campaigns over the Table 5 browser/OS matrix.

The paper collected 161 web-based results covering nine browsers in 22
versions on seven operating systems (33 combinations).  The campaign
object replays that structure: every matrix entry visits the tool a
configurable number of times; results aggregate per browser into the
validation and consistency columns of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..clients.profile import ClientProfile
from ..clients.registry import get_profile
from ..fanout import map_maybe_parallel
from ..seeding import stable_run_seed
from ..simnet.addr import Family
from ..testbed.store import CampaignStore
from .server import WebToolDeployment
from .session import (NetworkConditions, SessionResult, StepOutcome,
                      WebToolSession)


@dataclass(frozen=True)
class UAEntry:
    """One user-agent combination as extracted from Table 5."""

    os_name: str
    os_version: str
    browser: str
    browser_version: str

    @property
    def label(self) -> str:
        os_part = (f"{self.os_name} {self.os_version}".strip())
        return f"{os_part} / {self.browser} {self.browser_version}"


#: The OS/browser matrix of Table 5 (33 combinations).
TABLE5_MATRIX: Tuple[UAEntry, ...] = (
    UAEntry("Android", "10", "Chrome Mobile", "127.0.0"),
    UAEntry("Android", "10", "Chrome Mobile", "130.0.0"),
    UAEntry("Android", "10", "Firefox Mobile", "131.0"),
    UAEntry("Android", "10", "Samsung Internet", "26.0"),
    UAEntry("Android", "14", "Firefox Mobile", "125.0"),
    UAEntry("Android", "14", "Firefox Mobile", "128.0"),
    UAEntry("Android", "14", "Firefox Mobile", "131.0"),
    UAEntry("Chrome OS", "14541.0.0", "Chrome", "129.0.0"),
    UAEntry("Linux", "", "Chrome", "130.0.0"),
    UAEntry("Linux", "", "Firefox", "128.0"),
    UAEntry("Linux", "", "Firefox", "130.0"),
    UAEntry("Linux", "", "Firefox", "131.0"),
    UAEntry("Linux", "", "Firefox", "132.0"),
    UAEntry("Mac OS X", "10.15", "Firefox", "128.0"),
    UAEntry("Mac OS X", "10.15", "Firefox", "131.0"),
    UAEntry("Mac OS X", "10.15", "Firefox", "132.0"),
    UAEntry("Mac OS X", "10.15.7", "Chrome", "127.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Chrome", "129.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Chrome", "130.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Opera", "114.0.0"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "17.4.1"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "17.5"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "17.6"),
    UAEntry("Mac OS X", "10.15.7", "Safari", "18.0.1"),
    UAEntry("Ubuntu", "", "Firefox", "128.0"),
    UAEntry("Ubuntu", "", "Firefox", "131.0"),
    UAEntry("Windows", "10", "Chrome", "127.0.0"),
    UAEntry("Windows", "10", "Edge", "130.0.0"),
    UAEntry("Windows", "10", "Firefox", "130.0"),
    UAEntry("iOS", "17.5.1", "Mobile Safari", "17.5"),
    UAEntry("iOS", "17.6", "Mobile Safari", "17.6"),
    UAEntry("iOS", "17.6.1", "Mobile Safari", "17.6"),
    UAEntry("iOS", "18.1", "Mobile Safari", "18.1"),
)

#: Browsers not in the local registry map onto their engine family.
_FAMILY_OF_BROWSER = {
    "Chrome": "Chrome", "Chrome Mobile": "Chrome Mobile",
    "Chromium": "Chromium", "Edge": "Edge",
    "Opera": "Chrome", "Samsung Internet": "Chrome Mobile",
    "Firefox": "Firefox", "Firefox Mobile": "Firefox",
    "Safari": "Safari", "Mobile Safari": "Mobile Safari",
}


def profile_for_entry(entry: UAEntry) -> ClientProfile:
    """A client profile for a Table 5 combination.

    Versions outside the local registry inherit their engine family's
    behaviour — the paper finds behaviour constant within each engine
    family across the measured version range.
    """
    base_name = _FAMILY_OF_BROWSER.get(entry.browser)
    if base_name is None:
        raise KeyError(f"unknown browser {entry.browser!r}")
    base = get_profile(base_name)
    return replace(base, name=entry.browser,
                   version=entry.browser_version,
                   os_hint=(f"{entry.os_name} {entry.os_version}".strip()))


@dataclass
class BrowserAggregate:
    """Aggregated web results for one browser (one Table 2 cell group)."""

    browser: str
    sessions: List[SessionResult] = field(default_factory=list)

    @property
    def repetitions(self) -> int:
        return len(self.sessions)

    @property
    def inconsistent_sessions(self) -> int:
        return sum(1 for s in self.sessions if not s.is_monotonic())

    def modal_cad_interval(self) -> "Tuple[Optional[int], Optional[int]]":
        """Most common CAD interval across sessions."""
        votes: Dict[Tuple[Optional[int], Optional[int]], int] = {}
        for session in self.sessions:
            votes[session.cad_interval()] = votes.get(
                session.cad_interval(), 0) + 1
        if not votes:
            return (None, None)
        return max(votes, key=votes.get)

    def cad_interval_spread(self) -> "List[Tuple[Optional[int], Optional[int]]]":
        return sorted({s.cad_interval() for s in self.sessions},
                      key=lambda pair: (pair[0] is None, pair[0] or 0))


@dataclass
class CampaignResult:
    """All sessions of one web campaign."""

    sessions: List[SessionResult] = field(default_factory=list)

    def add(self, session: SessionResult) -> None:
        self.sessions.append(session)

    def by_browser(self) -> Dict[str, BrowserAggregate]:
        out: Dict[str, BrowserAggregate] = {}
        for session in self.sessions:
            name = session.browser.split(" ")[0]
            if session.browser.startswith(("Mobile Safari",
                                           "Chrome Mobile",
                                           "Firefox Mobile",
                                           "Samsung Internet")):
                name = " ".join(session.browser.split(" ")[:2])
            aggregate = out.setdefault(name, BrowserAggregate(browser=name))
            aggregate.sessions.append(session)
        return out

    def combinations(self) -> int:
        return len({(s.browser, s.os_name) for s in self.sessions})

    def __len__(self) -> int:
        return len(self.sessions)


def _encode_sessions(sessions: List[SessionResult]) -> list:
    """JSON-shaped cache payload; :func:`_decode_sessions` rebuilds
    ``==``-identical session results."""
    return [{
        "browser": session.browser,
        "os_name": session.os_name,
        "repetition": session.repetition,
        "outcomes": [[outcome.delay_ms,
                      (outcome.used_family.name
                       if outcome.used_family is not None else None),
                      outcome.connect_time_s,
                      outcome.success]
                     for outcome in session.outcomes],
    } for session in sessions]


def _decode_sessions(payload: list) -> List[SessionResult]:
    """Rebuild cached sessions; raises on any malformed entry."""
    sessions = []
    for data in payload:
        outcomes = [
            StepOutcome(
                delay_ms=int(delay_ms),
                used_family=(Family[family] if family is not None else None),
                connect_time_s=(float(connect_s)
                                if connect_s is not None else None),
                success=bool(success))
            for delay_ms, family, connect_s, success in data["outcomes"]]
        sessions.append(SessionResult(
            browser=data["browser"], os_name=data["os_name"],
            repetition=int(data["repetition"]), outcomes=outcomes))
    return sessions


def _run_entry_sessions(
        payload: "Tuple[UAEntry, int, int, NetworkConditions]"
        ) -> List[SessionResult]:
    """Process-pool entry point: all repetitions of one UA entry.

    Each entry gets its own deployment seeded from the campaign seed
    and the entry label, and explicit session indices — results are a
    pure function of the payload, independent of worker scheduling.
    """
    entry, seed, repetitions, conditions = payload
    deployment = WebToolDeployment(
        seed=stable_run_seed(seed, "web-entry", entry.label))
    profile = profile_for_entry(entry)
    sessions: List[SessionResult] = []
    for repetition in range(repetitions):
        session = WebToolSession(
            deployment, profile,
            os_name=f"{entry.os_name} {entry.os_version}".strip(),
            repetition=repetition, conditions=conditions,
            session_index=repetition + 1)
        sessions.append(session.run())
    return sessions


class WebCampaign:
    """Runs sessions for a set of UA entries on one deployment."""

    def __init__(self, seed: int = 0, repetitions: int = 10,
                 conditions: Optional[NetworkConditions] = None) -> None:
        self.seed = seed
        self.repetitions = repetitions
        self.conditions = conditions or NetworkConditions.residential()

    def store_keys(self, entries: "Tuple[UAEntry, ...]" = TABLE5_MATRIX,
                   repetitions: Optional[int] = None) -> "List[str]":
        """The content address of every entry's session list, without
        running anything (``repro cache gc`` marks these as live)."""
        reps = repetitions if repetitions is not None else self.repetitions
        return [CampaignStore.key("web-campaign", self.seed, entry,
                                  reps, self.conditions)
                for entry in entries]

    def run(self, entries: "Tuple[UAEntry, ...]" = TABLE5_MATRIX,
            repetitions: Optional[int] = None,
            workers: Optional[int] = None,
            store: Optional[CampaignStore] = None) -> CampaignResult:
        """Visit the tool for every entry × repetition.

        Every entry runs on its own deployment seeded from the
        campaign seed and the entry label, with explicit session
        indices — the campaign result is a pure function of
        ``(seed, entries, repetitions, conditions)``, independent of
        process history.  ``workers=N`` fans entries out over N
        processes and returns *identical* results in entry order.

        That purity makes entries cacheable exactly like testbed runs:
        with ``store``, each entry's sessions are keyed by the full
        ``(seed, entry, repetitions, conditions)`` content digest, so
        a re-run with unchanged configuration replays from cache and
        only changed entries execute.
        """
        result = CampaignResult()
        reps = repetitions if repetitions is not None else self.repetitions
        entry_sessions: List[Optional[List[SessionResult]]] = \
            [None] * len(entries)
        keys: List[Optional[str]] = [None] * len(entries)
        pending: List[int] = []
        cached_entries: dict = {}
        if store is not None:
            keys = [store.key("web-campaign", self.seed, entry, reps,
                              self.conditions) for entry in entries]
            # One batch lookup over the whole matrix: warm campaigns
            # resolve through the per-shard sidecar index.
            cached_entries = store.get_many(
                [key for key in keys if key is not None],
                _decode_sessions)
        for index, entry in enumerate(entries):
            if store is not None:
                cached = cached_entries.get(keys[index])
                if cached is not None:
                    entry_sessions[index] = cached
                    continue
            pending.append(index)
        payloads = [(entries[index], self.seed, reps, self.conditions)
                    for index in pending]
        fresh = map_maybe_parallel(_run_entry_sessions, payloads, workers)
        for index, sessions in zip(pending, fresh):
            entry_sessions[index] = sessions
            if store is not None:
                store.put(keys[index], _encode_sessions(sessions))
        for sessions in entry_sessions:
            assert sessions is not None
            for session in sessions:
                result.add(session)
        return result
