"""The web tool's fixed delay ladder (§4.3(ii), App. Figure 4).

"The nature of this web deployment does not allow resetting client and
server configurations after each measurement.  Therefore, we use a
fixed set of 18 delays between 0 and 5 s.  Each delay has dedicated
IPv4 and IPv6 addresses assigned ... Furthermore, we associate a
dedicated domain to each delay-address pair to prevent caching."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..simnet.addr import IPAddress, parse_address

#: The 18 configured IPv6 delays in milliseconds (0 … 5 s).  The grid is
#: dense around common CAD values (200/250/300 ms) and reaches 2 s
#: (Safari's local CAD) and 5 s (the ladder ceiling).
DELAY_LADDER_MS: Tuple[int, ...] = (
    0, 25, 50, 100, 150, 200, 250, 300, 350, 400,
    500, 750, 1000, 1250, 1500, 1750, 2000, 5000)

assert len(DELAY_LADDER_MS) == 18

#: Domain under which each delay's dedicated name lives.
WEBTOOL_DOMAIN = "web.he-test.example"


@dataclass(frozen=True)
class DelayStep:
    """One rung of the ladder: delay + dedicated addresses + domain."""

    delay_ms: int
    v4_address: IPAddress
    v6_address: IPAddress
    domain: str

    def hostname(self, nonce: str) -> str:
        """A fresh per-measurement name under the step's domain."""
        return f"n{nonce}.{self.domain}"


def build_ladder(v4_prefix: str = "198.51.100.",
                 v6_prefix: str = "2001:db8:77::",
                 domain: str = WEBTOOL_DOMAIN,
                 delays_ms: Tuple[int, ...] = DELAY_LADDER_MS
                 ) -> List[DelayStep]:
    """Assign dedicated address pairs and domains to every delay."""
    steps: List[DelayStep] = []
    for index, delay_ms in enumerate(delays_ms):
        steps.append(DelayStep(
            delay_ms=delay_ms,
            v4_address=parse_address(f"{v4_prefix}{index + 10}"),
            v6_address=parse_address(f"{v6_prefix}{index + 10:x}"),
            domain=f"t{delay_ms}.{domain}"))
    return steps


def cad_interval_from_outcomes(outcomes: "List[Tuple[int, bool]]"
                               ) -> "Tuple[Optional[int], Optional[int]]":
    """Infer the CAD interval from (delay_ms, used_ipv6) outcomes.

    "The CAD can only be determined to be in the interval of the last
    delay using IPv6 and the first delay using IPv4", e.g. Safari's
    CAD ∈ (200, 250].  Returns ``(exclusive_low, inclusive_high)``;
    either end is None when unbounded (always v6 / always v4).
    """
    ordered = sorted(outcomes)
    last_v6: Optional[int] = None
    first_v4: Optional[int] = None
    for delay_ms, used_ipv6 in ordered:
        if used_ipv6:
            last_v6 = delay_ms
        elif first_v4 is None:
            first_v4 = delay_ms
    return last_v6, first_v4
