"""The web tool deployment: one server, 18 shaped address pairs.

A single simulated host carries every delay step's dedicated IPv4/IPv6
address pair, an echo web service answering on all of them, per-pair
netem rules delaying IPv6 traffic, and the authoritative DNS for the
per-delay domains (with wildcards, so each measurement can use a fresh
nonce hostname).
"""

from __future__ import annotations

from typing import List, Optional

from ..dns.auth import AuthoritativeServer
from ..dns.zone import Zone
from ..simnet.addr import AddressAllocator, Family
from ..simnet.host import Host
from ..simnet.netem import NetemFilter, NetemRule, NetemSpec
from ..simnet.network import Network, NetworkSegment
from ..testbed.topology import EchoWebServer
from .ladder import DELAY_LADDER_MS, DelayStep, WEBTOOL_DOMAIN, build_ladder

SERVER_DNS_V4 = "198.51.100.2"
WEB_PORT = 80


class WebToolDeployment:
    """The publicly reachable tool: server side of happy-eyeballs.net."""

    def __init__(self, network: Optional[Network] = None, seed: int = 0,
                 delays_ms=DELAY_LADDER_MS) -> None:
        self.network = network if network is not None else Network(seed=seed)
        self.sim = self.network.sim
        self.segment: NetworkSegment = self.network.add_segment(
            "internet", propagation_delay=0.0005)
        self.server: Host = self.network.add_host("webtool-server")
        self.ladder: List[DelayStep] = build_ladder(delays_ms=delays_ms)

        addresses = [SERVER_DNS_V4]
        for step in self.ladder:
            addresses.extend([step.v4_address, step.v6_address])
        self.server_iface = self.network.connect(self.server, self.segment,
                                                 addresses)
        self._apply_ladder_shaping()
        self.zone = self._build_zone()
        self.auth = AuthoritativeServer(self.server, [self.zone]).start()
        self.web = EchoWebServer(self.server, WEB_PORT).start()

        # Browser hosts get addresses from these pools, one pair per
        # session (different visitors come from different addresses).
        self._browser_v4 = AddressAllocator("203.0.113.0/24")
        self._browser_v6 = AddressAllocator("2001:db8:99::/64")

    # -- server-side configuration ----------------------------------------

    def _apply_ladder_shaping(self) -> None:
        """Per-step netem: delay IPv6 traffic of that step's pair."""
        for step in self.ladder:
            if step.delay_ms <= 0:
                continue
            self.server_iface.egress.add_rule(NetemRule(
                spec=NetemSpec(delay=step.delay_ms / 1000.0),
                filter=NetemFilter(src_addresses=[step.v6_address]),
                name=f"web-delay-{step.delay_ms}ms"))

    def _build_zone(self) -> Zone:
        zone = Zone(WEBTOOL_DOMAIN)
        for step in self.ladder:
            label = f"t{step.delay_ms}"
            zone.add_address(f"*.{label}", step.v4_address)
            zone.add_address(f"*.{label}", step.v6_address)
            zone.add_address(label, step.v4_address)
            zone.add_address(label, step.v6_address)
        # The RD test page: undelayed pair, test parameters in qnames.
        baseline = self.ladder[0]
        zone.add_address("*.rd", baseline.v4_address)
        zone.add_address("*.rd", baseline.v6_address)
        return zone

    @property
    def dns_address(self) -> str:
        return SERVER_DNS_V4

    def step_for_delay(self, delay_ms: int) -> DelayStep:
        for step in self.ladder:
            if step.delay_ms == delay_ms:
                return step
        raise KeyError(f"no ladder step with delay {delay_ms} ms")

    # -- browser attachment --------------------------------------------------

    def attach_browser_host(self, label: str) -> Host:
        """A fresh dual-stack host for one visiting browser session."""
        host = self.network.add_host(f"browser-{label}")
        self.network.connect(host, self.segment, [
            self._browser_v4.allocate(), self._browser_v6.allocate()])
        return host
