"""Web tool reporting: CAD intervals, consistency marks, Figure 4 art.

Turns sessions into what the tool's result page (App. Figure 4) shows
and into the "Consistency" column of Table 2.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from .campaign import BrowserAggregate
from .session import SessionResult


class ConsistencyMark(enum.Enum):
    """Table 2's consistency-between-methods column."""

    CONSISTENT = "observed as defined"           # "●"
    DEVIATION = "observed with RFC deviation"    # half mark (Firefox)
    INCONSISTENT = "not observed / inconsistent" # "○" (Safari)
    NOT_TESTED = "no web validation"

    @property
    def symbol(self) -> str:
        return {
            ConsistencyMark.CONSISTENT: "●",
            ConsistencyMark.DEVIATION: "◐",
            ConsistencyMark.INCONSISTENT: "○",
            ConsistencyMark.NOT_TESTED: "-",
        }[self]


def classify_consistency(aggregate: BrowserAggregate,
                         local_cad_ms: Optional[float]
                         ) -> ConsistencyMark:
    """Compare web behaviour against the local result (§5.1 criteria).

    * Safari-style: a majority of sessions non-monotonic, or widely
      varying CAD intervals → inconsistent.
    * Firefox-style: a small share of sessions with flips/outliers →
      deviation.
    * otherwise: the web CAD interval brackets the local CAD →
      consistent.
    """
    if aggregate.repetitions == 0:
        return ConsistencyMark.NOT_TESTED
    inconsistent_share = (aggregate.inconsistent_sessions
                          / aggregate.repetitions)
    intervals = aggregate.cad_interval_spread()
    uppers = [high for _, high in intervals if high is not None]
    # A dynamic-CAD client's interval wanders across the whole ladder;
    # a fixed-CAD client's stays within a couple of adjacent rungs.
    upper_spread = (max(uppers) - min(uppers)) if uppers else 0
    if inconsistent_share >= 0.5 or upper_spread > 500:
        return ConsistencyMark.INCONSISTENT
    if inconsistent_share > 0.2:
        return ConsistencyMark.DEVIATION
    if local_cad_ms is not None:
        # Ladder steps quantize the web CAD; allow half-step tolerance
        # so a CAD exactly on a rung (Chrome's 300 ms) stays consistent.
        tolerance = 25.0
        low, high = aggregate.modal_cad_interval()
        if low is not None and local_cad_ms <= low - tolerance:
            return ConsistencyMark.DEVIATION
        if high is not None and local_cad_ms > high + tolerance:
            return ConsistencyMark.DEVIATION
    if inconsistent_share > 0.0:
        return ConsistencyMark.DEVIATION
    return ConsistencyMark.CONSISTENT


def format_cad_interval(interval: "Tuple[Optional[int], Optional[int]]"
                        ) -> str:
    """Render like the paper: ``CAD ∈ (200, 250]``."""
    low, high = interval
    if low is None and high is None:
        return "CAD unknown (no outcomes)"
    if high is None:
        return f"CAD > {low} ms (IPv6 on every step)"
    if low is None:
        return f"CAD <= {high} ms (IPv4 from the first step)"
    return f"CAD in ({low}, {high}] ms"


def render_session_ladder(session: SessionResult) -> str:
    """ASCII version of the tool's result page (App. Figure 4a)."""
    lines = [f"{session.browser} on {session.os_name} "
             f"(repetition {session.repetition})",
             f"{'delay':>9}  outcome"]
    for outcome in sorted(session.outcomes, key=lambda o: o.delay_ms):
        if outcome.used_ipv6 is None:
            mark = "FAILED"
        elif outcome.used_ipv6:
            mark = "IPv6  ######"
        else:
            mark = "IPv4  ......"
        lines.append(f"{outcome.delay_ms:>6} ms  {mark}")
    lines.append(format_cad_interval(session.cad_interval()))
    if not session.is_monotonic():
        lines.append("note: inconsistent run (IPv6 after IPv4)")
    return "\n".join(lines)
