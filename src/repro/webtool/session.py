"""One browser session visiting the web tool.

The session walks the delay ladder, fetching one fresh nonce hostname
per step, and determines the used IP family *client-side* from the
echoed source address — exactly how the real tool evaluates results
(§4.3(ii)).  Real-world network conditions (base delay, jitter) and
per-session connection history (feeding Safari's dynamic CAD) make
web results deviate from lab results exactly as the paper observes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..clients.base import Client
from ..clients.profile import ClientProfile
from ..core.sortlist import HistoryStore
from ..simnet.addr import Family
from ..simnet.netem import NetemRule, NetemSpec
from .ladder import cad_interval_from_outcomes
from .server import WebToolDeployment

_session_counter = itertools.count(1)


@dataclass(frozen=True)
class NetworkConditions:
    """Per-session access network model (both families equally)."""

    one_way_delay: float = 0.010
    jitter: float = 0.002
    loss: float = 0.0

    @classmethod
    def lab_like(cls) -> "NetworkConditions":
        return cls(one_way_delay=0.0005, jitter=0.0, loss=0.0)

    @classmethod
    def residential(cls) -> "NetworkConditions":
        return cls(one_way_delay=0.015, jitter=0.004)


@dataclass
class StepOutcome:
    """Client-side result for one ladder step."""

    delay_ms: int
    used_family: Optional[Family]
    connect_time_s: Optional[float]
    success: bool

    @property
    def used_ipv6(self) -> Optional[bool]:
        if self.used_family is None:
            return None
        return self.used_family is Family.V6


@dataclass
class SessionResult:
    """One full ladder pass by one browser."""

    browser: str
    os_name: str
    repetition: int
    outcomes: List[StepOutcome] = field(default_factory=list)

    def cad_interval(self) -> "Tuple[Optional[int], Optional[int]]":
        pairs = [(o.delay_ms, o.used_ipv6) for o in self.outcomes
                 if o.used_ipv6 is not None]
        return cad_interval_from_outcomes(
            [(d, used) for d, used in pairs])

    def is_monotonic(self) -> bool:
        """True when no IPv6 outcome follows an IPv4 outcome.

        The paper calls runs violating this "inconsistencies": IPv4 at
        a smaller delay but IPv6 again at a larger one.
        """
        seen_v4 = False
        for outcome in sorted(self.outcomes, key=lambda o: o.delay_ms):
            if outcome.used_ipv6 is None:
                continue
            if not outcome.used_ipv6:
                seen_v4 = True
            elif seen_v4:
                return False
        return True


class WebToolSession:
    """Drives one browser through the ladder."""

    def __init__(self, deployment: WebToolDeployment,
                 profile: ClientProfile,
                 os_name: Optional[str] = None,
                 repetition: int = 0,
                 conditions: Optional[NetworkConditions] = None,
                 session_index: Optional[int] = None) -> None:
        self.deployment = deployment
        self.profile = profile
        self.os_name = os_name or profile.os_hint
        self.repetition = repetition
        self.conditions = conditions or NetworkConditions.residential()
        # An explicit index makes the session independent of global
        # construction order — campaigns pass one so results are a
        # pure function of their configuration, not process history.
        index = (session_index if session_index is not None
                 else next(_session_counter))
        self.host = deployment.attach_browser_host(
            f"{index}-{profile.name.lower().replace(' ', '')}")
        self._apply_conditions()
        self._rng = deployment.sim.derive_rng(
            f"web-session:{profile.full_name}:{self.os_name}:"
            f"{repetition}:{index}")
        self.history = HistoryStore()
        self.client = Client(self.host, profile,
                             [deployment.dns_address],
                             history=self.history)

    # -- session environment -------------------------------------------------

    def _apply_conditions(self) -> None:
        iface = next(iter(self.host.interfaces.values()))
        spec = NetemSpec(delay=self.conditions.one_way_delay,
                         jitter=self.conditions.jitter,
                         loss=self.conditions.loss)
        iface.egress.add_rule(NetemRule(spec=spec, name="access-network"))

    def _prime_dynamic_cad_history(self, step) -> None:
        """Give Safari's dynamic CAD a realistic, noisy RTT history.

        In the wild, Safari has per-destination RTT history from
        earlier traffic; its effective CAD (≈2×SRTT, clamped) therefore
        varies widely between measurements — the paper's "dynamic,
        unpredictable approach" with CADs from 50 ms up to seconds.
        A fraction of destinations has no history at all, yielding the
        maximum CAD.
        """
        if not self.profile.params.dynamic_cad:
            return
        if self._rng.random() < 0.25:
            return  # no prior traffic toward this destination
        # Log-normal-ish spread around tens of milliseconds.
        srtt = min(2.5, self._rng.lognormvariate(-2.6, 1.1))
        now = self.deployment.sim.now
        self.history.record_success(step.v6_address, srtt, now)
        self.history.record_success(step.v4_address, srtt, now)

    # -- the ladder walk --------------------------------------------------------

    def run(self) -> SessionResult:
        result = SessionResult(browser=self.profile.full_name,
                               os_name=self.os_name,
                               repetition=self.repetition)
        sim = self.deployment.sim
        for step in self.deployment.ladder:
            self._prime_dynamic_cad_history(step)
            nonce = f"{self._rng.randrange(16**6):06x}"
            hostname = step.hostname(nonce)
            process = self.client.fetch(hostname)
            process.defused = True
            sim.run(until=sim.now + 30.0)
            if process.triggered and process.ok:
                fetch = process.value
                result.outcomes.append(StepOutcome(
                    delay_ms=step.delay_ms,
                    used_family=fetch.used_family,
                    connect_time_s=fetch.he.time_to_connect,
                    success=fetch.success))
            else:
                result.outcomes.append(StepOutcome(
                    delay_ms=step.delay_ms, used_family=None,
                    connect_time_s=None, success=False))
        return result
