"""The web-based testing tool (§4.3(ii), App. Figure 4).

A fixed 18-step delay ladder with dedicated dual-stack address pairs
and per-delay domains, an echo server revealing the used source
address to the client, session drivers for visiting browsers, and
campaign aggregation over the Table 5 browser/OS matrix.
"""

from .campaign import (BrowserAggregate, CampaignResult, TABLE5_MATRIX,
                       UAEntry, WebCampaign, profile_for_entry)
from .ladder import (DELAY_LADDER_MS, DelayStep, WEBTOOL_DOMAIN,
                     build_ladder, cad_interval_from_outcomes)
from .rd_page import (RD_DELAY_STEPS_MS, RDProbeOutcome, RDSessionResult,
                      RDWebSession, render_rd_session)
from .report import (ConsistencyMark, classify_consistency,
                     format_cad_interval, render_session_ladder)
from .server import WebToolDeployment
from .session import (NetworkConditions, SessionResult, StepOutcome,
                      WebToolSession)

__all__ = [
    "BrowserAggregate", "CampaignResult", "ConsistencyMark",
    "DELAY_LADDER_MS", "DelayStep", "NetworkConditions",
    "RD_DELAY_STEPS_MS", "RDProbeOutcome", "RDSessionResult",
    "RDWebSession", "SessionResult", "StepOutcome", "TABLE5_MATRIX",
    "UAEntry", "WEBTOOL_DOMAIN", "WebCampaign", "WebToolDeployment",
    "WebToolSession", "build_ladder", "cad_interval_from_outcomes",
    "classify_consistency", "format_cad_interval", "profile_for_entry",
    "render_rd_session", "render_session_ladder",
]
