"""The web tool's Resolution Delay test page (App. Figure 4b).

The RD page exercises the DNS side: each probe fetches a hostname whose
first label encodes the test parameters for the custom authoritative
server — ``d<ms>-aaaa-<nonce>.rd.web.he-test.example`` delays the AAAA
answer by ``<ms>`` — and the page records, client-side, which family
served the response and how long the fetch took.

A client implementing the RFC 8305 Resolution Delay (Safari) flips to
IPv4 after ~50 ms once the AAAA answer is slower than that; a client
waiting for both answers (everyone else) sticks with IPv6 but stalls
for the full injected delay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..clients.base import Client
from ..clients.profile import ClientProfile
from ..dns.auth import TestParams
from ..simnet.addr import Family
from .ladder import WEBTOOL_DOMAIN
from .server import WebToolDeployment
from .session import NetworkConditions, WebToolSession

#: AAAA delays probed by the RD page (ms).
RD_DELAY_STEPS_MS: Tuple[int, ...] = (0, 25, 50, 100, 250, 500, 1000,
                                      2000)

_rd_counter = itertools.count(1)


@dataclass
class RDProbeOutcome:
    """One RD-page probe, evaluated client-side."""

    aaaa_delay_ms: int
    used_family: Optional[Family]
    fetch_time_s: Optional[float]
    success: bool


@dataclass
class RDSessionResult:
    """One full RD-page pass."""

    browser: str
    outcomes: List[RDProbeOutcome] = field(default_factory=list)

    def flip_delay_ms(self) -> Optional[int]:
        """Smallest AAAA delay at which the client used IPv4.

        ``None`` means the client never left IPv6 — the signature of a
        client without any resolution delay.
        """
        v4 = sorted(o.aaaa_delay_ms for o in self.outcomes
                    if o.used_family is Family.V4)
        return v4[0] if v4 else None

    def max_stall_s(self) -> Optional[float]:
        times = [o.fetch_time_s for o in self.outcomes
                 if o.fetch_time_s is not None]
        return max(times) if times else None

    def implements_rd(self) -> bool:
        """Heuristic the result page shows: flips early, never stalls."""
        flip = self.flip_delay_ms()
        stall = self.max_stall_s()
        return (flip is not None and flip <= 100
                and stall is not None and stall < 0.500)


class RDWebSession:
    """Runs the RD test page once for one browser."""

    def __init__(self, deployment: WebToolDeployment,
                 profile: ClientProfile,
                 conditions: Optional[NetworkConditions] = None,
                 delays_ms: Tuple[int, ...] = RD_DELAY_STEPS_MS) -> None:
        self.deployment = deployment
        self.profile = profile
        self.delays_ms = delays_ms
        index = next(_rd_counter)
        self.host = deployment.attach_browser_host(f"rd{index}")
        conditions = conditions or NetworkConditions.lab_like()
        iface = next(iter(self.host.interfaces.values()))
        from ..simnet.netem import NetemRule, NetemSpec

        iface.egress.add_rule(NetemRule(
            spec=NetemSpec(delay=conditions.one_way_delay,
                           jitter=conditions.jitter,
                           loss=conditions.loss),
            name="access-network"))
        self._rng = deployment.sim.derive_rng(
            f"rd-session:{profile.full_name}:{index}")
        self.client = Client(self.host, profile,
                             [deployment.dns_address])

    def run(self) -> RDSessionResult:
        result = RDSessionResult(browser=self.profile.full_name)
        sim = self.deployment.sim
        for delay_ms in self.delays_ms:
            nonce = f"{self._rng.randrange(16**6):06x}"
            params = TestParams(delay_ms=delay_ms, delayed_rtype="aaaa",
                                nonce=nonce)
            hostname = str(params.query_name(
                f"rd.{WEBTOOL_DOMAIN}")).rstrip(".")
            started = sim.now
            process = self.client.fetch(hostname)
            process.defused = True
            sim.run(until=sim.now + 30.0)
            if process.triggered and process.ok:
                fetch = process.value
                result.outcomes.append(RDProbeOutcome(
                    aaaa_delay_ms=delay_ms,
                    used_family=fetch.used_family,
                    fetch_time_s=fetch.he.time_to_connect,
                    success=fetch.success))
            else:
                result.outcomes.append(RDProbeOutcome(
                    aaaa_delay_ms=delay_ms, used_family=None,
                    fetch_time_s=None, success=False))
        return result


def render_rd_session(result: RDSessionResult) -> str:
    """ASCII version of the RD result page (App. Figure 4b)."""
    lines = [f"{result.browser} — Resolution Delay test",
             f"{'AAAA delay':>11}  {'family':>6}  {'fetch time':>11}"]
    for outcome in result.outcomes:
        family = (outcome.used_family.label
                  if outcome.used_family is not None else "FAILED")
        time_text = (f"{outcome.fetch_time_s * 1000:8.1f} ms"
                     if outcome.fetch_time_s is not None else "-")
        lines.append(f"{outcome.aaaa_delay_ms:>8} ms  {family:>6}  "
                     f"{time_text:>11}")
    flip = result.flip_delay_ms()
    if result.implements_rd():
        lines.append(f"resolution delay implemented: flips to IPv4 at "
                     f"~{flip} ms AAAA delay")
    elif flip is None:
        lines.append("no resolution delay: stays on IPv6 and stalls for "
                     "the full AAAA delay")
    return "\n".join(lines)
