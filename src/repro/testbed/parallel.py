"""Parallel campaign execution — fan runs out over worker processes.

The paper's methodology is brute-force scale: thousands of isolated
testbed runs per figure (a 5 ms-step CAD sweep over 17 client versions
alone is ~1400 runs).  Runs are perfectly independent — each gets a
fresh :class:`~repro.testbed.topology.LocalTestbed` seeded by a stable
digest of its coordinates — so the campaign is embarrassingly
parallel.  :class:`CampaignExecutor` enumerates the
``(case, client, value_ms, repetition)`` run specs in the exact order
of the serial loop, fans contiguous chunks of them out over the
process-global pool from :mod:`repro.fanout` (each worker builds its
own testbeds, so runs stay perfectly isolated), and merges the
:class:`RunRecord`s back in deterministic spec order.  The result is
record-for-record identical to ``TestRunner.run()`` serial output.

With a :class:`~repro.testbed.store.CampaignStore` attached to the
runner, the executor resolves cache hits in the *parent* process —
only the misses travel to the pool, and a fully warm campaign never
touches the pool at all.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, Iterator, List, Sequence,
                    Tuple)

from dataclasses import dataclass

from ..fanout import shared_map
from .resilience import failure_record, resilient_map
from .store import decode_record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import ResultSet, RunRecord, TestRunner

#: Chunks per worker: small enough to load-balance uneven run costs
#: (address-selection runs take far longer than CAD runs), large
#: enough to amortize per-task pickling of the runner configuration.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class RunSpec:
    """Coordinates of one isolated run, by index into the runner config."""

    case_index: int
    client_index: int
    value_ms: int
    repetition: int


def enumerate_specs(runner: "TestRunner") -> List[RunSpec]:
    """All run specs, in the exact order of the serial campaign loop.

    Delegates to :meth:`~repro.testbed.runner.TestRunner
    .enumerate_specs` — the runner owns its campaign shape (cross
    product by default; the population sampler pairs case *i* with
    client *i*), and executor, serial stream, and key planning all
    read the same enumeration.  Duck-typed runners without the method
    get the historical cross product.
    """
    method = getattr(runner, "enumerate_specs", None)
    if method is not None:
        return method()
    specs: List[RunSpec] = []
    for case_index, case in enumerate(runner.cases):
        for client_index in range(len(runner.clients)):
            for value_ms in case.sweep:
                for repetition in range(case.repetitions):
                    specs.append(RunSpec(case_index, client_index,
                                         value_ms, repetition))
    return specs


def spec_keys(runner: "TestRunner",
              specs: "Sequence[RunSpec]") -> "List[str]":
    """The store key of each spec, memoizing the per-(case, client)
    configuration digest — shared by the executor's hit planning and
    by anything that needs a campaign's addresses without running it."""
    digests: "Dict[Tuple[int, int], str]" = {}
    keys: "List[str]" = []
    for spec in specs:
        pair = (spec.case_index, spec.client_index)
        digest = digests.get(pair)
        if digest is None:
            digest = runner.config_digest_for(
                runner.cases[spec.case_index],
                runner.clients[spec.client_index])
            digests[pair] = digest
        keys.append(runner.store_key_for(
            runner.cases[spec.case_index],
            runner.clients[spec.client_index],
            spec.value_ms, spec.repetition, config_digest=digest))
    return keys


def _execute_chunk(payload: "Tuple[TestRunner, Sequence[RunSpec]]"
                   ) -> "List[RunRecord]":
    """Worker entry point: run one chunk of specs in this process.

    The runner arrives pickled (profiles, cases, and knobs are all
    plain frozen dataclasses); every run builds its own testbed, so
    nothing is shared between runs, let alone between workers.  Cache
    lookups happen in the parent — workers always execute for real.
    """
    runner, specs = payload
    records = []
    for spec in specs:
        records.append(runner.run_single(
            runner.cases[spec.case_index],
            runner.clients[spec.client_index],
            spec.value_ms, spec.repetition))
    return records


def _execute_entry(payload: "Tuple[TestRunner, RunSpec]",
                   attempt: int) -> "RunRecord":
    """Worker entry point for resilient dispatch: one spec, one run.

    Per-entry (not per-chunk) so that a crash, hang, or retry stays
    attributable to a single spec.  The attempt number comes from the
    parent's dispatcher and gates the fault plan — a crash spec with
    ``attempts=1`` kills this worker on attempt 0 and runs clean on
    the retry, which is what makes chaos campaigns heal into
    byte-identical results.
    """
    runner, spec = payload
    case = runner.cases[spec.case_index]
    profile = runner.clients[spec.client_index]
    res = getattr(runner, "resilience", None)
    if res is not None and res.fault_plan is not None:
        fault = res.fault_plan.entry_fault(
            (case.name, profile.full_name, spec.value_ms,
             spec.repetition), attempt)
        if fault is not None:
            from ..faults import inject_entry_fault

            inject_entry_fault(fault, in_worker=True)
    return runner.run_single(case, profile, spec.value_ms,
                             spec.repetition)


class CampaignExecutor:
    """Fans a :class:`TestRunner` campaign out over worker processes."""

    def __init__(self, runner: "TestRunner", workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.runner = runner
        self.workers = workers

    def chunks(self) -> "List[List[RunSpec]]":
        """Contiguous spec chunks, preserving enumeration order."""
        return self._chunked(enumerate_specs(self.runner))

    def _chunked(self, specs: "List[RunSpec]") -> "List[List[RunSpec]]":
        target = max(1, self.workers * _CHUNKS_PER_WORKER)
        size = max(1, -(-len(specs) // target))  # ceil division
        return [specs[i:i + size] for i in range(0, len(specs), size)]

    def execute(self) -> "ResultSet":
        from .runner import ResultSet

        results = ResultSet()
        for record in self.stream():
            results.add(record)
        return results

    def stream(self) -> "Iterator[RunRecord]":
        """Records in enumeration order; hits resolved parent-side.

        With a store on the runner, the parent resolves every cache
        hit up front through :meth:`~repro.testbed.store.CampaignStore
        .get_many` — one sidecar-index read per touched shard instead
        of one stat + JSON read per spec — and chunks only the misses
        onto the pool.  A corrupted or torn entry simply fails the
        batch lookup for its key and re-executes (and re-stores) like
        any other miss.  Resolved hits are popped as they are merged,
        so memory decays as the stream drains; fresh records are
        written back by the parent — a single writer, so worker
        processes never touch the cache.
        """
        runner = self.runner
        specs = enumerate_specs(runner)
        store = runner.store
        res = getattr(runner, "resilience", None)
        if store is None:
            yield from self._execute_pending(specs)
            return
        keys = spec_keys(runner, specs)
        prefetched = store.get_many(keys, decode_record)
        pending = [spec for spec, key in zip(specs, keys)
                   if key not in prefetched]
        fresh = self._execute_pending(pending)
        for spec, key in zip(specs, keys):
            record = prefetched.pop(key, None)
            if res is not None:
                res.note_lookup(key, hit=record is not None)
            if record is None:
                record = next(fresh)
                if res is not None:
                    res.store_fresh(store, key, record)
                else:
                    store.put_record(key, record)
            yield record

    def _execute_pending(self, specs: "List[RunSpec]"
                         ) -> "Iterator[RunRecord]":
        """Execute specs in order — over the shared pool when there is
        enough work to split, serially otherwise (a fully warm
        campaign has no pending specs and never touches the pool).

        A resilient runner routes through :func:`resilient_map`
        instead of the chunked fast path: per-entry futures cost more
        pickling, but are what make crashes attributable, hangs
        preemptible, and retries per-spec.
        """
        res = getattr(self.runner, "resilience", None)
        if res is not None and res.wants_resilient_dispatch and specs:
            yield from self._execute_resilient(specs)
            return
        chunks = self._chunked(specs) if specs else []
        if len(chunks) <= 1 or self.workers == 1:
            for chunk in chunks:
                yield from _execute_chunk((self.runner, chunk))
            return
        payloads = [(self.runner, chunk) for chunk in chunks]
        # shared_map yields chunk results in submission order, which is
        # enumeration order — the merge is deterministic by design.
        for chunk_records in shared_map(_execute_chunk, payloads,
                                        self.workers):
            yield from chunk_records

    def _execute_resilient(self, specs: "List[RunSpec]"
                           ) -> "Iterator[RunRecord]":
        runner = self.runner
        res = runner.resilience
        assert res is not None
        res.manifest.dispatched += len(specs)
        payloads = [(runner, spec) for spec in specs]

        def describe(payload: "Tuple[TestRunner, RunSpec]") -> str:
            _, spec = payload
            case = runner.cases[spec.case_index]
            profile = runner.clients[spec.client_index]
            return (f"{case.name}/{profile.full_name}"
                    f"/v{spec.value_ms}/r{spec.repetition}")

        def fallback(payload, failure):
            _, spec = payload
            return failure_record(runner.cases[spec.case_index],
                                  runner.clients[spec.client_index],
                                  spec.value_ms, spec.repetition, failure)

        yield from resilient_map(_execute_entry, payloads, self.workers,
                                 res, describe, fallback)
