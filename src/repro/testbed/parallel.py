"""Parallel campaign execution — fan runs out over worker processes.

The paper's methodology is brute-force scale: thousands of isolated
testbed runs per figure (a 5 ms-step CAD sweep over 17 client versions
alone is ~1400 runs).  Runs are perfectly independent — each gets a
fresh :class:`~repro.testbed.topology.LocalTestbed` seeded by a stable
digest of its coordinates — so the campaign is embarrassingly
parallel.  :class:`CampaignExecutor` enumerates the
``(case, client, value_ms, repetition)`` run specs in the exact order
of the serial loop, fans contiguous chunks of them out over a
``ProcessPoolExecutor`` (each worker builds its own testbeds, so runs
stay perfectly isolated), and merges the :class:`RunRecord`s back in
deterministic spec order.  The result is record-for-record identical
to ``TestRunner.run()`` serial output.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import ResultSet, RunRecord, TestRunner

#: Chunks per worker: small enough to load-balance uneven run costs
#: (address-selection runs take far longer than CAD runs), large
#: enough to amortize per-task pickling of the runner configuration.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class RunSpec:
    """Coordinates of one isolated run, by index into the runner config."""

    case_index: int
    client_index: int
    value_ms: int
    repetition: int


def enumerate_specs(runner: "TestRunner") -> List[RunSpec]:
    """All run specs, in the exact order of the serial campaign loop."""
    specs: List[RunSpec] = []
    for case_index, case in enumerate(runner.cases):
        for client_index in range(len(runner.clients)):
            for value_ms in case.sweep:
                for repetition in range(case.repetitions):
                    specs.append(RunSpec(case_index, client_index,
                                         value_ms, repetition))
    return specs


def _execute_chunk(payload: "Tuple[TestRunner, Sequence[RunSpec]]"
                   ) -> "List[RunRecord]":
    """Worker entry point: run one chunk of specs in this process.

    The runner arrives pickled (profiles, cases, and knobs are all
    plain frozen dataclasses); every run builds its own testbed, so
    nothing is shared between runs, let alone between workers.
    """
    runner, specs = payload
    records = []
    for spec in specs:
        records.append(runner.run_single(
            runner.cases[spec.case_index],
            runner.clients[spec.client_index],
            spec.value_ms, spec.repetition))
    return records


class CampaignExecutor:
    """Fans a :class:`TestRunner` campaign out over worker processes."""

    def __init__(self, runner: "TestRunner", workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.runner = runner
        self.workers = workers

    def chunks(self) -> "List[List[RunSpec]]":
        """Contiguous spec chunks, preserving enumeration order."""
        specs = enumerate_specs(self.runner)
        target = max(1, self.workers * _CHUNKS_PER_WORKER)
        size = max(1, -(-len(specs) // target))  # ceil division
        return [specs[i:i + size] for i in range(0, len(specs), size)]

    def execute(self) -> "ResultSet":
        from .runner import ResultSet

        chunks = self.chunks()
        results = ResultSet()
        if len(chunks) <= 1 or self.workers == 1:
            for chunk in chunks:
                for record in _execute_chunk((self.runner, chunk)):
                    results.add(record)
            return results
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            payloads = [(self.runner, chunk) for chunk in chunks]
            # map() yields chunk results in submission order, which is
            # enumeration order — the merge is deterministic by design.
            for chunk_records in pool.map(_execute_chunk, payloads):
                for record in chunk_records:
                    results.add(record)
        return results
