"""The test runner: cases × configurations × clients (App. Figure 3).

For every (test case, sweep value, client, repetition) the runner
builds a *fresh* testbed and client — the simulation equivalent of the
paper's "drop and create a new container" state reset — executes the
run, and collects black-box observations from the packet capture.

Campaigns can be consumed three ways:

* :meth:`TestRunner.run` — materialize every record in a
  :class:`ResultSet` (the historical interface);
* :meth:`TestRunner.stream` — an iterator of records in deterministic
  enumeration order, so cold million-run campaigns never hold every
  :class:`RunRecord` in memory (warm cache hits resolve in one batch
  and drain as the stream advances);
* either of the above with a :class:`~repro.testbed.store.CampaignStore`
  attached, in which case runs whose coordinates and configuration are
  unchanged come back from the content-addressed cache instead of
  re-executing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from statistics import median
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List,
                    Mapping, Optional, Sequence, Tuple)

from ..clients.base import Client
from ..clients.profile import ClientProfile
from ..core.sortlist import HistoryStore
from ..seeding import stable_run_seed
from ..simnet.addr import Family
from ..simnet.capture import PacketCapture
from ..simnet.packet import Protocol
from .config import SweepSpec, TestCaseConfig, TestCaseKind
from .inference import CaptureObservation
from .modules import (AddressSelectionModule, CaptureModule, ServiceModule,
                      modules_for)
from .resilience import Resilience, execute_with_retries, failure_record
from .store import CampaignStore, config_digest, decode_record
from .topology import LocalTestbed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .parallel import RunSpec


#: Placeholder sweep substituted into a case before digesting its
#: configuration: the actual sweep values (and repetition count) are
#: campaign shape, not run configuration — see
#: :meth:`TestRunner.config_digest_for`.
_NEUTRAL_SWEEP = SweepSpec.fixed(0)


@dataclass
class RunRecord:
    """Everything observed in one test run."""

    case: str
    kind: TestCaseKind
    client: str
    value_ms: int
    repetition: int
    completed: bool
    error: Optional[str] = None
    winning_family: Optional[Family] = None
    winning_protocol: Optional[Protocol] = None
    cad_s: Optional[float] = None
    rd_s: Optional[float] = None
    time_to_first_attempt_s: Optional[float] = None
    aaaa_first: Optional[bool] = None
    queried_https: bool = False
    attempts: List[Tuple[float, Family]] = field(default_factory=list)
    attempts_v4: int = 0
    attempts_v6: int = 0
    attempts_quic: int = 0
    first_attempt_port: Optional[int] = None
    duration_s: Optional[float] = None

    @property
    def first_attempt_family(self) -> Optional[Family]:
        """Family of the first wire attempt — the sortlist observable."""
        return self.attempts[0][1] if self.attempts else None


# -- aggregation helpers (shared by ResultSet and StreamingResultSet) ----------


class NonMonotonicSeriesError(ValueError):
    """A family-by-delay series has an IPv4 win *below* an IPv6 win.

    The paper calls such runs "inconsistencies": the client flapped,
    and reporting a single crossover delay would mask that.  The
    offending window is exposed via :attr:`flap_window`.
    """

    def __init__(self, client: str, case: str,
                 flap_window: "Tuple[int, int]") -> None:
        self.client = client
        self.case = case
        self.flap_window = flap_window
        super().__init__(
            f"family-by-delay series for client {client!r}, case {case!r} "
            f"is non-monotonic: IPv4 established at {flap_window[0]} ms "
            f"but IPv6 again at {flap_window[1]} ms — the client is "
            "flapping, so a single crossover delay is undefined")


def majority_family(votes: "Mapping[Family, int]") -> Family:
    """The family winning most repetitions; ties break toward IPv4.

    The tie-break is deterministic and conservative: ambiguous
    evidence never credits a client with IPv6 reachability.
    """
    best = max(votes.values())
    for family in (Family.V4, Family.V6):
        if votes.get(family, 0) == best:
            return family
    raise ValueError(f"no votes: {dict(votes)!r}")  # pragma: no cover


def series_flap_window(series: "Mapping[int, Family]"
                       ) -> "Optional[Tuple[int, int]]":
    """``(v4_delay, v6_delay)`` of a non-monotonic pair, or None.

    A series is non-monotonic when some IPv4 outcome sits at a smaller
    delay than some IPv6 outcome — the smallest such IPv4 delay and
    the largest such IPv6 delay bound the flapping window.
    """
    v4 = [delay for delay, family in series.items() if family is Family.V4]
    v6 = [delay for delay, family in series.items() if family is Family.V6]
    if v4 and v6 and min(v4) < max(v6):
        return (min(v4), max(v6))
    return None


def crossover_from_series(series: "Mapping[int, Family]", client: str,
                          case: str) -> Optional[int]:
    """Largest delay still established via IPv6, validated monotone.

    Raises :class:`NonMonotonicSeriesError` when the series flaps —
    silently taking the max would hide an IPv4 win below an IPv6 win.
    """
    flap = series_flap_window(series)
    if flap is not None:
        raise NonMonotonicSeriesError(client, case, flap)
    v6_delays = [delay for delay, family in series.items()
                 if family is Family.V6]
    return max(v6_delays) if v6_delays else None


def _majority_series(votes: "Mapping[int, Mapping[Family, int]]"
                     ) -> Dict[int, Family]:
    return {value_ms: majority_family(per_value)
            for value_ms, per_value in votes.items() if per_value}


@dataclass
class ResultSet:
    """All runs of a campaign, with the aggregations the paper reports."""

    records: List[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def for_client(self, client: str) -> List[RunRecord]:
        return [r for r in self.records if r.client == client]

    def for_case(self, case: str) -> List[RunRecord]:
        return [r for r in self.records if r.case == case]

    def median_cad(self, client: str) -> Optional[float]:
        values = [r.cad_s for r in self.for_client(client)
                  if r.cad_s is not None]
        return median(values) if values else None

    def family_by_delay(self, client: str, case: str
                        ) -> Dict[int, Family]:
        """delay_ms -> established family (the Figure 2 series).

        With ``repetitions > 1`` each delay aggregates by majority
        vote across repetitions (ties break toward IPv4), so the
        series is independent of record order — a last-write-wins
        dict would silently let the final repetition overwrite all
        earlier ones.
        """
        votes: Dict[int, Dict[Family, int]] = {}
        for record in self.records:
            if (record.client == client and record.case == case
                    and record.winning_family is not None):
                per_value = votes.setdefault(record.value_ms, {})
                per_value[record.winning_family] = \
                    per_value.get(record.winning_family, 0) + 1
        return _majority_series(votes)

    def is_monotonic(self, client: str, case: str) -> bool:
        """False when the series has an IPv4 win below an IPv6 win."""
        return series_flap_window(
            self.family_by_delay(client, case)) is None

    def observed_cad_crossover(self, client: str, case: str
                               ) -> Optional[int]:
        """Largest delay (ms) still established via IPv6.

        Raises :class:`NonMonotonicSeriesError` for flapping clients
        instead of silently reporting the max IPv6 delay.
        """
        return crossover_from_series(
            self.family_by_delay(client, case), client, case)

    def __len__(self) -> int:
        return len(self.records)


class StreamingResultSet:
    """Incremental aggregation over a stream of run records.

    Consumes records one at a time and keeps only aggregates — family
    votes per (client, case, delay) and CAD samples per client — so a
    million-run campaign aggregates in memory proportional to its
    *configuration space*, not its run count.  The aggregation API
    (:meth:`median_cad`, :meth:`family_by_delay`,
    :meth:`observed_cad_crossover`) matches :class:`ResultSet` and
    produces identical values, which the tests enforce.
    """

    def __init__(self) -> None:
        self.total = 0
        self.completed = 0
        self.errors = 0
        self._cads: Dict[str, List[float]] = {}
        self._votes: Dict[Tuple[str, str],
                          Dict[int, Dict[Optional[Family], int]]] = {}

    @classmethod
    def consume(cls, records: "Iterable[RunRecord]"
                ) -> "StreamingResultSet":
        """Drain ``records`` into a new aggregate, discarding each
        record as soon as its contribution is tallied."""
        aggregate = cls()
        for record in records:
            aggregate.add(record)
        return aggregate

    def add(self, record: RunRecord) -> None:
        self.total += 1
        if record.completed:
            self.completed += 1
        if record.error is not None:
            self.errors += 1
        if record.cad_s is not None:
            self._cads.setdefault(record.client, []).append(record.cad_s)
        per_case = self._votes.setdefault((record.client, record.case), {})
        per_value = per_case.setdefault(record.value_ms, {})
        per_value[record.winning_family] = \
            per_value.get(record.winning_family, 0) + 1

    def median_cad(self, client: str) -> Optional[float]:
        values = self._cads.get(client)
        return median(values) if values else None

    def family_by_delay(self, client: str, case: str
                        ) -> Dict[int, Family]:
        """Identical to :meth:`ResultSet.family_by_delay` (majority
        vote across repetitions, ties toward IPv4)."""
        votes = self._votes.get((client, case), {})
        real_votes: Dict[int, Dict[Family, int]] = {}
        for value_ms, per_value in votes.items():
            non_null = {family: count for family, count in per_value.items()
                        if family is not None}
            if non_null:
                real_votes[value_ms] = non_null
        return _majority_series(real_votes)

    def outcomes(self, client: str, case: str
                 ) -> "List[Tuple[int, Optional[Family]]]":
        """Sorted ``(delay_ms, majority family or None)`` — the
        Figure 2 row, including delays where no run established."""
        votes = self._votes.get((client, case), {})
        series = self.family_by_delay(client, case)
        return [(value_ms, series.get(value_ms))
                for value_ms in sorted(votes)]

    def is_monotonic(self, client: str, case: str) -> bool:
        return series_flap_window(
            self.family_by_delay(client, case)) is None

    def observed_cad_crossover(self, client: str, case: str
                               ) -> Optional[int]:
        return crossover_from_series(
            self.family_by_delay(client, case), client, case)

    def __len__(self) -> int:
        return self.total


class TestRunner:
    """Drives a measurement campaign over client profiles."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, clients: Sequence[ClientProfile],
                 cases: Sequence[TestCaseConfig], seed: int = 0,
                 resolver_timeout: float = 5.0,
                 hev3_flag: bool = False,
                 store: Optional[CampaignStore] = None,
                 resilience: "Optional[Resilience]" = None) -> None:
        if not clients:
            raise ValueError("runner needs at least one client profile")
        if not cases:
            raise ValueError("runner needs at least one test case")
        self.clients = list(clients)
        self.cases = list(cases)
        self.seed = seed
        self.resolver_timeout = resolver_timeout
        self.hev3_flag = hev3_flag
        self.store = store
        #: Fault-tolerant runtime bundle (retry policy, fault plan,
        #: campaign journal) — None keeps the historical fail-fast
        #: behavior on every path.
        self.resilience = resilience

    # -- campaign --------------------------------------------------------------

    def run(self, workers: Optional[int] = None) -> ResultSet:
        """Execute the campaign; ``workers=N`` fans runs out over N
        processes (default: serial, preserving exact current behavior).

        Run seeds are stable digests of the run coordinates, so the
        parallel path returns records identical to the serial path, in
        the same deterministic enumeration order.  With a ``store``
        attached, unchanged runs come back from the cache —
        byte-identical to fresh execution.
        """
        results = ResultSet()
        for record in self.stream(workers=workers):
            results.add(record)
        return results

    def stream(self, workers: Optional[int] = None
               ) -> "Iterator[RunRecord]":
        """The campaign as an iterator, in enumeration order.

        The streaming interface never materializes the full record
        list on the *execution* path: consumers aggregate
        incrementally (see :class:`StreamingResultSet`), so cold
        campaigns run in bounded memory regardless of size.  With a
        store attached, cache *hits* are resolved in one batch up
        front (the sidecar-index fast path) and popped as the stream
        drains — warm memory is proportional to the resolved hit
        count, traded deliberately for index-speed lookups.
        """
        if workers is not None:
            if workers < 1:
                raise ValueError(f"workers must be >= 1: {workers}")
            if workers > 1:
                from .parallel import CampaignExecutor

                return CampaignExecutor(self, workers=workers).stream()
        return self._stream_serial()

    def enumerate_specs(self) -> "List[RunSpec]":
        """Every run's coordinates, in campaign enumeration order.

        The default campaign shape is the full ``cases × clients``
        cross product; subclasses redefine the pairing (the population
        sampler pairs ``cases[i]`` with ``clients[i]``) and every
        consumer — serial streaming, the parallel executor, key
        planning, resilience — follows automatically.
        """
        from .parallel import RunSpec

        specs: "List[RunSpec]" = []
        for case_index, case in enumerate(self.cases):
            for client_index in range(len(self.clients)):
                for value_ms in case.sweep:
                    for repetition in range(case.repetitions):
                        specs.append(RunSpec(case_index, client_index,
                                             value_ms, repetition))
        return specs

    def _stream_serial(self) -> "Iterator[RunRecord]":
        specs = self.enumerate_specs()
        if self.store is None:
            for spec in specs:
                yield self._execute_serial(self.cases[spec.case_index],
                                           self.clients[spec.client_index],
                                           spec.value_ms, spec.repetition)
            return
        # Plan the campaign's full key universe up front and resolve
        # every hit in one batch — per-shard sidecar index reads
        # instead of one JSON stat/read per key.  Hits are popped as
        # they are yielded, so memory decays as the stream drains.
        from .parallel import spec_keys

        keys = spec_keys(self, specs)
        prefetched = self.store.get_many(keys, decode_record)
        res = self.resilience
        for spec, key in zip(specs, keys):
            case = self.cases[spec.case_index]
            profile = self.clients[spec.client_index]
            record = prefetched.pop(key, None)
            if res is not None:
                res.note_lookup(key, hit=record is not None)
            if record is None:
                record = self._execute_serial(
                    case, profile, spec.value_ms, spec.repetition)
                if res is not None:
                    res.store_fresh(self.store, key, record)
                else:
                    self.store.put_record(key, record)
            yield record

    def _execute_serial(self, case: TestCaseConfig,
                        profile: ClientProfile, value_ms: int,
                        repetition: int) -> RunRecord:
        """One in-process run, through the retry loop when a resilient
        runtime with retries/faults is attached.

        Injected faults fire with ``in_worker=False`` — a "worker
        crash" is simulated as a raised exception, since the serial
        worker *is* the campaign.  Entries that exhaust the retry
        budget degrade to a harness-failure record instead of aborting
        the campaign.
        """
        res = self.resilience
        if res is None or not res.wants_resilient_dispatch:
            return self.run_single(case, profile, value_ms, repetition)
        res.manifest.dispatched += 1
        coords = (case.name, profile.full_name, value_ms, repetition)
        label = f"{case.name}/{profile.full_name}/v{value_ms}/r{repetition}"

        def execute(attempt: int) -> RunRecord:
            plan = res.fault_plan
            if plan is not None:
                spec = plan.entry_fault(coords, attempt)
                if spec is not None:
                    from ..faults import inject_entry_fault

                    inject_entry_fault(spec, in_worker=False)
            return self.run_single(case, profile, value_ms, repetition)

        record, failure = execute_with_retries(execute, label, res)
        if failure is not None:
            record = failure_record(case, profile, value_ms, repetition,
                                    failure)
        return record

    # -- caching ------------------------------------------------------------------

    def store_keys(self) -> "Iterator[str]":
        """The content address of every run in this campaign, in
        enumeration order, without executing anything.  ``repro cache
        gc`` uses this to mark a campaign's entries as live."""
        from .parallel import spec_keys

        yield from spec_keys(self, self.enumerate_specs())

    def run_seed_for(self, case: TestCaseConfig, profile: ClientProfile,
                     value_ms: int, repetition: int) -> int:
        """The stable seed of one run — a pure function of campaign
        seed and run coordinates (see :mod:`repro.seeding`)."""
        return stable_run_seed(self.seed, case.name, profile.full_name,
                               value_ms, repetition)

    def config_digest_for(self, case: TestCaseConfig,
                          profile: ClientProfile) -> str:
        """Content digest of everything configuration-shaped that can
        influence a run: the case and profile dataclasses plus the
        runner-level knobs.  Any field change misses the cache —
        except the sweep values and the repetition count, which are
        neutralized first: a run's behaviour is a pure function of its
        *own* ``(value_ms, repetition)`` coordinates, never of which
        other values share the campaign.  That is what makes the
        two-phase coarse→fine strategy nearly free on a warm cache —
        the fine pass hits every coarse value it overlaps — and lets a
        higher repetition count reuse all earlier repetitions."""
        case_identity = replace(case, sweep=_NEUTRAL_SWEEP, repetitions=1)
        return config_digest(case_identity, profile,
                             self.resolver_timeout, self.hev3_flag)

    def store_key_for(self, case: TestCaseConfig, profile: ClientProfile,
                      value_ms: int, repetition: int,
                      config_digest: Optional[str] = None) -> str:
        digest = (config_digest if config_digest is not None
                  else self.config_digest_for(case, profile))
        run_seed = self.run_seed_for(case, profile, value_ms, repetition)
        return CampaignStore.key(run_seed, digest, value_ms, repetition)

    def run_cached(self, case: TestCaseConfig, profile: ClientProfile,
                   value_ms: int, repetition: int = 0,
                   config_digest: Optional[str] = None) -> RunRecord:
        """:meth:`run_single` through the store: cache hits skip
        execution entirely; misses execute and populate the store."""
        if self.store is None:
            return self.run_single(case, profile, value_ms, repetition)
        key = self.store_key_for(case, profile, value_ms, repetition,
                                 config_digest)
        record = self.store.get_record(key)
        if record is None:
            record = self.run_single(case, profile, value_ms, repetition)
            self.store.put_record(key, record)
        return record

    # -- one run ------------------------------------------------------------------

    def run_single(self, case: TestCaseConfig, profile: ClientProfile,
                   value_ms: int, repetition: int = 0) -> RunRecord:
        """One fully isolated test run (fresh testbed + client)."""
        run_seed = self.run_seed_for(case, profile, value_ms, repetition)
        testbed = LocalTestbed(seed=run_seed,
                               resolver_timeout=self.resolver_timeout)
        modules = modules_for(case)
        run_label = f"v{value_ms}r{repetition}"
        for module in modules:
            module.on_case_start(testbed, case)
        for module in modules:
            module.on_run_start(testbed, case, value_ms, run_label)

        hostname = self._hostname_for(case, modules, testbed, value_ms)
        client = Client(
            testbed.client, profile, testbed.resolver_addresses[:1],
            history=HistoryStore(),
            hev3_flag=self.hev3_flag and profile.hev3_flag_available)
        capture = self._find_capture(modules)

        process = client.connect(hostname)
        process.defused = True  # failures are data, not crashes
        testbed.sim.run(until=testbed.sim.now + case.run_timeout)

        record = RunRecord(
            case=case.name, kind=case.kind, client=profile.full_name,
            value_ms=value_ms, repetition=repetition,
            completed=process.triggered)
        if process.triggered:
            if process.ok:
                he_result = process.value
                record.duration_s = he_result.time_to_connect
            else:
                record.error = str(process.exception)
        self._observe(record, capture)
        for module in modules:
            module.on_run_end(testbed, case, value_ms)
        return record

    # -- helpers -----------------------------------------------------------------

    def _hostname_for(self, case: TestCaseConfig, modules, testbed,
                      value_ms: int) -> str:
        if case.kind is TestCaseKind.ADDRESS_SELECTION:
            for module in modules:
                if isinstance(module, AddressSelectionModule):
                    assert module.last_hostname is not None
                    return module.last_hostname
        if case.service is not None:
            for module in modules:
                if isinstance(module, ServiceModule):
                    assert module.last_hostname is not None
                    return module.last_hostname
        # Unique per sweep value, deliberately *shared* across
        # repetitions: every run gets a fresh testbed (no cross-run
        # DNS caching to defeat), and a repetition-independent qname —
        # with the stub's deterministic per-run query ids — makes the
        # DNS payload bytes of repeated runs identical, so
        # CaptureObservation's payload interning decodes them once per
        # campaign instead of once per repetition.
        return testbed.unique_hostname(f"{case.kind.value}-v{value_ms}")

    @staticmethod
    def _find_capture(modules) -> PacketCapture:
        for module in modules:
            if isinstance(module, CaptureModule):
                assert module.capture is not None
                return module.capture
        raise RuntimeError("capture module missing from chain")

    @staticmethod
    def _observe(record: RunRecord, capture: PacketCapture) -> None:
        """Black-box inference: everything comes from the capture.

        One :class:`CaptureObservation` walks the capture once and
        decodes each DNS payload once; every recorded field derives
        from that single pass.
        """
        observation = CaptureObservation(capture)
        record.winning_family = observation.established_family
        record.winning_protocol = observation.established_protocol
        record.cad_s = observation.cad
        record.rd_s = observation.resolution_delay
        record.time_to_first_attempt_s = observation.time_to_first_attempt
        record.aaaa_first = observation.aaaa_first
        record.queried_https = observation.queried_https
        record.attempts = observation.attempt_sequence
        record.attempts_v4 = observation.attempts_per_family[Family.V4]
        record.attempts_v6 = observation.attempts_per_family[Family.V6]
        record.attempts_quic = observation.attempts_quic
        record.first_attempt_port = observation.first_attempt_port
