"""The test runner: cases × configurations × clients (App. Figure 3).

For every (test case, sweep value, client, repetition) the runner
builds a *fresh* testbed and client — the simulation equivalent of the
paper's "drop and create a new container" state reset — executes the
run, and collects black-box observations from the packet capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple

from ..clients.base import Client
from ..clients.profile import ClientProfile
from ..core.sortlist import HistoryStore
from ..seeding import stable_run_seed
from ..simnet.addr import Family
from ..simnet.capture import PacketCapture
from .config import TestCaseConfig, TestCaseKind
from .inference import CaptureObservation
from .modules import AddressSelectionModule, CaptureModule, modules_for
from .topology import LocalTestbed


@dataclass
class RunRecord:
    """Everything observed in one test run."""

    case: str
    kind: TestCaseKind
    client: str
    value_ms: int
    repetition: int
    completed: bool
    error: Optional[str] = None
    winning_family: Optional[Family] = None
    cad_s: Optional[float] = None
    rd_s: Optional[float] = None
    time_to_first_attempt_s: Optional[float] = None
    aaaa_first: Optional[bool] = None
    attempts: List[Tuple[float, Family]] = field(default_factory=list)
    attempts_v4: int = 0
    attempts_v6: int = 0
    duration_s: Optional[float] = None


@dataclass
class ResultSet:
    """All runs of a campaign, with the aggregations the paper reports."""

    records: List[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def for_client(self, client: str) -> List[RunRecord]:
        return [r for r in self.records if r.client == client]

    def for_case(self, case: str) -> List[RunRecord]:
        return [r for r in self.records if r.case == case]

    def median_cad(self, client: str) -> Optional[float]:
        values = [r.cad_s for r in self.for_client(client)
                  if r.cad_s is not None]
        return median(values) if values else None

    def family_by_delay(self, client: str, case: str
                        ) -> Dict[int, Family]:
        """delay_ms -> established family (the Figure 2 series)."""
        out: Dict[int, Family] = {}
        for record in self.records:
            if (record.client == client and record.case == case
                    and record.winning_family is not None):
                out[record.value_ms] = record.winning_family
        return out

    def observed_cad_crossover(self, client: str, case: str
                               ) -> Optional[int]:
        """Largest delay (ms) still established via IPv6."""
        series = self.family_by_delay(client, case)
        v6_delays = [delay for delay, family in series.items()
                     if family is Family.V6]
        return max(v6_delays) if v6_delays else None

    def __len__(self) -> int:
        return len(self.records)


class TestRunner:
    """Drives a measurement campaign over client profiles."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, clients: Sequence[ClientProfile],
                 cases: Sequence[TestCaseConfig], seed: int = 0,
                 resolver_timeout: float = 5.0,
                 hev3_flag: bool = False) -> None:
        if not clients:
            raise ValueError("runner needs at least one client profile")
        if not cases:
            raise ValueError("runner needs at least one test case")
        self.clients = list(clients)
        self.cases = list(cases)
        self.seed = seed
        self.resolver_timeout = resolver_timeout
        self.hev3_flag = hev3_flag

    # -- campaign --------------------------------------------------------------

    def run(self, workers: Optional[int] = None) -> ResultSet:
        """Execute the campaign; ``workers=N`` fans runs out over N
        processes (default: serial, preserving exact current behavior).

        Run seeds are stable digests of the run coordinates, so the
        parallel path returns records identical to the serial path, in
        the same deterministic enumeration order.
        """
        if workers is not None:
            if workers < 1:
                raise ValueError(f"workers must be >= 1: {workers}")
            if workers > 1:
                from .parallel import CampaignExecutor

                return CampaignExecutor(self, workers=workers).execute()
        results = ResultSet()
        for case in self.cases:
            for profile in self.clients:
                for value_ms in case.sweep:
                    for repetition in range(case.repetitions):
                        record = self.run_single(case, profile, value_ms,
                                                 repetition)
                        results.add(record)
        return results

    # -- one run ------------------------------------------------------------------

    def run_single(self, case: TestCaseConfig, profile: ClientProfile,
                   value_ms: int, repetition: int = 0) -> RunRecord:
        """One fully isolated test run (fresh testbed + client)."""
        run_seed = stable_run_seed(self.seed, case.name, profile.full_name,
                                   value_ms, repetition)
        testbed = LocalTestbed(seed=run_seed,
                               resolver_timeout=self.resolver_timeout)
        modules = modules_for(case)
        run_label = f"v{value_ms}r{repetition}"
        for module in modules:
            module.on_case_start(testbed, case)
        for module in modules:
            module.on_run_start(testbed, case, value_ms, run_label)

        hostname = self._hostname_for(case, modules, testbed, run_label)
        client = Client(
            testbed.client, profile, testbed.resolver_addresses[:1],
            history=HistoryStore(),
            hev3_flag=self.hev3_flag and profile.hev3_flag_available)
        capture = self._find_capture(modules)

        process = client.connect(hostname)
        process.defused = True  # failures are data, not crashes
        testbed.sim.run(until=testbed.sim.now + case.run_timeout)

        record = RunRecord(
            case=case.name, kind=case.kind, client=profile.full_name,
            value_ms=value_ms, repetition=repetition,
            completed=process.triggered)
        if process.triggered:
            if process.ok:
                he_result = process.value
                record.duration_s = he_result.time_to_connect
            else:
                record.error = str(process.exception)
        self._observe(record, capture)
        for module in modules:
            module.on_run_end(testbed, case, value_ms)
        return record

    # -- helpers -----------------------------------------------------------------

    def _hostname_for(self, case: TestCaseConfig, modules, testbed,
                      run_label: str) -> str:
        if case.kind is TestCaseKind.ADDRESS_SELECTION:
            for module in modules:
                if isinstance(module, AddressSelectionModule):
                    assert module.last_hostname is not None
                    return module.last_hostname
        # Unique per run: the wildcard zone answers, caching is moot.
        return testbed.unique_hostname(f"{case.kind.value}-{run_label}")

    @staticmethod
    def _find_capture(modules) -> PacketCapture:
        for module in modules:
            if isinstance(module, CaptureModule):
                assert module.capture is not None
                return module.capture
        raise RuntimeError("capture module missing from chain")

    @staticmethod
    def _observe(record: RunRecord, capture: PacketCapture) -> None:
        """Black-box inference: everything comes from the capture.

        One :class:`CaptureObservation` walks the capture once and
        decodes each DNS payload once; every recorded field derives
        from that single pass.
        """
        observation = CaptureObservation(capture)
        record.winning_family = observation.established_family
        record.cad_s = observation.cad
        record.rd_s = observation.resolution_delay
        record.time_to_first_attempt_s = observation.time_to_first_attempt
        record.aaaa_first = observation.aaaa_first
        record.attempts = observation.attempt_sequence
        record.attempts_v4 = observation.attempts_per_family[Family.V4]
        record.attempts_v6 = observation.attempts_per_family[Family.V6]
