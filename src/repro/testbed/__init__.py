"""The local testbed framework (§4.3(i), App. B).

Two directly connected simulated hosts, server-side traffic shaping and
DNS delay injection, client-side packet capture, and a runner that
iterates test cases × sweep configurations × clients with full state
isolation per run.
"""

from .config import (ImpairmentSpec, SweepSpec, TestCaseConfig,
                     TestCaseKind, address_selection_case, cad_case,
                     delayed_a_case, rd_case)
from .inference import (CaptureObservation, aaaa_before_a,
                        attempt_sequence, attempts_per_family,
                        clear_dns_decode_intern, dns_observations,
                        established_family, infer_cad,
                        infer_resolution_delay, query_order,
                        time_to_first_attempt)
from .modules import (AddressSelectionModule, CaptureModule, DnsDelayModule,
                      ImpairmentModule, NetemModule, SetupModule,
                      modules_for)
from .parallel import CampaignExecutor, RunSpec, enumerate_specs, spec_keys
from .resilience import (CampaignJournal, FailureEntry, FaultManifest,
                         Resilience, RetryPolicy, failure_record,
                         is_harness_failure, resilient_map)
from .runner import (NonMonotonicSeriesError, ResultSet, RunRecord,
                     StreamingResultSet, TestRunner, majority_family,
                     series_flap_window)
from .spec import CampaignSpec, SpecError, run_campaign_spec
from .store import (CacheStats, CampaignStore, PackedCampaignStore,
                    config_digest, open_store)
from .topology import (EchoExchange, EchoWebServer, LocalTestbed,
                       TEST_DOMAIN, WEB_PORT)

__all__ = [
    "AddressSelectionModule", "CacheStats", "CampaignExecutor",
    "CampaignJournal", "CampaignSpec", "CampaignStore", "CaptureModule",
    "CaptureObservation", "DnsDelayModule", "FailureEntry",
    "FaultManifest", "ImpairmentModule", "ImpairmentSpec",
    "NonMonotonicSeriesError", "PackedCampaignStore", "Resilience",
    "RetryPolicy", "RunSpec", "open_store",
    "SpecError", "StreamingResultSet", "failure_record",
    "is_harness_failure", "resilient_map", "run_campaign_spec",
    "EchoExchange", "EchoWebServer", "LocalTestbed", "NetemModule",
    "ResultSet", "RunRecord", "SetupModule", "SweepSpec", "TEST_DOMAIN",
    "TestCaseConfig", "TestCaseKind", "TestRunner", "WEB_PORT",
    "aaaa_before_a", "address_selection_case", "attempt_sequence",
    "attempts_per_family", "cad_case", "clear_dns_decode_intern",
    "config_digest", "delayed_a_case",
    "dns_observations", "enumerate_specs", "established_family",
    "infer_cad", "infer_resolution_delay", "majority_family",
    "modules_for", "query_order", "rd_case", "series_flap_window",
    "spec_keys", "time_to_first_attempt",
]
