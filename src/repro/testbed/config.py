"""Test case and sweep configuration (App. Figure 3).

The paper's framework keeps test cases and clients *outside* the
framework code: a configuration names the case kind, the parameter
sweep (with coarse initial runs and fine-grained follow-ups), and the
repetition count.  These dataclasses are that configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence


class TestCaseKind(enum.Enum):
    """The measurement targets of §4.1."""

    __test__ = False  # not a pytest class, despite the name

    CONNECTION_ATTEMPT_DELAY = "cad"
    RESOLUTION_DELAY = "rd"
    DELAYED_A = "delayed-a"
    ADDRESS_SELECTION = "address-selection"


@dataclass(frozen=True)
class SweepSpec:
    """A sweep over the test-run configuration variable (delay in ms).

    Supports the paper's two-phase strategy: "coarse initial runs and
    fine-grained follow-ups" (§4.3(i)).
    """

    values_ms: "tuple[int, ...]"

    def __post_init__(self) -> None:
        if not self.values_ms:
            raise ValueError("sweep needs at least one value")
        if any(v < 0 for v in self.values_ms):
            raise ValueError("sweep values must be non-negative")

    @classmethod
    def fixed(cls, *values_ms: int) -> "SweepSpec":
        return cls(tuple(values_ms))

    @classmethod
    def range(cls, start_ms: int, stop_ms: int, step_ms: int) -> "SweepSpec":
        """Inclusive range, like the paper's 0–400 ms in 5 ms steps."""
        if step_ms <= 0:
            raise ValueError(f"step must be positive: {step_ms}")
        return cls(tuple(range(start_ms, stop_ms + 1, step_ms)))

    @classmethod
    def coarse_fine(cls, coarse_step_ms: int, fine_step_ms: int,
                    stop_ms: int,
                    fine_window_ms: int = 100,
                    around_ms: Optional[int] = None) -> "SweepSpec":
        """Coarse pass everywhere plus a fine pass around a region.

        ``around_ms`` centers the fine window (e.g. a CAD estimate from
        the coarse pass); without it the fine pass covers everything.
        """
        coarse = set(range(0, stop_ms + 1, coarse_step_ms))
        if around_ms is None:
            fine = set(range(0, stop_ms + 1, fine_step_ms))
        else:
            lo = max(0, around_ms - fine_window_ms)
            hi = min(stop_ms, around_ms + fine_window_ms)
            fine = set(range(lo, hi + 1, fine_step_ms))
        return cls(tuple(sorted(coarse | fine)))

    def __iter__(self) -> Iterator[int]:
        return iter(self.values_ms)

    def __len__(self) -> int:
        return len(self.values_ms)


@dataclass(frozen=True)
class TestCaseConfig:
    """One test case: what to vary and how to observe it."""

    __test__ = False  # not a pytest class, despite the name

    name: str
    kind: TestCaseKind
    sweep: SweepSpec
    repetitions: int = 1
    #: For ADDRESS_SELECTION: how many (unresponsive) addresses per family.
    addresses_per_family: int = 10
    #: Observation window per run, simulated seconds.
    run_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.run_timeout <= 0:
            raise ValueError("run_timeout must be positive")


def cad_case(fine: bool = True, stop_ms: int = 400,
             repetitions: int = 1) -> TestCaseConfig:
    """The paper's CAD case: 0–400 ms in 5 ms steps (coarse: 25 ms)."""
    sweep = (SweepSpec.range(0, stop_ms, 5) if fine
             else SweepSpec.range(0, stop_ms, 25))
    return TestCaseConfig(name="connection-attempt-delay",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=sweep, repetitions=repetitions)


def rd_case(repetitions: int = 1) -> TestCaseConfig:
    """Delay the AAAA answer; observe when IPv4 connecting starts."""
    return TestCaseConfig(name="resolution-delay",
                          kind=TestCaseKind.RESOLUTION_DELAY,
                          sweep=SweepSpec.fixed(200, 500, 1000, 2000),
                          repetitions=repetitions)


def delayed_a_case(repetitions: int = 1) -> TestCaseConfig:
    """Delay the *A* answer; §5.2's surprising IPv6 stall."""
    return TestCaseConfig(name="delayed-a-record",
                          kind=TestCaseKind.DELAYED_A,
                          sweep=SweepSpec.fixed(200, 500, 1000, 2000),
                          repetitions=repetitions)


def address_selection_case(addresses_per_family: int = 10
                           ) -> TestCaseConfig:
    """Ten unresponsive addresses per family (Figure 5 / App. D)."""
    return TestCaseConfig(name="address-selection",
                          kind=TestCaseKind.ADDRESS_SELECTION,
                          sweep=SweepSpec.fixed(0),
                          addresses_per_family=addresses_per_family,
                          run_timeout=60.0)
