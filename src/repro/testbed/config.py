"""Test case and sweep configuration (App. Figure 3).

The paper's framework keeps test cases and clients *outside* the
framework code: a configuration names the case kind, the parameter
sweep (with coarse initial runs and fine-grained follow-ups), and the
repetition count.  These dataclasses are that configuration.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..dns.rdata import RdataType
from ..simnet.addr import Family
from ..simnet.packet import Protocol


class TestCaseKind(enum.Enum):
    """The measurement targets of §4.1 (plus generic impairments)."""

    __test__ = False  # not a pytest class, despite the name

    CONNECTION_ATTEMPT_DELAY = "cad"
    RESOLUTION_DELAY = "rd"
    DELAYED_A = "delayed-a"
    ADDRESS_SELECTION = "address-selection"
    #: A case whose only setup is its declarative ``impairments`` —
    #: the conformance battery's scenario mechanism.
    IMPAIRMENT = "impairment"


@dataclass(frozen=True)
class ImpairmentSpec:
    """One declarative shaping stanza applied at every run of a case.

    The configuration-file equivalent of one ``tc filter``+``qdisc``
    line in the paper's setup scripts: which packets to match (family,
    protocol) and how to impair them (netem delay/jitter/loss/reorder/
    rate), or — with ``dns_rtype`` set — a static answer delay at the
    authoritative server instead of wire shaping.  Times are seconds,
    like :class:`~repro.simnet.netem.NetemSpec`.  With ``value_scaled``
    the case's sweep value (ms) is added to ``delay_s``, so one spec
    describes a whole delay sweep.
    """

    family: Optional[Family] = None
    protocol: Optional[Protocol] = None
    value_scaled: bool = False
    delay_s: float = 0.0
    jitter_s: float = 0.0
    jitter_correlation: float = 0.0
    loss: float = 0.0
    reorder_probability: float = 0.0
    reorder_gap_s: float = 0.001
    rate_bps: Optional[float] = None
    dns_rtype: Optional[RdataType] = None
    name: str = ""

    def __post_init__(self) -> None:
        # Validate every numeric field by name up front: a NaN or
        # out-of-range value would otherwise clamp (or misbehave)
        # silently deep inside netem, long after the config was built.
        self._check_seconds("delay_s", self.delay_s)
        self._check_seconds("jitter_s", self.jitter_s)
        self._check_seconds("reorder_gap_s", self.reorder_gap_s)
        self._check_probability("loss", self.loss)
        self._check_probability("reorder_probability",
                                self.reorder_probability)
        self._check_probability("jitter_correlation",
                                self.jitter_correlation)
        if self.rate_bps is not None and not (
                math.isfinite(self.rate_bps) and self.rate_bps > 0):
            raise ValueError(
                f"ImpairmentSpec.rate_bps must be a finite positive "
                f"rate (or None for unshaped): {self.rate_bps!r}")
        if self.dns_rtype is not None and (
                self.family is not None or self.protocol is not None
                or self.loss or self.jitter_s or self.reorder_probability
                or self.rate_bps is not None):
            raise ValueError(
                "a dns_rtype impairment is a static answer delay; "
                "netem fields do not apply to it")

    @staticmethod
    def _check_seconds(field_name: str, value: float) -> None:
        if not (math.isfinite(value) and value >= 0):
            raise ValueError(
                f"ImpairmentSpec.{field_name} must be a finite "
                f"non-negative duration in seconds: {value!r}")

    @staticmethod
    def _check_probability(field_name: str, value: float) -> None:
        if not (math.isfinite(value) and 0.0 <= value <= 1.0):
            raise ValueError(
                f"ImpairmentSpec.{field_name} must be a finite "
                f"probability in [0, 1]: {value!r}")

    def label(self) -> str:
        """Descriptive shaping summary (``name`` is the rule name)."""
        parts = []
        if self.dns_rtype is not None:
            parts.append(f"dns-{self.dns_rtype.name.lower()}")
        if self.family is not None:
            parts.append(self.family.label)
        if self.protocol is not None:
            parts.append(self.protocol.value)
        if self.value_scaled:
            parts.append("delay=sweep")
        elif self.delay_s:
            parts.append(f"delay={self.delay_s * 1000:.0f}ms")
        if self.jitter_s:
            parts.append(f"jitter={self.jitter_s * 1000:.0f}ms")
        if self.loss:
            parts.append(f"loss={self.loss * 100:.0f}%")
        if self.reorder_probability:
            parts.append(f"reorder={self.reorder_probability * 100:.0f}%")
        if self.rate_bps is not None:
            parts.append(f"rate={self.rate_bps:.0f}bps")
        return ",".join(parts) or "no-op"


@dataclass(frozen=True)
class ServiceSpec:
    """Declarative server-side service discovery for one test case.

    The setup-stage equivalent of the HEv3 testbed additions: publish
    an HTTPS (SVCB) record for the test hostname, answer QUIC, serve an
    alternative port, or answer the hostname with an explicit address
    set (per-OS sortlist scenarios use ULA/site-local/Teredo space
    attached to the server node).  Consumed by
    :class:`~repro.testbed.modules.ServiceModule`.
    """

    #: ALPN tokens advertised in the published HTTPS record; empty
    #: means no HTTPS record is published.
    https_alpn: "Tuple[str, ...]" = ()
    #: Alternative port advertised in the HTTPS record (and served).
    https_port: Optional[int] = None
    #: Answer QUIC Initials on the web port(s).
    quic_listener: bool = False
    #: Explicit destination addresses for the test hostname (attached
    #: to the server node so they answer); empty keeps the standard
    #: dual-stack pair.
    addresses: "Tuple[str, ...]" = ()

    def __post_init__(self) -> None:
        if self.https_port is not None and not 1 <= self.https_port <= 65535:
            raise ValueError(f"bad https_port: {self.https_port!r}")
        if self.https_port is not None and not self.https_alpn:
            raise ValueError("https_port needs an HTTPS record "
                             "(set https_alpn)")

    def label(self) -> str:
        parts = []
        if self.https_alpn:
            parts.append("https-rr=" + "+".join(self.https_alpn))
        if self.https_port is not None:
            parts.append(f"port={self.https_port}")
        if self.quic_listener:
            parts.append("quic")
        if self.addresses:
            parts.append(f"addrs={len(self.addresses)}")
        return ",".join(parts) or "no-op"


@dataclass(frozen=True)
class SweepSpec:
    """A sweep over the test-run configuration variable (delay in ms).

    Supports the paper's two-phase strategy: "coarse initial runs and
    fine-grained follow-ups" (§4.3(i)).
    """

    values_ms: "tuple[int, ...]"

    def __post_init__(self) -> None:
        if not self.values_ms:
            raise ValueError("sweep needs at least one value")
        if any(v < 0 for v in self.values_ms):
            raise ValueError("sweep values must be non-negative")

    @classmethod
    def fixed(cls, *values_ms: int) -> "SweepSpec":
        return cls(tuple(values_ms))

    @classmethod
    def range(cls, start_ms: int, stop_ms: int, step_ms: int) -> "SweepSpec":
        """Inclusive range, like the paper's 0–400 ms in 5 ms steps."""
        if step_ms <= 0:
            raise ValueError(f"step must be positive: {step_ms}")
        return cls(tuple(range(start_ms, stop_ms + 1, step_ms)))

    @classmethod
    def coarse_fine(cls, coarse_step_ms: int, fine_step_ms: int,
                    stop_ms: int,
                    fine_window_ms: int = 100,
                    around_ms: Optional[int] = None) -> "SweepSpec":
        """Coarse pass everywhere plus a fine pass around a region.

        ``around_ms`` centers the fine window (e.g. a CAD estimate from
        the coarse pass); without it the fine pass covers everything.
        """
        coarse = set(range(0, stop_ms + 1, coarse_step_ms))
        if around_ms is None:
            fine = set(range(0, stop_ms + 1, fine_step_ms))
        else:
            lo = max(0, around_ms - fine_window_ms)
            hi = min(stop_ms, around_ms + fine_window_ms)
            fine = set(range(lo, hi + 1, fine_step_ms))
        return cls(tuple(sorted(coarse | fine)))

    def __iter__(self) -> Iterator[int]:
        return iter(self.values_ms)

    def __len__(self) -> int:
        return len(self.values_ms)


@dataclass(frozen=True)
class TestCaseConfig:
    """One test case: what to vary and how to observe it."""

    __test__ = False  # not a pytest class, despite the name

    name: str
    kind: TestCaseKind
    sweep: SweepSpec
    repetitions: int = 1
    #: For ADDRESS_SELECTION: how many (unresponsive) addresses per family.
    addresses_per_family: int = 10
    #: Observation window per run, simulated seconds.
    run_timeout: float = 30.0
    #: Declarative shaping applied at every run (any kind may stack
    #: impairments; an IMPAIRMENT-kind case typically has only these).
    impairments: Tuple[ImpairmentSpec, ...] = ()
    #: Server-side service discovery (HTTPS records, QUIC listener,
    #: explicit destination address sets) applied at every run.
    service: Optional[ServiceSpec] = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if not (math.isfinite(self.run_timeout)
                and self.run_timeout > 0):
            raise ValueError(
                f"TestCaseConfig.run_timeout must be a finite positive "
                f"duration in seconds: {self.run_timeout!r}")


def cad_case(fine: bool = True, stop_ms: int = 400,
             repetitions: int = 1) -> TestCaseConfig:
    """The paper's CAD case: 0–400 ms in 5 ms steps (coarse: 25 ms)."""
    sweep = (SweepSpec.range(0, stop_ms, 5) if fine
             else SweepSpec.range(0, stop_ms, 25))
    return TestCaseConfig(name="connection-attempt-delay",
                          kind=TestCaseKind.CONNECTION_ATTEMPT_DELAY,
                          sweep=sweep, repetitions=repetitions)


def rd_case(repetitions: int = 1) -> TestCaseConfig:
    """Delay the AAAA answer; observe when IPv4 connecting starts."""
    return TestCaseConfig(name="resolution-delay",
                          kind=TestCaseKind.RESOLUTION_DELAY,
                          sweep=SweepSpec.fixed(200, 500, 1000, 2000),
                          repetitions=repetitions)


def delayed_a_case(repetitions: int = 1) -> TestCaseConfig:
    """Delay the *A* answer; §5.2's surprising IPv6 stall."""
    return TestCaseConfig(name="delayed-a-record",
                          kind=TestCaseKind.DELAYED_A,
                          sweep=SweepSpec.fixed(200, 500, 1000, 2000),
                          repetitions=repetitions)


def address_selection_case(addresses_per_family: int = 10
                           ) -> TestCaseConfig:
    """Ten unresponsive addresses per family (Figure 5 / App. D)."""
    return TestCaseConfig(name="address-selection",
                          kind=TestCaseKind.ADDRESS_SELECTION,
                          sweep=SweepSpec.fixed(0),
                          addresses_per_family=addresses_per_family,
                          run_timeout=60.0)
