"""Declarative campaign specifications (the framework's config file).

The paper's framework is driven by configuration: "They consist of a
config file instructing the framework which executables to run when …
The clients are defined separately from the test cases" (§4.3(i),
App. Figure 3).  This module is that seam: a campaign is a plain dict
(JSON/TOML-shaped — no parser dependency) naming clients by
registry key and test cases by kind with their sweep parameters.

Example::

    spec = {
        "seed": 7,
        "resolver_timeout": 5.0,
        "clients": [
            {"name": "Chrome", "version": "130.0"},
            {"name": "Firefox", "version": "132.0", "hev3_flag": false},
        ],
        "cases": [
            {"kind": "cad", "sweep": {"start": 0, "stop": 400, "step": 25}},
            {"kind": "rd", "sweep": {"values": [500, 1000]}},
            {"kind": "address-selection", "addresses_per_family": 10},
        ],
    }
    results = run_campaign_spec(spec)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..clients.profile import ClientProfile
from ..clients.registry import get_profile
from ..dns.rdata import RdataType
from ..faults import FaultPlan, FaultPlanError
from ..simnet.addr import Family
from ..simnet.packet import Protocol
from .config import ImpairmentSpec, SweepSpec, TestCaseConfig, TestCaseKind
from .resilience import Resilience, RetryPolicy
from .runner import ResultSet, TestRunner
from .store import CampaignStore

_DEFAULT_SWEEPS: Dict[TestCaseKind, SweepSpec] = {
    TestCaseKind.CONNECTION_ATTEMPT_DELAY: SweepSpec.range(0, 400, 25),
    TestCaseKind.RESOLUTION_DELAY: SweepSpec.fixed(200, 500, 1000, 2000),
    TestCaseKind.DELAYED_A: SweepSpec.fixed(200, 500, 1000, 2000),
    TestCaseKind.ADDRESS_SELECTION: SweepSpec.fixed(0),
    TestCaseKind.IMPAIRMENT: SweepSpec.fixed(0),
}

_FAMILIES = {"v4": Family.V4, "ipv4": Family.V4,
             "v6": Family.V6, "ipv6": Family.V6}


class SpecError(ValueError):
    """A campaign specification is malformed."""


def parse_sweep(data: Optional[Mapping[str, Any]],
                kind: TestCaseKind) -> SweepSpec:
    """Parse a sweep stanza: explicit values, a range, or the default."""
    if data is None:
        return _DEFAULT_SWEEPS[kind]
    if "values" in data and ("start" in data or "stop" in data):
        raise SpecError("sweep takes either 'values' or a range, not both")
    if "values" in data:
        values = data["values"]
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(f"sweep values must be a non-empty list, "
                            f"got {values!r}")
        return SweepSpec.fixed(*values)
    if "start" in data or "stop" in data:
        try:
            return SweepSpec.range(int(data.get("start", 0)),
                                   int(data["stop"]),
                                   int(data.get("step", 25)))
        except KeyError as exc:
            raise SpecError("sweep range needs 'stop'") from exc
    raise SpecError(f"unintelligible sweep stanza: {dict(data)!r}")


def parse_impairment(data: Mapping[str, Any]) -> ImpairmentSpec:
    """Parse one impairment stanza (the declarative ``tc`` line)."""
    known = {"family", "protocol", "value_scaled", "delay_s", "jitter_s",
             "jitter_correlation", "loss", "reorder_probability",
             "reorder_gap_s", "rate_bps", "dns_rtype", "name"}
    unknown = set(data) - known
    if unknown:
        raise SpecError(f"unknown impairment fields: {sorted(unknown)}")
    family = data.get("family")
    if family is not None:
        try:
            family = _FAMILIES[str(family).lower()]
        except KeyError as exc:
            raise SpecError(f"unknown family {family!r} "
                            f"(valid: {sorted(_FAMILIES)})") from exc
    protocol = data.get("protocol")
    if protocol is not None:
        try:
            protocol = Protocol(str(protocol).lower())
        except ValueError as exc:
            valid = ", ".join(p.value for p in Protocol)
            raise SpecError(f"unknown protocol {data['protocol']!r} "
                            f"(valid: {valid})") from exc
    dns_rtype = data.get("dns_rtype")
    if dns_rtype is not None:
        try:
            dns_rtype = RdataType[str(dns_rtype).upper()]
        except KeyError as exc:
            raise SpecError(
                f"unknown dns_rtype {data['dns_rtype']!r}") from exc
    try:
        return ImpairmentSpec(
            family=family, protocol=protocol,
            value_scaled=bool(data.get("value_scaled", False)),
            delay_s=float(data.get("delay_s", 0.0)),
            jitter_s=float(data.get("jitter_s", 0.0)),
            jitter_correlation=float(data.get("jitter_correlation", 0.0)),
            loss=float(data.get("loss", 0.0)),
            reorder_probability=float(data.get("reorder_probability", 0.0)),
            reorder_gap_s=float(data.get("reorder_gap_s", 0.001)),
            rate_bps=(float(data["rate_bps"])
                      if data.get("rate_bps") is not None else None),
            dns_rtype=dns_rtype,
            name=str(data.get("name", "")))
    except ValueError as exc:
        raise SpecError(f"bad impairment stanza: {exc}") from exc


def parse_case(data: Mapping[str, Any]) -> TestCaseConfig:
    """Parse one test-case stanza."""
    try:
        kind = TestCaseKind(data["kind"])
    except KeyError as exc:
        raise SpecError("test case needs a 'kind'") from exc
    except ValueError as exc:
        valid = ", ".join(k.value for k in TestCaseKind)
        raise SpecError(
            f"unknown case kind {data['kind']!r} (valid: {valid})") from exc
    sweep = parse_sweep(data.get("sweep"), kind)
    return TestCaseConfig(
        name=data.get("name", kind.value),
        kind=kind,
        sweep=sweep,
        repetitions=int(data.get("repetitions", 1)),
        addresses_per_family=int(data.get("addresses_per_family", 10)),
        run_timeout=float(data.get("run_timeout", 30.0)),
        impairments=tuple(parse_impairment(i)
                          for i in data.get("impairments", ())),
    )


def parse_client(data: Mapping[str, Any]) -> ClientProfile:
    """Parse one client stanza (registry lookup + optional HEv3 flag)."""
    try:
        profile = get_profile(data["name"], data.get("version"))
    except KeyError as exc:
        raise SpecError(str(exc)) from exc
    if data.get("hev3_flag"):
        profile = profile.with_hev3_flag()
    return profile


@dataclass
class CampaignSpec:
    """A parsed, validated campaign definition."""

    clients: List[ClientProfile]
    cases: List[TestCaseConfig]
    seed: int = 0
    resolver_timeout: float = 5.0
    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    #: Fault-tolerance stanzas: per-entry retry budget, per-entry
    #: watchdog in seconds, and a chaos fault plan (the declarative
    #: twin of the CLI's ``--retries/--entry-timeout/--fault-plan``).
    retries: int = 0
    entry_timeout: Optional[float] = None
    faults: Optional[FaultPlan] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if "clients" not in data or not data["clients"]:
            raise SpecError("campaign needs at least one client")
        if "cases" not in data or not data["cases"]:
            raise SpecError("campaign needs at least one test case")
        workers = data.get("workers")
        cache_dir = data.get("cache_dir")
        seed = int(data.get("seed", 0))
        entry_timeout = data.get("entry_timeout")
        retries = int(data.get("retries", 0))
        if retries < 0:
            raise SpecError(f"retries must be >= 0: {retries}")
        faults = data.get("faults")
        plan = None
        if faults is not None:
            # Either a plan string ("crash:0.3,corrupt:0.5") or a
            # stanza {"plan": "...", "seed": N}; the plan seed
            # defaults to the campaign seed so chaos replays with it.
            if isinstance(faults, str):
                faults = {"plan": faults}
            if not isinstance(faults, Mapping) or "plan" not in faults:
                raise SpecError(
                    f"faults stanza needs a 'plan' string: {faults!r}")
            try:
                plan = FaultPlan.parse(str(faults["plan"]),
                                       seed=int(faults.get("seed", seed)))
            except FaultPlanError as exc:
                raise SpecError(f"bad fault plan: {exc}") from exc
        return cls(
            clients=[parse_client(c) for c in data["clients"]],
            cases=[parse_case(c) for c in data["cases"]],
            seed=seed,
            resolver_timeout=float(data.get("resolver_timeout", 5.0)),
            workers=int(workers) if workers is not None else None,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            retries=retries,
            entry_timeout=(float(entry_timeout)
                           if entry_timeout is not None else None),
            faults=plan,
        )

    def build_resilience(self) -> Optional[Resilience]:
        """The resilient-runtime bundle this spec asks for, or None
        when every stanza is at its fail-fast default."""
        if not (self.retries or self.entry_timeout or self.faults):
            return None
        try:
            policy = RetryPolicy(retries=self.retries,
                                 entry_timeout=self.entry_timeout,
                                 backoff_seed=self.seed)
        except ValueError as exc:
            raise SpecError(str(exc)) from exc
        return Resilience(policy=policy, fault_plan=self.faults)

    def build_runner(self, store: Optional[CampaignStore] = None
                     ) -> TestRunner:
        if store is None and self.cache_dir:
            store = CampaignStore(self.cache_dir)
        resilience = self.build_resilience()
        if (store is not None and resilience is not None
                and resilience.fault_plan is not None):
            store.fault_plan = resilience.fault_plan
        return TestRunner(self.clients, self.cases, seed=self.seed,
                          resolver_timeout=self.resolver_timeout,
                          store=store, resilience=resilience)

    def total_runs(self) -> int:
        return len(self.clients) * sum(
            len(case.sweep) * case.repetitions for case in self.cases)


def run_campaign_spec(data: Mapping[str, Any],
                      workers: Optional[int] = None,
                      store: Optional[CampaignStore] = None) -> ResultSet:
    """Parse and execute a campaign specification in one call.

    ``workers`` overrides the spec's own ``workers`` stanza; results
    are identical either way — parallel campaigns replay the serial
    enumeration order exactly.  ``store`` (or a ``cache_dir`` stanza)
    attaches the incremental campaign store, so unchanged runs come
    back from cache byte-identically instead of re-executing.
    """
    spec = CampaignSpec.from_dict(data)
    effective = workers if workers is not None else spec.workers
    return spec.build_runner(store=store).run(workers=effective)
