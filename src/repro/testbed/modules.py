"""Setup modules: the pluggable stages of the framework (App. Fig. 3).

The paper's test runner executes per-case and per-run setup stages
defined in configuration ("Setup stages can be executed at each test
run configuration, or only at the start and end of a test case").
Each module encapsulates one concern — traffic shaping, DNS delays,
unresponsive address sets, packet capture — and the runner composes
the modules a test-case kind requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dns.rdata import RdataType
from ..simnet.capture import PacketCapture
from ..simnet.netem import NetemFilter, NetemRule, NetemSpec
from .config import (ImpairmentSpec, ServiceSpec, TestCaseConfig,
                     TestCaseKind)
from .topology import LocalTestbed


class SetupModule:
    """Base class: hooks called around each test case and run."""

    name = "module"

    def on_case_start(self, testbed: LocalTestbed,
                      case: TestCaseConfig) -> None:
        """Runs once when a test case begins (fresh testbed)."""

    def on_run_start(self, testbed: LocalTestbed, case: TestCaseConfig,
                     value_ms: int, run_label: str) -> None:
        """Runs before each (configuration value, repetition)."""

    def on_run_end(self, testbed: LocalTestbed, case: TestCaseConfig,
                   value_ms: int) -> None:
        """Runs after each run; undo per-run state."""


class NetemModule(SetupModule):
    """Applies the per-run IPv6 TCP delay (the CAD experiment knob)."""

    name = "netem"

    def on_run_start(self, testbed, case, value_ms, run_label):
        if case.kind is TestCaseKind.CONNECTION_ATTEMPT_DELAY:
            testbed.delay_ipv6_tcp(value_ms / 1000.0)

    def on_run_end(self, testbed, case, value_ms):
        testbed.clear_shaping()


class DnsDelayModule(SetupModule):
    """Delays one DNS record type at the authoritative server."""

    name = "dns-delay"

    def on_run_start(self, testbed, case, value_ms, run_label):
        if case.kind is TestCaseKind.RESOLUTION_DELAY:
            testbed.set_dns_delay(RdataType.AAAA, value_ms / 1000.0)
        elif case.kind is TestCaseKind.DELAYED_A:
            testbed.set_dns_delay(RdataType.A, value_ms / 1000.0)

    def on_run_end(self, testbed, case, value_ms):
        testbed.clear_dns_delays()


class AddressSelectionModule(SetupModule):
    """Registers N unresponsive addresses per family for a run.

    The addresses come from dedicated prefixes that are never attached
    to any interface, so every SYN toward them blackholes (§4.1(iii)).
    """

    name = "address-selection"
    UNRESPONSIVE_V4_PREFIX = "203.0.113."
    UNRESPONSIVE_V6_PREFIX = "2001:db8:dead::"

    def __init__(self) -> None:
        self.last_hostname: Optional[str] = None

    def on_run_start(self, testbed, case, value_ms, run_label):
        if case.kind is not TestCaseKind.ADDRESS_SELECTION:
            return
        count = case.addresses_per_family
        addresses = (
            [f"{self.UNRESPONSIVE_V6_PREFIX}{i + 1:x}"
             for i in range(count)]
            + [f"{self.UNRESPONSIVE_V4_PREFIX}{i + 1}"
               for i in range(count)])
        self.last_hostname = testbed.add_domain(
            f"sel-{run_label}", addresses)


class ImpairmentModule(SetupModule):
    """Applies a case's declarative :class:`ImpairmentSpec` stanzas.

    Each stanza becomes one netem rule on the server egress (where the
    paper attaches ``tc``) — or a static DNS answer delay when
    ``dns_rtype`` is set.  ``value_scaled`` stanzas add the run's sweep
    value to their base delay, so a single spec describes a sweep.
    """

    name = "impairment"

    def on_run_start(self, testbed, case, value_ms, run_label):
        for spec in case.impairments:
            delay_s = spec.delay_s + (value_ms / 1000.0
                                      if spec.value_scaled else 0.0)
            if spec.dns_rtype is not None:
                testbed.set_dns_delay(spec.dns_rtype, delay_s)
                continue
            testbed.server_iface.egress.add_rule(NetemRule(
                spec=NetemSpec(
                    delay=delay_s,
                    jitter=spec.jitter_s,
                    jitter_correlation=spec.jitter_correlation,
                    loss=spec.loss,
                    reorder_probability=spec.reorder_probability,
                    reorder_gap=spec.reorder_gap_s,
                    rate_bps=spec.rate_bps),
                filter=NetemFilter(family=spec.family,
                                   protocol=spec.protocol),
                name=spec.name or spec.label()))

    def on_run_end(self, testbed, case, value_ms):
        if case.impairments:
            testbed.clear_shaping()
            testbed.clear_dns_delays()


class ServiceModule(SetupModule):
    """Applies a case's :class:`~repro.testbed.config.ServiceSpec`.

    Registers a dedicated hostname for the run and, per the spec:
    answers it with an explicit address set (attached to the server
    node so the addresses respond — the sortlist scenarios), publishes
    an HTTPS/SVCB record (the HEv3 discovery scenarios), serves an
    alternative web port, and answers QUIC Initials on the web port(s).
    """

    name = "service-discovery"

    def __init__(self) -> None:
        self.last_hostname: Optional[str] = None

    def on_run_start(self, testbed, case, value_ms, run_label):
        spec = case.service
        if spec is None:
            return
        from ..dns.rdata import HTTPS
        from ..dns.name import DNSName
        from .topology import SERVER_V4, SERVER_V6, WEB_PORT, EchoWebServer

        label = f"svc-{run_label}"
        addresses = spec.addresses or (SERVER_V6, SERVER_V4)
        self.last_hostname = testbed.add_domain(label, list(addresses))
        from ..simnet.addr import parse_address

        for address in spec.addresses:
            if parse_address(address) not in testbed.server_iface.addresses:
                testbed.attach_server_address(address)
        if spec.https_alpn:
            record = HTTPS.service(
                priority=1, target=DNSName.root(), alpn=spec.https_alpn,
                port=spec.https_port)
            testbed.zone.add(label, record)
        if spec.https_port is not None:
            EchoWebServer(testbed.server, spec.https_port).start()
        if spec.quic_listener:
            testbed.server.quic.listen(WEB_PORT)
            if spec.https_port is not None:
                testbed.server.quic.listen(spec.https_port)


class CaptureModule(SetupModule):
    """start capture.sh / stop capture.sh on the client node."""

    name = "packet-capture"

    def __init__(self) -> None:
        self.capture: Optional[PacketCapture] = None

    def on_run_start(self, testbed, case, value_ms, run_label):
        self.capture = testbed.start_client_capture()

    def on_run_end(self, testbed, case, value_ms):
        if self.capture is not None:
            self.capture.stop()


def modules_for(case: TestCaseConfig) -> List[SetupModule]:
    """The module chain a test-case kind needs (capture always last)."""
    chain: List[SetupModule] = []
    if case.kind is TestCaseKind.CONNECTION_ATTEMPT_DELAY:
        chain.append(NetemModule())
    if case.kind in (TestCaseKind.RESOLUTION_DELAY, TestCaseKind.DELAYED_A):
        chain.append(DnsDelayModule())
    if case.kind is TestCaseKind.ADDRESS_SELECTION:
        chain.append(AddressSelectionModule())
    if case.service is not None:
        chain.append(ServiceModule())
    if case.impairments:
        chain.append(ImpairmentModule())
    chain.append(CaptureModule())
    return chain
