"""Fault-tolerant campaign runtime: retries, journal, failure manifest.

Blackbox measurement pipelines are only trustworthy when the harness
itself tolerates and reports faults.  Before this module, one crashed
worker broke the shared ``ProcessPoolExecutor`` and aborted the whole
campaign — discarding every completed result — a killed CLI invocation
could not resume, and a hung run wedged the campaign forever.  The
pieces here defend each of those seams:

* :class:`RetryPolicy` — bounded retries with seeded exponential
  backoff + jitter (:func:`repro.seeding.backoff_jitter`), so retry
  schedules are deterministic and replayable.
* :func:`resilient_map` — per-future dispatch over the shared pool: a
  ``BrokenProcessPool`` respawns the pool and re-dispatches only the
  unfinished payloads; a per-entry watchdog (``entry_timeout``)
  converts hung payloads into recorded failures instead of wedged
  campaigns.
* :class:`CampaignJournal` — an append-only log of completed store
  keys, flushed per append, so a SIGKILLed campaign resumes
  (``--resume``) with zero re-executions of journaled work.
* :class:`FaultManifest` — graceful degradation: a campaign that
  exhausts an entry's retry budget completes anyway, with the failure
  (payload, attempts, last error, elapsed) recorded and surfaced in a
  ``[faults]`` summary line next to ``[cache]``.

The crash-attribution problem: when a pool breaks, *every* in-flight
future fails with ``BrokenProcessPool`` — the culprit is
indistinguishable from its innocent pool-mates.  Charging everyone an
attempt would let one persistent crasher exhaust its neighbours'
retry budgets; charging no one would let it crash-loop forever.  The
dispatcher therefore re-dispatches break survivors in a *settle*
phase (no new payloads join until the survivors clear): a recoverable
crasher heals on its next attempt and nobody is charged, while a pool
that breaks *again* during settle can only have been broken by a
survivor — so all of them are charged, bounding persistent crashers
by the retry budget without ever spuriously failing an innocent.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Sequence, Set, TYPE_CHECKING, Tuple, Union)

from ..faults import FaultPlan
from ..seeding import backoff_jitter, stable_run_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..clients.profile import ClientProfile
    from .config import TestCaseConfig
    from .runner import RunRecord

#: Error prefix marking a record synthesized by the harness for an
#: entry whose retry budget ran out — such records are *yielded* (the
#: campaign degrades gracefully) but never stored or journaled, so a
#: later run retries the entry instead of caching the failure.
HARNESS_ERROR_PREFIX = "harness:"

_KEY_LINE = re.compile(r"^[0-9a-f]{64}$")


# -- policy & manifest ---------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the runtime fights for each entry."""

    #: Re-executions allowed per entry beyond the first attempt.
    retries: int = 0
    #: Per-entry watchdog in seconds: a dispatched entry that has not
    #: completed within this budget is treated as hung — the pool is
    #: abandoned (hung workers are terminated best-effort) and the
    #: entry charged a failed attempt.  None disables the watchdog.
    #: Serial execution cannot preempt itself, so the watchdog needs
    #: ``workers >= 2``; serially, injected hangs degrade to slow
    #: transient failures.
    entry_timeout: Optional[float] = None
    #: Backoff window parameters (see :func:`~repro.seeding
    #: .backoff_jitter`): the window doubles from ``backoff_base`` per
    #: attempt, capped at ``backoff_cap`` seconds.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Folded with the entry label into the jitter draw, so two
    #: campaigns with the same seed back off identically.
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")
        if self.entry_timeout is not None and self.entry_timeout <= 0:
            raise ValueError(
                f"entry_timeout must be > 0: {self.entry_timeout}")

    def backoff_for(self, label: str, attempt: int) -> float:
        """The deterministic sleep before retry ``attempt`` of the
        entry called ``label`` (0-based: first retry sleeps ~base)."""
        return backoff_jitter(stable_run_seed(self.backoff_seed, label),
                              attempt, base=self.backoff_base,
                              cap=self.backoff_cap)


@dataclass
class FailureEntry:
    """One entry that exhausted its retry budget."""

    label: str
    attempts: int
    error: str
    elapsed_s: float

    def line(self) -> str:
        return (f"[faults] failed {self.label} attempts={self.attempts} "
                f"elapsed={self.elapsed_s:.3f}s error={self.error}")


@dataclass
class FaultManifest:
    """Everything the resilient runtime observed in one invocation.

    Parent-side only (workers never mutate it), so unlike
    :class:`~repro.testbed.store.CacheStats` it needs no merge step.
    """

    failures: List[FailureEntry] = field(default_factory=list)
    #: Entries executed under the resilient runtime (fresh work only).
    dispatched: int = 0
    #: Re-dispatches charged against entry retry budgets.
    retries: int = 0
    #: ``BrokenProcessPool`` events survived.
    pool_breaks: int = 0
    #: Pools replaced (breaks + watchdog abandonments).
    respawns: int = 0
    #: Entries converted to failed attempts by the watchdog.
    hang_timeouts: int = 0
    #: Store writes that errored and were skipped (degraded caching).
    store_write_errors: int = 0
    #: Keys appended to the campaign journal this invocation.
    journaled: int = 0
    #: Journaled keys served from the store under ``--resume``.
    resumed: int = 0
    #: Journaled keys the store could no longer serve (re-executed).
    journal_stale: int = 0

    @property
    def touched(self) -> bool:
        return bool(self.failures or self.dispatched or self.retries
                    or self.pool_breaks or self.respawns
                    or self.hang_timeouts or self.store_write_errors
                    or self.journaled or self.resumed
                    or self.journal_stale)

    def summary(self) -> str:
        return (f"failures={len(self.failures)} retries={self.retries} "
                f"pool-breaks={self.pool_breaks} respawns={self.respawns} "
                f"hangs={self.hang_timeouts} "
                f"store-write-errors={self.store_write_errors} "
                f"journaled={self.journaled} resumed={self.resumed} "
                f"stale={self.journal_stale}")

    def failure_lines(self, limit: int = 20) -> List[str]:
        lines = [entry.line() for entry in self.failures[:limit]]
        if len(self.failures) > limit:
            lines.append(f"[faults] ... and "
                         f"{len(self.failures) - limit} more failures")
        return lines


# -- campaign journal ----------------------------------------------------------


class CampaignJournal:
    """Append-only log of completed (durably stored) campaign keys.

    One key per line, flushed per append, so every journaled key
    survives a SIGKILL of the campaign process.  Appends happen only
    *after* the store write succeeds, which gives the resume
    invariant: journaled ⊆ durable, so ``--resume`` re-executes
    nothing it journaled.  A torn final line (the kill landed mid
    write) is simply ignored on load — as is any line that does not
    look like a store key, so a corrupted journal degrades to a
    smaller resume set, never to wrong results.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None
        #: Keys appended through this handle (not the on-disk total).
        self.appended = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignJournal({str(self.path)!r})"

    def load(self) -> Set[str]:
        """Every complete, well-formed key line currently on disk."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return set()
        complete, newline, _torn_tail = text.rpartition("\n")
        if not newline:
            return set()
        return {line for line in complete.split("\n")
                if _KEY_LINE.match(line)}

    def record(self, key: str) -> None:
        """Append one completed key; the line is flushed to the OS
        before returning, so a process kill cannot lose it."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(key + "\n")
        self._handle.flush()
        self.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:
                pass
            self._handle.close()
            self._handle = None

    # The journal rides on the runner into pool workers (workers never
    # write it); the open handle stays parent-side.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_handle"] = None
        return state


# -- the bundle ----------------------------------------------------------------


@dataclass
class Resilience:
    """Everything the fault-tolerant runtime threads through a
    campaign: policy, fault plan, journal, and the manifest that
    accumulates what actually happened."""

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: Optional[FaultPlan] = None
    journal: Optional[CampaignJournal] = None
    #: ``--resume``: count journaled keys served from the store and
    #: flag journaled keys the store lost.
    resume: bool = False
    #: Whether the user asked for resilience (controls the ``[faults]``
    #: line); a store-only session journals silently.
    explicit: bool = True
    manifest: FaultManifest = field(default_factory=FaultManifest)
    _resumable: Optional[frozenset] = field(default=None, repr=False)

    @property
    def wants_resilient_dispatch(self) -> bool:
        """Whether execution must route through the retrying
        dispatcher; journaling alone keeps the legacy fast path."""
        return (self.policy.retries > 0
                or self.policy.entry_timeout is not None
                or self.fault_plan is not None)

    def resumable_keys(self) -> frozenset:
        """The journal's key set, loaded once before this campaign's
        own appends so resume accounting reflects prior invocations."""
        if self._resumable is None:
            if self.resume and self.journal is not None:
                self._resumable = frozenset(self.journal.load())
            else:
                self._resumable = frozenset()
        return self._resumable

    # -- store-merge hooks (shared by the serial and parallel loops) -----------

    def note_lookup(self, key: str, hit: bool) -> None:
        """Resume accounting for one planned key."""
        if not self.resume or key not in self.resumable_keys():
            return
        if hit:
            self.manifest.resumed += 1
        else:
            self.manifest.journal_stale += 1

    def store_fresh(self, store, key: str, record: "RunRecord") -> None:
        """Persist + journal one freshly executed record.

        Harness-failure records are never stored (a later run must
        retry, not replay the failure); store write errors degrade to
        an uncached record instead of aborting the campaign.
        """
        if is_harness_failure(record):
            return
        try:
            store.put_record(key, record)
        except OSError:
            self.manifest.store_write_errors += 1
            return
        if self.journal is not None:
            self.journal.record(key)
            self.manifest.journaled += 1

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()


# -- failure records -----------------------------------------------------------


def failure_record(case: "TestCaseConfig", profile: "ClientProfile",
                   value_ms: int, repetition: int,
                   failure: FailureEntry) -> "RunRecord":
    """The degraded-mode record for an entry the harness gave up on —
    shaped like any incomplete run so aggregation handles it, marked
    with :data:`HARNESS_ERROR_PREFIX` so it is never cached."""
    from .runner import RunRecord

    return RunRecord(
        case=case.name, kind=case.kind, client=profile.full_name,
        value_ms=value_ms, repetition=repetition, completed=False,
        error=(f"{HARNESS_ERROR_PREFIX} {failure.error} "
               f"(attempts={failure.attempts})"))


def is_harness_failure(record: "RunRecord") -> bool:
    return (record.error is not None
            and record.error.startswith(HARNESS_ERROR_PREFIX))


# -- serial retry loop ---------------------------------------------------------


def execute_with_retries(execute: "Callable[[int], Any]", label: str,
                         resilience: Resilience
                         ) -> "Tuple[Any, Optional[FailureEntry]]":
    """Run ``execute(attempt)`` under the retry policy, in-process.

    Returns ``(value, None)`` on success or ``(None, failure)`` once
    the budget is exhausted.  ``KeyboardInterrupt``/``SystemExit``
    always propagate — resilience is for the harness's faults, not
    for overriding the operator.
    """
    policy = resilience.policy
    manifest = resilience.manifest
    start = time.monotonic()
    attempt = 0
    while True:
        try:
            return execute(attempt), None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            attempt += 1
            error = str(exc) or type(exc).__name__
            if attempt > policy.retries:
                failure = FailureEntry(
                    label=label, attempts=attempt, error=error,
                    elapsed_s=time.monotonic() - start)
                manifest.failures.append(failure)
                return None, failure
            manifest.retries += 1
            delay = policy.backoff_for(label, attempt - 1)
            if delay > 0:
                time.sleep(delay)


# -- parallel resilient dispatch -----------------------------------------------


def resilient_map(fn: "Callable[[Any, int], Any]",
                  payloads: "Sequence[Any]", workers: int,
                  resilience: Resilience,
                  describe: "Callable[[Any], str]",
                  fallback: "Callable[[Any, FailureEntry], Any]"
                  ) -> "Iterator[Any]":
    """Per-future map over the shared pool, yielding results in
    payload order, surviving crashes and hangs.

    ``fn(payload, attempt)`` runs in a pool worker; the attempt number
    is threaded through so seeded fault plans target deterministically.
    At most ``workers`` payloads are in flight (a sliding window), so
    the per-entry watchdog measures actual execution time, not queue
    time.  Recovery behavior:

    * **worker crash** (``BrokenProcessPool``): the pool is respawned
      and only unfinished payloads re-dispatch.  Survivors advance
      their fault-targeting attempt but are charged a retry only if
      the pool breaks *again* while they settle (see module docstring).
    * **entry hang** (watchdog): the overdue entries are charged a
      failed attempt, the pool is abandoned without waiting
      (:func:`~repro.fanout.abandon_shared_pool`), and everything
      unfinished re-dispatches.
    * **entry exception**: charged against that entry alone; the pool
      keeps running.

    An entry that exhausts ``policy.retries`` resolves to
    ``fallback(payload, failure)`` — the campaign completes with a
    failure manifest instead of aborting.
    """
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures.process import BrokenProcessPool

    from ..fanout import (abandon_shared_pool, shared_pool,
                          shutdown_shared_pool)

    policy = resilience.policy
    manifest = resilience.manifest
    n = len(payloads)
    results: "Dict[int, Any]" = {}
    resolved = 0
    next_yield = 0
    charged = [0] * n
    fault_attempt = [0] * n
    first_dispatch: "List[Optional[float]]" = [None] * n
    ready_at = [0.0] * n
    pending: "List[int]" = list(range(n))
    inflight: "Dict[Any, int]" = {}
    submitted_at: "Dict[Any, float]" = {}
    #: After an unattributed pool break: the survivor indices that
    #: must settle before new payloads dispatch (None = normal mode).
    settling: "Optional[Set[int]]" = None

    def resolve(index: int, value: Any) -> None:
        nonlocal resolved
        results[index] = value
        resolved += 1

    def charge(index: int, error: str) -> None:
        """One failed attempt attributed to ``index`` itself."""
        charged[index] += 1
        fault_attempt[index] += 1
        if charged[index] > policy.retries:
            started = first_dispatch[index]
            failure = FailureEntry(
                label=describe(payloads[index]), attempts=charged[index],
                error=error,
                elapsed_s=(time.monotonic() - started
                           if started is not None else 0.0))
            manifest.failures.append(failure)
            resolve(index, fallback(payloads[index], failure))
        else:
            manifest.retries += 1
            ready_at[index] = time.monotonic() + policy.backoff_for(
                describe(payloads[index]), charged[index] - 1)
            pending.append(index)

    def on_pool_break() -> None:
        """Respawn after ``BrokenProcessPool``: every in-flight future
        is doomed; survivors re-dispatch (settle phase decides who, if
        anyone, gets charged — see module docstring)."""
        nonlocal settling
        manifest.pool_breaks += 1
        manifest.respawns += 1
        survivors = sorted(inflight.values())
        in_settle = settling is not None
        inflight.clear()
        submitted_at.clear()
        for index in survivors:
            if in_settle:
                # charge() advances the fault-targeting attempt too.
                charge(index, "worker crashed (pool broke repeatedly "
                              "while settling)")
            else:
                fault_attempt[index] += 1
                pending.append(index)
        settling = {index for index in survivors
                    if index not in results}
        shutdown_shared_pool()

    while resolved < n or next_yield < n:
        while next_yield in results:
            value = results.pop(next_yield)
            next_yield += 1
            yield value
        if next_yield >= n:
            break
        now = time.monotonic()
        if settling is not None and not (settling & set(pending)) \
                and not (settling & set(inflight.values())):
            settling = None  # survivors cleared: back to normal mode
        dispatchable = sorted(
            index for index in pending
            if ready_at[index] <= now
            and (settling is None or index in settling))
        dispatched_any = False
        while dispatchable and len(inflight) < max(1, workers):
            index = dispatchable.pop(0)
            pending.remove(index)
            if first_dispatch[index] is None:
                first_dispatch[index] = time.monotonic()
            pool = shared_pool(workers)
            try:
                future = pool.submit(fn, payloads[index],
                                     fault_attempt[index])
            except BrokenProcessPool:
                pending.append(index)
                on_pool_break()
                break
            inflight[future] = index
            submitted_at[future] = time.monotonic()
            dispatched_any = True
        if not inflight:
            if pending:
                # Everyone is backing off (or settling members are
                # waiting on their backoff): sleep to the earliest
                # ready time instead of spinning.
                gate = [ready_at[index] for index in pending
                        if settling is None or index in settling]
                if not gate:
                    gate = [ready_at[index] for index in pending]
                pause = max(0.0, min(gate) - time.monotonic())
                if pause > 0 and not dispatched_any:
                    time.sleep(min(pause, 0.05))
            continue
        timeout = None
        if policy.entry_timeout is not None:
            deadline = (min(submitted_at[f] for f in inflight)
                        + policy.entry_timeout)
            timeout = max(0.0, deadline - time.monotonic())
        done, _ = wait(set(inflight), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        if done:
            broke = False
            for future in done:
                index = inflight.pop(future)
                submitted_at.pop(future, None)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    # Handled once for the whole break below: put this
                    # future's index back so on_pool_break sees it.
                    inflight[future] = index
                    broke = True
                except Exception as exc:
                    if settling is not None:
                        settling.discard(index)
                    charge(index, str(exc) or type(exc).__name__)
                else:
                    if settling is not None:
                        settling.discard(index)
                    resolve(index, value)
            if broke:
                on_pool_break()
            continue
        # Watchdog: the wait timed out — charge every overdue entry,
        # abandon the wedged pool, re-dispatch everything unfinished.
        now = time.monotonic()
        overdue = [future for future, started in submitted_at.items()
                   if policy.entry_timeout is not None
                   and now - started >= policy.entry_timeout]
        if not overdue:
            continue  # spurious wake (e.g. clamped timeout)
        manifest.respawns += 1
        survivors = []
        for future, index in list(inflight.items()):
            if future in overdue:
                manifest.hang_timeouts += 1
                if settling is not None:
                    settling.discard(index)
                charge(index, f"entry exceeded the "
                              f"{policy.entry_timeout:.3f}s watchdog")
            else:
                survivors.append(index)
        inflight.clear()
        submitted_at.clear()
        for index in survivors:
            pending.append(index)  # healthy: uncharged, same attempt
        abandon_shared_pool()
