"""Content-addressed on-disk cache for campaign runs.

The paper's methodology is brute-force scale — thousands of isolated
``(case, client, value_ms, repetition)`` runs per figure — and every
run is a *pure function* of its coordinates and configuration: the
testbed is rebuilt from a stable seed, the client profile and test
case are frozen dataclasses, and the simulator is deterministic.  That
purity makes runs perfectly cacheable: re-rendering a figure with an
unchanged configuration can skip every run it already executed.

:class:`CampaignStore` is that cache.  Entries are addressed by a
SHA-256 digest over the *content* of everything that can influence a
run — the stable run seed, the full test-case and client-profile
configuration (via :func:`canonical`), and the run coordinates — so
any configuration change, however small, misses cleanly instead of
serving stale results.  Entries are JSON files written atomically
(temp file + ``rename``) and validated on read; corrupted or partial
entries are treated as misses and fall back to fresh execution.

Cache hits are **byte-identical** to fresh execution: records
round-trip through JSON exactly (Python's ``repr``-based float
serialization round-trips), which the store tests enforce the same
way the serial==parallel identity is enforced today.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    Optional, TYPE_CHECKING, Tuple, TypeVar, Union)

from .. import __version__
from ..simnet.addr import Family
from ..simnet.packet import Protocol
from .config import TestCaseKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import RunRecord

#: Bump when the entry layout or record encoding changes; old entries
#: then read as invalid and re-execute instead of mis-decoding.
#: Format 2: records carry the policy-stage observables
#: (winning_protocol, queried_https, attempts_quic, first_attempt_port).
STORE_FORMAT = 2

#: Bump when the sidecar index layout changes; old index files then
#: read as invalid and batch lookups fall back to per-key reads (the
#: entry files remain the source of truth either way).
#: Format 2: freshness is a per-shard *generation counter* stamped into
#: the index and bumped on every entry write/remove — not the shard
#: directory mtime, which every write used to invalidate wholesale.
INDEX_FORMAT = 2

#: Folded into every cache key alongside the configuration digest:
#: caching is only sound while the *code* producing a run is unchanged,
#: so a package upgrade (which may change simulator or client-model
#: behavior) must miss instead of serving the old model's results.
BEHAVIOR_VERSION = __version__

Decoded = TypeVar("Decoded")


def canonical(obj: Any) -> str:
    """A deterministic, content-complete rendering of ``obj``.

    Like :func:`repro.seeding.stable_run_seed`'s canonical form, but
    recursive: dataclasses render field-by-field, enums by class and
    member name, containers element-wise, and primitives type-tagged —
    so two configurations render identically iff every field that can
    influence a run is identical.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj))
        return f"{type(obj).__name__}({fields})"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in obj) + "]"
    if isinstance(obj, dict):
        items = sorted((canonical(k), canonical(v))
                       for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    return f"{type(obj).__name__}:{obj!r}"


def config_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    blob = canonical(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- record (de)serialization --------------------------------------------------


def encode_record(record: "RunRecord") -> dict:
    """A JSON-shaped dict from which :func:`decode_record` rebuilds
    an identical (``==``) :class:`~repro.testbed.runner.RunRecord`."""
    return {
        "case": record.case,
        "kind": record.kind.value,
        "client": record.client,
        "value_ms": record.value_ms,
        "repetition": record.repetition,
        "completed": record.completed,
        "error": record.error,
        "winning_family": (record.winning_family.name
                           if record.winning_family is not None else None),
        "winning_protocol": (record.winning_protocol.value
                             if record.winning_protocol is not None
                             else None),
        "cad_s": record.cad_s,
        "rd_s": record.rd_s,
        "time_to_first_attempt_s": record.time_to_first_attempt_s,
        "aaaa_first": record.aaaa_first,
        "queried_https": record.queried_https,
        "attempts": [[timestamp, family.name]
                     for timestamp, family in record.attempts],
        "attempts_v4": record.attempts_v4,
        "attempts_v6": record.attempts_v6,
        "attempts_quic": record.attempts_quic,
        "first_attempt_port": record.first_attempt_port,
        "duration_s": record.duration_s,
    }


def decode_record(data: dict) -> "RunRecord":
    """Rebuild a :class:`RunRecord`; raises on any malformed entry."""
    from .runner import RunRecord

    def opt_float(value: Any) -> Optional[float]:
        return None if value is None else float(value)

    return RunRecord(
        case=data["case"],
        kind=TestCaseKind(data["kind"]),
        client=data["client"],
        value_ms=int(data["value_ms"]),
        repetition=int(data["repetition"]),
        completed=bool(data["completed"]),
        error=data["error"],
        winning_family=(Family[data["winning_family"]]
                        if data["winning_family"] is not None else None),
        winning_protocol=(Protocol(data["winning_protocol"])
                          if data.get("winning_protocol") is not None
                          else None),
        cad_s=opt_float(data["cad_s"]),
        rd_s=opt_float(data["rd_s"]),
        time_to_first_attempt_s=opt_float(data["time_to_first_attempt_s"]),
        aaaa_first=data["aaaa_first"],
        queried_https=bool(data.get("queried_https", False)),
        attempts=[(float(timestamp), Family[family])
                  for timestamp, family in data["attempts"]],
        attempts_v4=int(data["attempts_v4"]),
        attempts_v6=int(data["attempts_v6"]),
        attempts_quic=int(data.get("attempts_quic", 0)),
        first_attempt_port=(int(data["first_attempt_port"])
                            if data.get("first_attempt_port") is not None
                            else None),
        duration_s=opt_float(data["duration_s"]),
    )


# -- the store -----------------------------------------------------------------


@dataclass
class CacheStats:
    """Lookup counters for one store handle (reset per handle)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    #: Content-invalid entries moved aside to ``.quarantine/`` (a
    #: subset of ``invalid``: unreadable-but-maybe-fine files stay put).
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def entries_invalid(self) -> int:
        """Corrupt/partial entries rejected on read (alias of
        ``invalid`` under the name the ``[cache]`` line reports)."""
        return self.invalid

    def merge(self, other: "CacheStats") -> None:
        """Fold counters from another handle in (e.g. a worker's
        pickled store copy) so campaign totals stay truthful."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.invalid += other.invalid
        self.quarantined += other.quarantined

    def summary(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"stores={self.stores} entries_invalid={self.invalid} "
                f"quarantined={self.quarantined}")


class CampaignStore:
    """Content-addressed cache of campaign run results on disk.

    Entries live at ``root/<key[:2]>/<key>.json`` where ``key`` is
    :meth:`key` over the run seed, configuration digest, and run
    coordinates.  Writes are atomic (temp file in the same directory,
    then ``os.replace``), so concurrent writers — e.g. several worker
    pools sharing one cache directory — can never leave a torn entry
    behind; a reader either sees a complete entry or none.  Reads
    validate the format version and completeness marker and fall back
    to fresh execution on anything unexpected.
    """

    def __init__(self, root: Union[str, Path],
                 use_index: bool = True) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        #: Chaos harness hook (:class:`~repro.faults.FaultPlan`): when
        #: set, targeted reads raise-as-miss and targeted writes tear,
        #: exactly as crashing hardware would.  None in production.
        self.fault_plan = None
        #: Batch lookups (:meth:`get_many`) consult the per-shard
        #: sidecar index when True; False forces per-key reads (the
        #: benchmark baseline, and an escape hatch).
        self.use_index = use_index
        #: Per-shard in-memory index mirror kept generation-consistent
        #: by this handle's own writes, so hot mixed read/write
        #: campaigns never rebuild an index they just extended.
        self._mem_index: "Dict[str, dict]" = {}
        #: Shards whose in-memory index is ahead of the sidecar file.
        self._dirty_index: "set[str]" = set()
        #: Full index rebuild passes (every entry of a shard re-read);
        #: the generation counter exists to keep this flat under mixed
        #: read/write load, which the store benchmark asserts.
        self.index_rebuilds = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({str(self.root)!r}, {self.stats.summary()})"

    # -- addressing ------------------------------------------------------------

    @staticmethod
    def key(*parts: Any) -> str:
        """The content address of an entry: a digest over ``parts``
        plus the store format and package behavior version."""
        return config_digest(STORE_FORMAT, BEHAVIOR_VERSION, *parts)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` — a cheap ``stat``
        that does **not** validate the entry or touch the counters.
        Use for planning only; :meth:`get` remains the authority."""
        return self._path(key).is_file()

    # -- generic payloads ------------------------------------------------------

    def get(self, key: str,
            decode: "Callable[[Any], Decoded]") -> Optional[Decoded]:
        """Decoded payload for ``key``, or None (counted as a miss).

        Unreadable files, bad JSON, format mismatches, missing
        completeness markers, and decoder failures all count as
        ``invalid`` misses — the caller re-executes and overwrites.
        Entries whose *content* is provably bad (torn JSON, wrong
        format, no completeness marker, undecodable payload) are
        additionally quarantined: moved to ``root/.quarantine/`` so
        they stop shadowing the slot and stay available for forensics.
        Unreadable files (transient ``OSError``) are left in place —
        the next read may succeed.
        """
        if self._maybe_read_fault(key):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        except ValueError:
            self._quarantine(key, path)
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (isinstance(data, dict) and data.get("format") == STORE_FORMAT
                and data.get("complete") is True and "payload" in data):
            try:
                decoded = decode(data["payload"])
            except Exception:
                pass
            else:
                self.stats.hits += 1
                return decoded
        self._quarantine(key, path)
        self.stats.invalid += 1
        self.stats.misses += 1
        return None

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a content-invalid entry to ``root/.quarantine/<shard>/``.

        Leaving a corrupt entry at its addressed path makes every
        future campaign re-reject it (an ``invalid`` miss per lookup,
        forever, since the re-executed write may land elsewhere first
        or the campaign may be read-only); deleting it destroys the
        evidence.  Quarantine does neither: the slot frees up for the
        re-executed write and the bytes survive for inspection.  GC
        never enters dot-directories, so quarantined entries outlive
        sweeps until an operator removes them.
        """
        shard = key[:2]
        dest = self.root / ".quarantine" / shard / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            return  # can't move it: degrade to a plain invalid miss
        self.stats.quarantined += 1
        # The shard changed out from under any index: drop our mirror
        # and bump the generation so sidecars read as stale.
        self._mem_index.pop(shard, None)
        self._dirty_index.discard(shard)
        self._bump_generation(shard)

    def _maybe_read_fault(self, key: str) -> bool:
        """Chaos-only: whether an injected transient read error fires
        for ``key`` (the caller counts it as an invalid miss)."""
        plan = self.fault_plan
        if plan is None:
            return False
        return plan.store_fault("read", key) is not None

    def put(self, key: str, payload: Any) -> None:
        """Atomically persist ``payload`` (JSON-serializable) under
        ``key``; the ``complete`` marker goes in with the same write,
        so a torn write can never read as a valid entry.

        Every write bumps the shard's generation counter and — when
        this handle holds the shard's index in memory — extends that
        index in place, so a warm campaign that interleaves writes
        keeps batch-lookup speed instead of rebuilding per batch.
        """
        plan = self.fault_plan
        if plan is not None:
            spec = plan.store_fault("write", key)
            if spec is not None:
                self._faulted_write(key, spec, payload)
                return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": STORE_FORMAT, "complete": True, "key": key,
                 "payload": payload}
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                        prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        shard = key[:2]
        cached = self._mem_index.get(shard)
        if cached is not None:
            # Extend the tracked index in place; the generation-file
            # write is deferred to the next batch flush, so the hot
            # write path costs one dir stat, not a counter rename.
            cached["entries"][key] = payload
            cached["pending"] += 1
            cached["dir_mtime_ns"] = self._dir_mtime_ns(shard)
            self._dirty_index.add(shard)
        elif self._index_path(shard).is_file():
            # Someone else's sidecar covers this shard: invalidate it
            # the cheap way (its stamped generation falls behind).
            self._bump_generation(shard)
        # else: no index exists anywhere for this shard — nothing to
        # invalidate or extend; cold campaigns pay one stat per write.

    def _faulted_write(self, key: str, spec, payload: Any) -> None:
        """Chaos-only: replace an entry write with what a dying writer
        leaves behind.

        ``io-error`` raises before touching disk (a full filesystem, a
        yanked mount).  ``corrupt`` writes truncated garbage and
        ``partial`` a structurally valid entry with no completeness
        marker — both written *directly*, no temp file, no rename, no
        generation bump, no index extension: the precise disk state a
        writer killed mid-write produces, which is what the quarantine
        path and the resume machinery must recover from.
        """
        from ..faults import FaultKind

        if spec.kind is FaultKind.IO_ERROR:
            raise OSError(f"injected store write error ({key[:12]}...)")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if spec.kind is FaultKind.CORRUPT_WRITE:
            text = f'{{"format": {STORE_FORMAT}, "complete": tru'
        else:  # PARTIAL_WRITE: valid JSON, incomplete entry
            text = json.dumps({"format": STORE_FORMAT, "key": key,
                               "payload": payload}, sort_keys=True)
        path.write_text(text, encoding="utf-8")
        # The writer believed it stored the entry — count it so the
        # chaos battery can see the lie in the counters.
        self.stats.stores += 1

    # -- batch lookup + sidecar index ------------------------------------------

    def _index_path(self, shard: str) -> Path:
        """Sidecar index for one shard, kept *outside* the shard
        directory (``root/.index/<shard>.json``) next to the shard's
        generation counter (``<shard>.gen``)."""
        return self.root / ".index" / f"{shard}.json"

    def _generation_path(self, shard: str) -> Path:
        return self.root / ".index" / f"{shard}.gen"

    def _dir_mtime_ns(self, shard: str) -> Optional[int]:
        try:
            return (self.root / shard).stat().st_mtime_ns
        except OSError:
            return None

    def _generation(self, shard: str) -> int:
        """The shard's current generation (0 before any counted write)."""
        try:
            return int(self._generation_path(shard)
                       .read_text(encoding="ascii"))
        except (OSError, ValueError):
            return 0

    def _write_generation(self, shard: str, generation: int) -> None:
        """Persist the counter (atomic rename: never a torn read)."""
        path = self._generation_path(shard)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                            prefix=".tmp-", suffix=".gen")
            try:
                with os.fdopen(fd, "w", encoding="ascii") as handle:
                    handle.write(str(generation))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # an uncounted write degrades to an index rebuild
        return None

    def _bump_generation(self, shard: str) -> int:
        """Advance the shard's generation counter (entry write/remove).

        Concurrent writers may collapse a bump (read-modify-write
        race); that can only make an index *look* fresh while missing
        a key — and keys absent from an index always fall back to
        per-key reads, so lookups stay correct either way.
        """
        generation = self._generation(shard) + 1
        self._write_generation(shard, generation)
        return generation

    def _load_index(self, shard: str) -> Optional[dict]:
        """The shard's indexed payloads, or None.

        An index is served only when it is *provably current* on two
        independent signals: its stamped ``generation`` must equal the
        shard's counter (every entry write/remove through the store
        bumps it — but a writer that holds the index in memory
        re-stamps it as it extends it, which is how hot mixed
        read/write campaigns keep batch-lookup speed without rebuild
        churn), and its recorded ``dir_mtime_ns`` must equal the shard
        directory's (which catches *out-of-band* entry additions and
        deletions that never touched the counter — manual pruning,
        partial cache syncs).  A stale, corrupt, missing, or
        format-mismatched index is simply ignored — the entry files
        stay the source of truth and per-key reads take over.
        """
        current = self._generation(shard)
        dir_mtime_ns = self._dir_mtime_ns(shard)
        if dir_mtime_ns is None:
            return None
        cached = self._mem_index.get(shard)
        if (cached is not None and cached["generation"] == current
                and cached["dir_mtime_ns"] == dir_mtime_ns):
            # ``generation`` is the last *flushed* value; our own
            # unflushed writes live in ``pending`` and are already in
            # ``entries``, so a matching file counter means nobody
            # else wrote and the mirror is complete.
            return cached["entries"]
        try:
            data = json.loads(self._index_path(shard)
                              .read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (not isinstance(data, dict)
                or data.get("index_format") != INDEX_FORMAT
                or data.get("store_format") != STORE_FORMAT
                or not isinstance(data.get("entries"), dict)
                or data.get("generation") != current
                or data.get("dir_mtime_ns") != dir_mtime_ns):
            return None
        self._mem_index[shard] = {"generation": current, "pending": 0,
                                  "dir_mtime_ns": dir_mtime_ns,
                                  "entries": data["entries"]}
        self._dirty_index.discard(shard)
        return data["entries"]

    def _build_index(self, shard: str) -> Optional[dict]:
        """Read every valid entry of a shard once and persist the
        sidecar index; returns the payload mapping (or None when the
        shard does not exist).  Invalid entries are skipped — absent
        from the index, they keep falling back to per-key reads,
        which count them truthfully.  The stamped generation is
        sampled *before* listing, so a concurrent writer can only make
        the index look stale, never serve missing entries as misses.
        """
        shard_dir = self.root / shard
        if not shard_dir.is_dir():
            return None
        # Both freshness markers are sampled *before* listing, so a
        # concurrent writer can only make the index look stale, never
        # serve missing entries as misses.
        generation = self._generation(shard)
        dir_mtime_ns = self._dir_mtime_ns(shard)
        if dir_mtime_ns is None:
            return None
        entries: dict = {}
        for path in shard_dir.glob("*.json"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if (isinstance(data, dict)
                    and data.get("format") == STORE_FORMAT
                    and data.get("complete") is True
                    and "payload" in data):
                entries[path.stem] = data["payload"]
        self.index_rebuilds += 1
        self._mem_index[shard] = {"generation": generation, "pending": 0,
                                  "dir_mtime_ns": dir_mtime_ns,
                                  "entries": entries}
        self._dirty_index.discard(shard)
        self._write_index(shard, generation, dir_mtime_ns, entries)
        return entries

    def _write_index(self, shard: str, generation: int,
                     dir_mtime_ns: int, entries: dict) -> None:
        index = {"index_format": INDEX_FORMAT,
                 "store_format": STORE_FORMAT,
                 "generation": generation, "dir_mtime_ns": dir_mtime_ns,
                 "entries": entries}
        index_path = self._index_path(shard)
        try:
            index_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(index_path.parent),
                                            prefix=".tmp-",
                                            suffix=".json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(index, handle, sort_keys=True)
                os.replace(tmp_name, index_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # an unwritable index is a perf loss, not an error

    def _flush_index(self, shard: str) -> None:
        """Persist a put-extended in-memory index (once per batch, not
        once per write) so other handles inherit the warm index too.
        The deferred counter bumps land in the same flush: the file
        advances by ``pending`` and the sidecar is stamped to match."""
        cached = self._mem_index.get(shard)
        if cached is None or shard not in self._dirty_index:
            return
        if cached["generation"] != self._generation(shard):
            return  # someone else wrote meanwhile; let them rebuild
        if cached["pending"]:
            cached["generation"] += cached["pending"]
            cached["pending"] = 0
            self._write_generation(shard, cached["generation"])
        self._write_index(shard, cached["generation"],
                          cached["dir_mtime_ns"], cached["entries"])
        self._dirty_index.discard(shard)

    def get_many(self, keys: "Iterable[str]",
                 decode: "Callable[[Any], Decoded]"
                 ) -> "Dict[str, Decoded]":
        """Batch lookup: decoded payloads for every key that hits.

        Keys are grouped by shard and each touched shard resolves
        through its sidecar index — one index read (or one rebuild
        pass) per shard instead of one ``stat`` + JSON read per key,
        which is what makes warm million-run campaigns resolve their
        hits at directory speed, not entry speed.  Keys the index
        cannot vouch for fall back to :meth:`get` one at a time, so
        counters (hits / misses / invalid) are identical to a pure
        per-key resolution; keys absent from the result are misses.
        """
        out: "Dict[str, Decoded]" = {}
        by_shard: "Dict[str, List[str]]" = {}
        for key in keys:
            by_shard.setdefault(key[:2], []).append(key)
        for shard, shard_keys in by_shard.items():
            indexed: Optional[dict] = None
            if self.use_index:
                self._flush_index(shard)
                indexed = self._load_index(shard)
                if indexed is None and any(
                        self.has(key) for key in shard_keys):
                    # Build only when the shard can actually serve a
                    # requested key: a miss-heavy campaign over a big
                    # store must not read (and duplicate) every entry
                    # just to conclude its own keys are new.  The
                    # existence probe is one stat per requested key —
                    # exactly the old per-spec planning cost, paid
                    # only on shards with no fresh index.
                    indexed = self._build_index(shard)
            for key in shard_keys:
                if self._maybe_read_fault(key):
                    self.stats.invalid += 1
                    self.stats.misses += 1
                    continue
                if indexed is not None and key in indexed:
                    try:
                        decoded = decode(indexed[key])
                    except Exception:
                        pass  # undecodable: per-key read settles it
                    else:
                        self.stats.hits += 1
                        out[key] = decoded
                        continue
                value = self.get(key, decode)
                if value is not None:
                    out[key] = value
        return out

    def get_many_records(self, keys: "Iterable[str]"
                         ) -> "Dict[str, RunRecord]":
        return self.get_many(keys, decode_record)

    # -- RunRecord convenience -------------------------------------------------

    def get_record(self, key: str) -> "Optional[RunRecord]":
        return self.get(key, decode_record)

    def put_record(self, key: str, record: "RunRecord") -> None:
        self.put(key, encode_record(record))

    # -- compaction ------------------------------------------------------------

    def entries(self) -> "Iterator[Tuple[str, Path]]":
        """Every ``(key, path)`` currently on disk, in sorted order.

        Walks the two-hex shard directories; anything that does not
        look like an entry file (temp files from in-flight writes,
        stray droppings) is not reported here — :meth:`gc` handles
        leftover temp files separately.
        """
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json")):
                if not path.name.startswith(".tmp-"):
                    yield path.stem, path

    def gc(self, live_keys: "Iterable[str]") -> "GCStats":
        """Drop every entry whose key is not in ``live_keys``.

        Content-addressed entries accumulate forever: any sweep,
        seed, profile, or package-version change strands the old
        digests.  GC is a mark-and-sweep over the directory — the
        caller enumerates the keys its current campaigns reference
        (see ``TestRunner.store_keys``), everything else is deleted,
        and stale ``.tmp-*`` droppings from crashed writers go too.
        Run it offline: a writer racing the sweep would only lose
        cache entries (and re-execute), never correctness.
        """
        live = set(live_keys)
        stats = GCStats()
        dirty_shards: "set[str]" = set()
        self._mem_index.clear()
        self._dirty_index.clear()
        for key, path in self.entries():
            size = path.stat().st_size
            if key in live:
                stats.kept += 1
                stats.kept_bytes += size
                continue
            path.unlink()
            stats.removed += 1
            stats.reclaimed_bytes += size
            dirty_shards.add(path.parent.name)
        if self.root.is_dir():
            for shard in self.root.iterdir():
                # Dot-directories are off limits to the sweep: .index
                # is handled below, and .quarantine/.journal must
                # survive gc (quarantined evidence and resume state
                # are not cache entries).
                if not shard.is_dir() or shard.name.startswith("."):
                    continue
                for stale in shard.glob(".tmp-*"):
                    stats.reclaimed_bytes += stale.stat().st_size
                    stale.unlink()
                    stats.removed_tmp += 1
                    dirty_shards.add(shard.name)
                try:
                    shard.rmdir()  # only succeeds when emptied
                except OSError:
                    pass
            # Every sweep-touched shard gets a generation bump so any
            # index built before the sweep — on disk, or in another
            # handle's memory — reads as stale rather than serving
            # removed entries.
            for shard in dirty_shards:
                if (self.root / shard).is_dir():
                    self._bump_generation(shard)
            # Sidecar indexes are derived data: drop the ones whose
            # shard changed (or vanished) in this sweep — staleness
            # detection would ignore them anyway — and keep the still
            # fresh ones warm.  Generation counters survive for
            # surviving shards (they are the staleness authority) and
            # go with their shard otherwise.
            index_dir = self.root / ".index"
            if index_dir.is_dir():
                for index_file in index_dir.iterdir():
                    shard = index_file.name.split(".")[0]
                    if not shard:
                        # .tmp-* dropping from a crashed index writer.
                        stats.reclaimed_bytes += \
                            index_file.stat().st_size
                        index_file.unlink()
                        stats.removed_tmp += 1
                        continue
                    shard_gone = not (self.root / shard).is_dir()
                    if index_file.suffix == ".gen":
                        if shard_gone:
                            stats.reclaimed_bytes += \
                                index_file.stat().st_size
                            index_file.unlink()
                            stats.removed_index += 1
                    elif shard in dirty_shards or shard_gone:
                        stats.reclaimed_bytes += \
                            index_file.stat().st_size
                        index_file.unlink()
                        stats.removed_index += 1
                try:
                    index_dir.rmdir()  # only succeeds when emptied
                except OSError:
                    pass
        return stats


@dataclass
class GCStats:
    """Outcome of one :meth:`CampaignStore.gc` sweep."""

    kept: int = 0
    kept_bytes: int = 0
    removed: int = 0
    reclaimed_bytes: int = 0
    removed_tmp: int = 0
    removed_index: int = 0

    def summary(self) -> str:
        return (f"kept={self.kept} ({self.kept_bytes} B) "
                f"removed={self.removed} tmp={self.removed_tmp} "
                f"reclaimed={self.reclaimed_bytes} B")
