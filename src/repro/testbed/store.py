"""Content-addressed on-disk cache for campaign runs.

The paper's methodology is brute-force scale — thousands of isolated
``(case, client, value_ms, repetition)`` runs per figure — and every
run is a *pure function* of its coordinates and configuration: the
testbed is rebuilt from a stable seed, the client profile and test
case are frozen dataclasses, and the simulator is deterministic.  That
purity makes runs perfectly cacheable: re-rendering a figure with an
unchanged configuration can skip every run it already executed.

:class:`CampaignStore` is that cache.  Entries are addressed by a
SHA-256 digest over the *content* of everything that can influence a
run — the stable run seed, the full test-case and client-profile
configuration (via :func:`canonical`), and the run coordinates — so
any configuration change, however small, misses cleanly instead of
serving stale results.  Entries are JSON files written atomically
(temp file + ``rename``) and validated on read; corrupted or partial
entries are treated as misses and fall back to fresh execution.

Cache hits are **byte-identical** to fresh execution: records
round-trip through JSON exactly (Python's ``repr``-based float
serialization round-trips), which the store tests enforce the same
way the serial==parallel identity is enforced today.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    Optional, TYPE_CHECKING, Tuple, TypeVar, Union)

from .. import __version__
from ..simnet.addr import Family
from ..simnet.packet import Protocol
from .config import TestCaseKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import RunRecord

#: Bump when the entry layout or record encoding changes; old entries
#: then read as invalid and re-execute instead of mis-decoding.
#: Format 2: records carry the policy-stage observables
#: (winning_protocol, queried_https, attempts_quic, first_attempt_port).
STORE_FORMAT = 2

#: Bump when the sidecar index layout changes; old index files then
#: read as invalid and batch lookups fall back to per-key reads (the
#: entry files remain the source of truth either way).
#: Format 2: freshness is a per-shard *generation counter* stamped into
#: the index and bumped on every entry write/remove — not the shard
#: directory mtime, which every write used to invalidate wholesale.
INDEX_FORMAT = 2

#: Folded into every cache key alongside the configuration digest:
#: caching is only sound while the *code* producing a run is unchanged,
#: so a package upgrade (which may change simulator or client-model
#: behavior) must miss instead of serving the old model's results.
BEHAVIOR_VERSION = __version__

Decoded = TypeVar("Decoded")


def canonical(obj: Any) -> str:
    """A deterministic, content-complete rendering of ``obj``.

    Like :func:`repro.seeding.stable_run_seed`'s canonical form, but
    recursive: dataclasses render field-by-field, enums by class and
    member name, containers element-wise, and primitives type-tagged —
    so two configurations render identically iff every field that can
    influence a run is identical.
    """
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj))
        return f"{type(obj).__name__}({fields})"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in obj) + "]"
    if isinstance(obj, dict):
        items = sorted((canonical(k), canonical(v))
                       for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    return f"{type(obj).__name__}:{obj!r}"


def config_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    blob = canonical(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- record (de)serialization --------------------------------------------------


def encode_record(record: "RunRecord") -> dict:
    """A JSON-shaped dict from which :func:`decode_record` rebuilds
    an identical (``==``) :class:`~repro.testbed.runner.RunRecord`."""
    return {
        "case": record.case,
        "kind": record.kind.value,
        "client": record.client,
        "value_ms": record.value_ms,
        "repetition": record.repetition,
        "completed": record.completed,
        "error": record.error,
        "winning_family": (record.winning_family.name
                           if record.winning_family is not None else None),
        "winning_protocol": (record.winning_protocol.value
                             if record.winning_protocol is not None
                             else None),
        "cad_s": record.cad_s,
        "rd_s": record.rd_s,
        "time_to_first_attempt_s": record.time_to_first_attempt_s,
        "aaaa_first": record.aaaa_first,
        "queried_https": record.queried_https,
        "attempts": [[timestamp, family.name]
                     for timestamp, family in record.attempts],
        "attempts_v4": record.attempts_v4,
        "attempts_v6": record.attempts_v6,
        "attempts_quic": record.attempts_quic,
        "first_attempt_port": record.first_attempt_port,
        "duration_s": record.duration_s,
    }


def decode_record(data: dict) -> "RunRecord":
    """Rebuild a :class:`RunRecord`; raises on any malformed entry."""
    from .runner import RunRecord

    def opt_float(value: Any) -> Optional[float]:
        return None if value is None else float(value)

    return RunRecord(
        case=data["case"],
        kind=TestCaseKind(data["kind"]),
        client=data["client"],
        value_ms=int(data["value_ms"]),
        repetition=int(data["repetition"]),
        completed=bool(data["completed"]),
        error=data["error"],
        winning_family=(Family[data["winning_family"]]
                        if data["winning_family"] is not None else None),
        winning_protocol=(Protocol(data["winning_protocol"])
                          if data.get("winning_protocol") is not None
                          else None),
        cad_s=opt_float(data["cad_s"]),
        rd_s=opt_float(data["rd_s"]),
        time_to_first_attempt_s=opt_float(data["time_to_first_attempt_s"]),
        aaaa_first=data["aaaa_first"],
        queried_https=bool(data.get("queried_https", False)),
        attempts=[(float(timestamp), Family[family])
                  for timestamp, family in data["attempts"]],
        attempts_v4=int(data["attempts_v4"]),
        attempts_v6=int(data["attempts_v6"]),
        attempts_quic=int(data.get("attempts_quic", 0)),
        first_attempt_port=(int(data["first_attempt_port"])
                            if data.get("first_attempt_port") is not None
                            else None),
        duration_s=opt_float(data["duration_s"]),
    )


# -- the store -----------------------------------------------------------------


@dataclass
class CacheStats:
    """Lookup counters for one store handle (reset per handle)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    #: Content-invalid entries moved aside to ``.quarantine/`` (a
    #: subset of ``invalid``: unreadable-but-maybe-fine files stay put).
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def entries_invalid(self) -> int:
        """Corrupt/partial entries rejected on read (alias of
        ``invalid`` under the name the ``[cache]`` line reports)."""
        return self.invalid

    def merge(self, other: "CacheStats") -> None:
        """Fold counters from another handle in (e.g. a worker's
        pickled store copy) so campaign totals stay truthful."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.invalid += other.invalid
        self.quarantined += other.quarantined

    def summary(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"stores={self.stores} entries_invalid={self.invalid} "
                f"quarantined={self.quarantined}")


class CampaignStore:
    """Content-addressed cache of campaign run results on disk.

    Entries live at ``root/<key[:2]>/<key>.json`` where ``key`` is
    :meth:`key` over the run seed, configuration digest, and run
    coordinates.  Writes are atomic (temp file in the same directory,
    then ``os.replace``), so concurrent writers — e.g. several worker
    pools sharing one cache directory — can never leave a torn entry
    behind; a reader either sees a complete entry or none.  Reads
    validate the format version and completeness marker and fall back
    to fresh execution on anything unexpected.
    """

    def __init__(self, root: Union[str, Path],
                 use_index: bool = True) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        #: Chaos harness hook (:class:`~repro.faults.FaultPlan`): when
        #: set, targeted reads raise-as-miss and targeted writes tear,
        #: exactly as crashing hardware would.  None in production.
        self.fault_plan = None
        #: Batch lookups (:meth:`get_many`) consult the per-shard
        #: sidecar index when True; False forces per-key reads (the
        #: benchmark baseline, and an escape hatch).
        self.use_index = use_index
        #: Per-shard in-memory index mirror kept generation-consistent
        #: by this handle's own writes, so hot mixed read/write
        #: campaigns never rebuild an index they just extended.
        self._mem_index: "Dict[str, dict]" = {}
        #: Shards whose in-memory index is ahead of the sidecar file.
        self._dirty_index: "set[str]" = set()
        #: Full index rebuild passes (every entry of a shard re-read);
        #: the generation counter exists to keep this flat under mixed
        #: read/write load, which the store benchmark asserts.
        self.index_rebuilds = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({str(self.root)!r}, {self.stats.summary()})"

    # -- addressing ------------------------------------------------------------

    @staticmethod
    def key(*parts: Any) -> str:
        """The content address of an entry: a digest over ``parts``
        plus the store format and package behavior version."""
        return config_digest(STORE_FORMAT, BEHAVIOR_VERSION, *parts)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` — a cheap ``stat``
        that does **not** validate the entry or touch the counters.
        Use for planning only; :meth:`get` remains the authority."""
        return self._path(key).is_file()

    # -- generic payloads ------------------------------------------------------

    def get(self, key: str,
            decode: "Callable[[Any], Decoded]") -> Optional[Decoded]:
        """Decoded payload for ``key``, or None (counted as a miss).

        Unreadable files, bad JSON, format mismatches, missing
        completeness markers, and decoder failures all count as
        ``invalid`` misses — the caller re-executes and overwrites.
        Entries whose *content* is provably bad (torn JSON, wrong
        format, no completeness marker, undecodable payload) are
        additionally quarantined: moved to ``root/.quarantine/`` so
        they stop shadowing the slot and stay available for forensics.
        Unreadable files (transient ``OSError``) are left in place —
        the next read may succeed.
        """
        if self._maybe_read_fault(key):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        except ValueError:
            self._quarantine(key, path)
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (isinstance(data, dict) and data.get("format") == STORE_FORMAT
                and data.get("complete") is True and "payload" in data):
            try:
                decoded = decode(data["payload"])
            except Exception:
                pass
            else:
                self.stats.hits += 1
                return decoded
        self._quarantine(key, path)
        self.stats.invalid += 1
        self.stats.misses += 1
        return None

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a content-invalid entry to ``root/.quarantine/<shard>/``.

        Leaving a corrupt entry at its addressed path makes every
        future campaign re-reject it (an ``invalid`` miss per lookup,
        forever, since the re-executed write may land elsewhere first
        or the campaign may be read-only); deleting it destroys the
        evidence.  Quarantine does neither: the slot frees up for the
        re-executed write and the bytes survive for inspection.  GC
        never enters dot-directories, so quarantined entries outlive
        sweeps until an operator removes them.
        """
        shard = key[:2]
        dest = self.root / ".quarantine" / shard / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            return  # can't move it: degrade to a plain invalid miss
        self.stats.quarantined += 1
        # The shard changed out from under any index: drop our mirror
        # and bump the generation so sidecars read as stale.
        self._mem_index.pop(shard, None)
        self._dirty_index.discard(shard)
        self._bump_generation(shard)

    def _maybe_read_fault(self, key: str) -> bool:
        """Chaos-only: whether an injected transient read error fires
        for ``key`` (the caller counts it as an invalid miss)."""
        plan = self.fault_plan
        if plan is None:
            return False
        return plan.store_fault("read", key) is not None

    def put(self, key: str, payload: Any) -> None:
        """Atomically persist ``payload`` (JSON-serializable) under
        ``key``; the ``complete`` marker goes in with the same write,
        so a torn write can never read as a valid entry.

        Every write bumps the shard's generation counter and — when
        this handle holds the shard's index in memory — extends that
        index in place, so a warm campaign that interleaves writes
        keeps batch-lookup speed instead of rebuilding per batch.
        """
        plan = self.fault_plan
        if plan is not None:
            spec = plan.store_fault("write", key)
            if spec is not None:
                self._faulted_write(key, spec, payload)
                return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": STORE_FORMAT, "complete": True, "key": key,
                 "payload": payload}
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                        prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        shard = key[:2]
        cached = self._mem_index.get(shard)
        if cached is not None:
            # Extend the tracked index in place; the generation-file
            # write is deferred to the next batch flush, so the hot
            # write path costs one dir stat, not a counter rename.
            cached["entries"][key] = payload
            cached["pending"] += 1
            cached["dir_mtime_ns"] = self._dir_mtime_ns(shard)
            self._dirty_index.add(shard)
        elif self._index_path(shard).is_file():
            # Someone else's sidecar covers this shard: invalidate it
            # the cheap way (its stamped generation falls behind).
            self._bump_generation(shard)
        # else: no index exists anywhere for this shard — nothing to
        # invalidate or extend; cold campaigns pay one stat per write.

    def _faulted_write(self, key: str, spec, payload: Any) -> None:
        """Chaos-only: replace an entry write with what a dying writer
        leaves behind.

        ``io-error`` raises before touching disk (a full filesystem, a
        yanked mount).  ``corrupt`` writes truncated garbage and
        ``partial`` a structurally valid entry with no completeness
        marker — both written *directly*, no temp file, no rename, no
        generation bump, no index extension: the precise disk state a
        writer killed mid-write produces, which is what the quarantine
        path and the resume machinery must recover from.
        """
        from ..faults import FaultKind

        if spec.kind is FaultKind.IO_ERROR:
            raise OSError(f"injected store write error ({key[:12]}...)")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if spec.kind is FaultKind.CORRUPT_WRITE:
            text = f'{{"format": {STORE_FORMAT}, "complete": tru'
        else:  # PARTIAL_WRITE: valid JSON, incomplete entry
            text = json.dumps({"format": STORE_FORMAT, "key": key,
                               "payload": payload}, sort_keys=True)
        path.write_text(text, encoding="utf-8")
        # The writer believed it stored the entry — count it so the
        # chaos battery can see the lie in the counters.
        self.stats.stores += 1

    # -- batch lookup + sidecar index ------------------------------------------

    def _index_path(self, shard: str) -> Path:
        """Sidecar index for one shard, kept *outside* the shard
        directory (``root/.index/<shard>.json``) next to the shard's
        generation counter (``<shard>.gen``)."""
        return self.root / ".index" / f"{shard}.json"

    def _generation_path(self, shard: str) -> Path:
        return self.root / ".index" / f"{shard}.gen"

    def _dir_mtime_ns(self, shard: str) -> Optional[int]:
        try:
            return (self.root / shard).stat().st_mtime_ns
        except OSError:
            return None

    def _generation(self, shard: str) -> int:
        """The shard's current generation (0 before any counted write)."""
        try:
            return int(self._generation_path(shard)
                       .read_text(encoding="ascii"))
        except (OSError, ValueError):
            return 0

    def _write_generation(self, shard: str, generation: int) -> None:
        """Persist the counter (atomic rename: never a torn read)."""
        path = self._generation_path(shard)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                            prefix=".tmp-", suffix=".gen")
            try:
                with os.fdopen(fd, "w", encoding="ascii") as handle:
                    handle.write(str(generation))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # an uncounted write degrades to an index rebuild
        return None

    def _bump_generation(self, shard: str) -> int:
        """Advance the shard's generation counter (entry write/remove).

        Concurrent writers may collapse a bump (read-modify-write
        race); that can only make an index *look* fresh while missing
        a key — and keys absent from an index always fall back to
        per-key reads, so lookups stay correct either way.
        """
        generation = self._generation(shard) + 1
        self._write_generation(shard, generation)
        return generation

    def _load_index(self, shard: str) -> Optional[dict]:
        """The shard's indexed payloads, or None.

        An index is served only when it is *provably current* on two
        independent signals: its stamped ``generation`` must equal the
        shard's counter (every entry write/remove through the store
        bumps it — but a writer that holds the index in memory
        re-stamps it as it extends it, which is how hot mixed
        read/write campaigns keep batch-lookup speed without rebuild
        churn), and its recorded ``dir_mtime_ns`` must equal the shard
        directory's (which catches *out-of-band* entry additions and
        deletions that never touched the counter — manual pruning,
        partial cache syncs).  A stale, corrupt, missing, or
        format-mismatched index is simply ignored — the entry files
        stay the source of truth and per-key reads take over.
        """
        current = self._generation(shard)
        dir_mtime_ns = self._dir_mtime_ns(shard)
        if dir_mtime_ns is None:
            return None
        cached = self._mem_index.get(shard)
        if (cached is not None and cached["generation"] == current
                and cached["dir_mtime_ns"] == dir_mtime_ns):
            # ``generation`` is the last *flushed* value; our own
            # unflushed writes live in ``pending`` and are already in
            # ``entries``, so a matching file counter means nobody
            # else wrote and the mirror is complete.
            return cached["entries"]
        try:
            data = json.loads(self._index_path(shard)
                              .read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (not isinstance(data, dict)
                or data.get("index_format") != INDEX_FORMAT
                or data.get("store_format") != STORE_FORMAT
                or not isinstance(data.get("entries"), dict)
                or data.get("generation") != current
                or data.get("dir_mtime_ns") != dir_mtime_ns):
            return None
        self._mem_index[shard] = {"generation": current, "pending": 0,
                                  "dir_mtime_ns": dir_mtime_ns,
                                  "entries": data["entries"]}
        self._dirty_index.discard(shard)
        return data["entries"]

    def _build_index(self, shard: str) -> Optional[dict]:
        """Read every valid entry of a shard once and persist the
        sidecar index; returns the payload mapping (or None when the
        shard does not exist).  Invalid entries are skipped — absent
        from the index, they keep falling back to per-key reads,
        which count them truthfully.  The stamped generation is
        sampled *before* listing, so a concurrent writer can only make
        the index look stale, never serve missing entries as misses.
        """
        shard_dir = self.root / shard
        if not shard_dir.is_dir():
            return None
        # Both freshness markers are sampled *before* listing, so a
        # concurrent writer can only make the index look stale, never
        # serve missing entries as misses.
        generation = self._generation(shard)
        dir_mtime_ns = self._dir_mtime_ns(shard)
        if dir_mtime_ns is None:
            return None
        entries: dict = {}
        for path in shard_dir.glob("*.json"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if (isinstance(data, dict)
                    and data.get("format") == STORE_FORMAT
                    and data.get("complete") is True
                    and "payload" in data):
                entries[path.stem] = data["payload"]
        self.index_rebuilds += 1
        self._mem_index[shard] = {"generation": generation, "pending": 0,
                                  "dir_mtime_ns": dir_mtime_ns,
                                  "entries": entries}
        self._dirty_index.discard(shard)
        self._write_index(shard, generation, dir_mtime_ns, entries)
        return entries

    def _write_index(self, shard: str, generation: int,
                     dir_mtime_ns: int, entries: dict) -> None:
        index = {"index_format": INDEX_FORMAT,
                 "store_format": STORE_FORMAT,
                 "generation": generation, "dir_mtime_ns": dir_mtime_ns,
                 "entries": entries}
        index_path = self._index_path(shard)
        try:
            index_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(index_path.parent),
                                            prefix=".tmp-",
                                            suffix=".json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(index, handle, sort_keys=True)
                os.replace(tmp_name, index_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # an unwritable index is a perf loss, not an error

    def _flush_index(self, shard: str) -> None:
        """Persist a put-extended in-memory index (once per batch, not
        once per write) so other handles inherit the warm index too.
        The deferred counter bumps land in the same flush: the file
        advances by ``pending`` and the sidecar is stamped to match."""
        cached = self._mem_index.get(shard)
        if cached is None or shard not in self._dirty_index:
            return
        if cached["generation"] != self._generation(shard):
            return  # someone else wrote meanwhile; let them rebuild
        if cached["pending"]:
            cached["generation"] += cached["pending"]
            cached["pending"] = 0
            self._write_generation(shard, cached["generation"])
        self._write_index(shard, cached["generation"],
                          cached["dir_mtime_ns"], cached["entries"])
        self._dirty_index.discard(shard)

    def get_many(self, keys: "Iterable[str]",
                 decode: "Callable[[Any], Decoded]"
                 ) -> "Dict[str, Decoded]":
        """Batch lookup: decoded payloads for every key that hits.

        Keys are grouped by shard and each touched shard resolves
        through its sidecar index — one index read (or one rebuild
        pass) per shard instead of one ``stat`` + JSON read per key,
        which is what makes warm million-run campaigns resolve their
        hits at directory speed, not entry speed.  Keys the index
        cannot vouch for fall back to :meth:`get` one at a time, so
        counters (hits / misses / invalid) are identical to a pure
        per-key resolution; keys absent from the result are misses.
        """
        out: "Dict[str, Decoded]" = {}
        by_shard: "Dict[str, List[str]]" = {}
        for key in keys:
            by_shard.setdefault(key[:2], []).append(key)
        for shard, shard_keys in by_shard.items():
            indexed: Optional[dict] = None
            if self.use_index:
                self._flush_index(shard)
                indexed = self._load_index(shard)
                if indexed is None and any(
                        self.has(key) for key in shard_keys):
                    # Build only when the shard can actually serve a
                    # requested key: a miss-heavy campaign over a big
                    # store must not read (and duplicate) every entry
                    # just to conclude its own keys are new.  The
                    # existence probe is one stat per requested key —
                    # exactly the old per-spec planning cost, paid
                    # only on shards with no fresh index.
                    indexed = self._build_index(shard)
            for key in shard_keys:
                if self._maybe_read_fault(key):
                    self.stats.invalid += 1
                    self.stats.misses += 1
                    continue
                if indexed is not None and key in indexed:
                    try:
                        decoded = decode(indexed[key])
                    except Exception:
                        pass  # undecodable: per-key read settles it
                    else:
                        self.stats.hits += 1
                        out[key] = decoded
                        continue
                value = self.get(key, decode)
                if value is not None:
                    out[key] = value
        return out

    def get_many_records(self, keys: "Iterable[str]"
                         ) -> "Dict[str, RunRecord]":
        return self.get_many(keys, decode_record)

    # -- RunRecord convenience -------------------------------------------------

    def get_record(self, key: str) -> "Optional[RunRecord]":
        return self.get(key, decode_record)

    def put_record(self, key: str, record: "RunRecord") -> None:
        self.put(key, encode_record(record))

    # -- compaction ------------------------------------------------------------

    def shards(self) -> "List[str]":
        """Every shard that currently holds entries."""
        if not self.root.is_dir():
            return []
        return sorted(path.name for path in self.root.iterdir()
                      if path.is_dir() and len(path.name) == 2)

    def shard_payloads(self, shard: str) -> "Dict[str, Any]":
        """Every valid payload of one shard, keyed by entry key — the
        bulk-preload primitive hot-shard rebalancing uses.  Does not
        touch the lookup counters."""
        shard_dir = self.root / shard
        out: "Dict[str, Any]" = {}
        if not shard_dir.is_dir():
            return out
        for path in sorted(shard_dir.glob("*.json")):
            if path.name.startswith(".tmp-"):
                continue
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if (isinstance(data, dict)
                    and data.get("format") == STORE_FORMAT
                    and data.get("complete") is True
                    and "payload" in data):
                out[path.stem] = data["payload"]
        return out

    def entries(self) -> "Iterator[Tuple[str, Path]]":
        """Every ``(key, path)`` currently on disk, in sorted order.

        Walks the two-hex shard directories; anything that does not
        look like an entry file (temp files from in-flight writes,
        stray droppings) is not reported here — :meth:`gc` handles
        leftover temp files separately.
        """
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for path in sorted(shard.glob("*.json")):
                if not path.name.startswith(".tmp-"):
                    yield path.stem, path

    def gc(self, live_keys: "Iterable[str]",
           dry_run: bool = False) -> "GCStats":
        """Drop every entry whose key is not in ``live_keys``.

        Content-addressed entries accumulate forever: any sweep,
        seed, profile, or package-version change strands the old
        digests.  GC is a mark-and-sweep over the directory — the
        caller enumerates the keys its current campaigns reference
        (see ``TestRunner.store_keys``), everything else is deleted,
        and stale ``.tmp-*`` droppings from crashed writers go too.
        Run it offline: a writer racing the sweep would only lose
        cache entries (and re-execute), never correctness.

        ``dry_run=True`` walks the same mark phase and returns the
        same kept/removed/reclaimable accounting without deleting
        anything (indexes stay warm, entries stay served).  The only
        divergence from a real sweep is ``.gen`` sidecars of shards
        the sweep *would have* emptied — they are counted only by the
        real pass, a few bytes of undercount.
        """
        live = set(live_keys)
        stats = GCStats()
        dirty_shards: "set[str]" = set()
        if not dry_run:
            self._mem_index.clear()
            self._dirty_index.clear()
        for key, path in self.entries():
            size = path.stat().st_size
            if key in live:
                stats.kept += 1
                stats.kept_bytes += size
                continue
            if not dry_run:
                path.unlink()
            stats.removed += 1
            stats.reclaimed_bytes += size
            dirty_shards.add(path.parent.name)
        if self.root.is_dir():
            for shard in self.root.iterdir():
                # Dot-directories are off limits to the sweep: .index
                # is handled below, and .quarantine/.journal must
                # survive gc (quarantined evidence and resume state
                # are not cache entries).
                if not shard.is_dir() or shard.name.startswith("."):
                    continue
                for stale in shard.glob(".tmp-*"):
                    stats.reclaimed_bytes += stale.stat().st_size
                    if not dry_run:
                        stale.unlink()
                    stats.removed_tmp += 1
                    dirty_shards.add(shard.name)
                if not dry_run:
                    try:
                        shard.rmdir()  # only succeeds when emptied
                    except OSError:
                        pass
            # Every sweep-touched shard gets a generation bump so any
            # index built before the sweep — on disk, or in another
            # handle's memory — reads as stale rather than serving
            # removed entries.
            if not dry_run:
                for shard in dirty_shards:
                    if (self.root / shard).is_dir():
                        self._bump_generation(shard)
            # Sidecar indexes are derived data: drop the ones whose
            # shard changed (or vanished) in this sweep — staleness
            # detection would ignore them anyway — and keep the still
            # fresh ones warm.  Generation counters survive for
            # surviving shards (they are the staleness authority) and
            # go with their shard otherwise.
            index_dir = self.root / ".index"
            if index_dir.is_dir():
                for index_file in index_dir.iterdir():
                    shard = index_file.name.split(".")[0]
                    if not shard:
                        # .tmp-* dropping from a crashed index writer.
                        stats.reclaimed_bytes += \
                            index_file.stat().st_size
                        if not dry_run:
                            index_file.unlink()
                        stats.removed_tmp += 1
                        continue
                    shard_gone = not (self.root / shard).is_dir()
                    if index_file.suffix == ".gen":
                        if shard_gone:
                            stats.reclaimed_bytes += \
                                index_file.stat().st_size
                            if not dry_run:
                                index_file.unlink()
                            stats.removed_index += 1
                    elif shard in dirty_shards or shard_gone:
                        stats.reclaimed_bytes += \
                            index_file.stat().st_size
                        if not dry_run:
                            index_file.unlink()
                        stats.removed_index += 1
                if not dry_run:
                    try:
                        index_dir.rmdir()  # only succeeds when emptied
                    except OSError:
                        pass
        return stats


@dataclass
class GCStats:
    """Outcome of one :meth:`CampaignStore.gc` sweep."""

    kept: int = 0
    kept_bytes: int = 0
    removed: int = 0
    reclaimed_bytes: int = 0
    removed_tmp: int = 0
    removed_index: int = 0

    def summary(self) -> str:
        return (f"kept={self.kept} ({self.kept_bytes} B) "
                f"removed={self.removed} tmp={self.removed_tmp} "
                f"reclaimed={self.reclaimed_bytes} B")


# -- packed per-shard layout ---------------------------------------------------


#: ``sort_keys`` puts ``"key"`` right after the complete/format markers,
#: so it always lands in the first ~60 bytes of a record line; searching
#: a bounded prefix keeps the scan O(entries), not O(bytes).
_PACK_KEY_RE = re.compile(rb'"key": "([0-9a-f]{64})"')
_PACK_KEY_WINDOW = 160

_INVALID = object()  # decode sentinel: "slice present but not a valid entry"
_BROKEN = object()   # read sentinel: "pack unreadable this pass"


class PackedCampaignStore(CampaignStore):
    """The same content-addressed cache, packed many-entries-per-file.

    One JSON file per entry hits inode and ``stat`` limits long before a
    million entries; at population scale the store must be a handful of
    big files, not a million small ones.  This layout keeps everything
    the per-file store promises — same keys, same record payload bytes,
    same hit/miss/invalid/quarantine semantics — but stores each shard
    as a single append-only ``root/<shard>.pack`` of newline-delimited
    entry records with an in-memory ``key -> (offset, length)`` map and
    a sidecar offset index (``root/.index/<shard>.json``) so a fresh
    handle warms up with one index read instead of a full scan.

    Durability model: records are appended with the completeness marker
    in the same single ``write``; a writer that dies mid-append leaves a
    *torn tail* — a final line with no newline — which the scanner
    refuses to index and the next append heals by prefixing a newline
    (the torn bytes become one dead, never-indexed line).  Superseding
    writes and quarantined slices leave dead bytes behind; they are
    tracked per shard and reclaimed by :meth:`compact_shard` or
    :meth:`gc` (which rewrites packs instead of unlinking entry files).

    Handles are not internally locked: callers that share one handle
    across threads must serialize access (the campaign service's tiered
    store does).  Cross-process appends are safe — ``O_APPEND`` writes
    are atomic for record-sized lines and reconciliation rescans any
    bytes another writer slipped in.
    """

    def __init__(self, root: Union[str, Path],
                 use_index: bool = True) -> None:
        super().__init__(root, use_index=use_index)
        #: Per-shard scan state: ``offsets`` (key -> (offset, length)),
        #: ``scanned`` (bytes covered by complete lines), ``size`` (file
        #: size at last reconcile), ``dead`` (superseded/quarantined
        #: bytes), ``generation`` (counter at scan time), ``dirty``
        #: (offsets ahead of the sidecar index).
        self._packs: "Dict[str, dict]" = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PackedCampaignStore({str(self.root)!r}, "
                f"{self.stats.summary()})")

    # -- layout ----------------------------------------------------------------

    def _pack_path(self, shard: str) -> Path:
        return self.root / f"{shard}.pack"

    def shards(self) -> "List[str]":
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.pack")
                      if not path.name.startswith(".tmp-"))

    @staticmethod
    def _encode_line(key: str, payload: Any) -> bytes:
        entry = {"format": STORE_FORMAT, "complete": True, "key": key,
                 "payload": payload}
        return (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")

    # -- scan / reconcile ------------------------------------------------------

    def _fresh_state(self, generation: int) -> dict:
        return {"offsets": {}, "scanned": 0, "size": 0, "dead": 0,
                "generation": generation, "dirty": False}

    def _scan_pack(self, shard: str, state: dict, start: int) -> None:
        """Index every complete line from byte ``start`` to EOF.

        Lines without an extractable key (healed torn tails, corrupt
        appends) become dead bytes; duplicate keys keep the *last*
        occurrence (append order is supersede order).  A trailing
        fragment with no newline is left unscanned — ``scanned`` stops
        at the last complete line, so the fragment is retried on the
        next reconcile and healed by the next append.
        """
        try:
            with open(self._pack_path(shard), "rb") as handle:
                handle.seek(start)
                data = handle.read()
        except OSError:
            return
        offsets = state["offsets"]
        pos = 0
        while True:
            newline = data.find(b"\n", pos)
            if newline < 0:
                break
            length = newline + 1 - pos
            match = _PACK_KEY_RE.search(
                data, pos, min(newline, pos + _PACK_KEY_WINDOW))
            if match is not None:
                key = match.group(1).decode("ascii")
                old = offsets.get(key)
                if old is not None:
                    state["dead"] += old[1]
                offsets[key] = (start + pos, length)
            else:
                state["dead"] += length
            pos = newline + 1
        state["scanned"] = start + pos
        state["size"] = start + len(data)

    def _load_pack_index(self, shard: str, generation: int,
                         size: int) -> Optional[dict]:
        """The sidecar offset index, when it is provably usable.

        ``generation`` must match the shard's counter (compaction and
        gc bump it) and the stamped ``pack_size`` must not exceed the
        actual file (appends since the stamp are fine — the scanner
        resumes from ``pack_size``; a *shorter* file means a rewrite
        the counter somehow missed, so the index is ignored)."""
        try:
            data = json.loads(self._index_path(shard)
                              .read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (not isinstance(data, dict)
                or data.get("index_format") != INDEX_FORMAT
                or data.get("store_format") != STORE_FORMAT
                or data.get("layout") != "packed"
                or data.get("generation") != generation
                or not isinstance(data.get("pack_size"), int)
                or data["pack_size"] > size
                or not isinstance(data.get("offsets"), dict)):
            return None
        return data

    def _ensure_shard(self, shard: str) -> Optional[dict]:
        """Reconcile the in-memory state with the pack file; None when
        the shard has no pack."""
        try:
            size = self._pack_path(shard).stat().st_size
        except OSError:
            self._packs.pop(shard, None)
            return None
        generation = self._generation(shard)
        state = self._packs.get(shard)
        if state is not None and state["generation"] == generation:
            if size < state["scanned"]:
                state = None  # rewritten out-of-band: full rescan
            elif size > state["scanned"]:
                self._scan_pack(shard, state, state["scanned"])
                state["dirty"] = True
                return state
            else:
                state["size"] = size
                return state
        state = self._fresh_state(generation)
        if self.use_index:
            sidecar = self._load_pack_index(shard, generation, size)
            if sidecar is not None:
                state["offsets"] = {
                    key: (int(span[0]), int(span[1]))
                    for key, span in sidecar["offsets"].items()}
                state["scanned"] = sidecar["pack_size"]
                state["size"] = sidecar["pack_size"]
                state["dead"] = int(sidecar.get("dead", 0))
        if state["scanned"] < size:
            if state["scanned"] == 0 and size > 0:
                self.index_rebuilds += 1  # a full scan is the rebuild
            self._scan_pack(shard, state, state["scanned"])
            state["dirty"] = True
        self._packs[shard] = state
        return state

    def _flush_pack_index(self, shard: str, state: dict) -> None:
        if not state["dirty"]:
            return
        index = {"index_format": INDEX_FORMAT,
                 "store_format": STORE_FORMAT,
                 "layout": "packed",
                 "generation": state["generation"],
                 "pack_size": state["scanned"],
                 "dead": state["dead"],
                 "offsets": {key: list(span)
                             for key, span in state["offsets"].items()}}
        index_path = self._index_path(shard)
        try:
            index_path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(index_path.parent),
                                            prefix=".tmp-",
                                            suffix=".json")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(index, handle, sort_keys=True)
                os.replace(tmp_name, index_path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return  # an unwritable index is a perf loss, not an error
        state["dirty"] = False

    # -- reads -----------------------------------------------------------------

    def has(self, key: str) -> bool:
        state = self._ensure_shard(key[:2])
        return state is not None and key in state["offsets"]

    def _read_slice(self, shard: str, span: "Tuple[int, int]"
                    ) -> Optional[bytes]:
        try:
            with open(self._pack_path(shard), "rb") as handle:
                handle.seek(span[0])
                return handle.read(span[1])
        except OSError:
            return None

    def _decode_slice(self, key: str, raw: bytes,
                      decode: "Callable[[Any], Decoded]") -> Any:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return _INVALID
        return self._decode_obj(key, data, decode)

    @staticmethod
    def _decode_obj(key: str, data: Any,
                    decode: "Callable[[Any], Decoded]") -> Any:
        if (isinstance(data, dict) and data.get("format") == STORE_FORMAT
                and data.get("complete") is True
                and data.get("key") == key and "payload" in data):
            try:
                return decode(data["payload"])
            except Exception:
                return _INVALID
        return _INVALID

    def _parse_pack_bulk(self, buffer: bytes
                         ) -> "Optional[Tuple[List[Any], Dict[int, int]]]":
        """One-shot parse of a clean pack: the whole file as a JSON
        array (2-3x cheaper than a ``json.loads`` per line) plus a map
        from line start offset to array index.  Canonical lines never
        contain raw newline bytes (``json.dumps`` escapes them), so
        newline really is the record separator.  Any anomaly — torn
        tail, healed junk, foreign bytes — fails the array parse and
        the caller falls back to validated per-slice reads."""
        stripped = buffer.rstrip(b"\n")
        if not stripped or buffer[-1:] != b"\n":
            return None  # empty, or a torn tail the index skips anyway
        try:
            parsed = json.loads(b"[" + stripped.replace(b"\n", b",")
                                + b"]")
        except ValueError:
            return None
        starts: "Dict[int, int]" = {}
        position = 0
        for index, line in enumerate(stripped.split(b"\n")):
            starts[position] = index
            position += len(line) + 1
        return parsed, starts

    def _quarantine_slice(self, key: str, shard: str, raw: bytes,
                          state: dict) -> None:
        """Packed analog of :meth:`CampaignStore._quarantine`: the bad
        bytes cannot be moved out of the pack, so they are *copied* to
        quarantine and dropped from the offset map — the slot frees up
        for the re-executed append and the dead bytes wait for
        compaction."""
        dest = self.root / ".quarantine" / shard / f"{key}.json"
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_bytes(raw)
        except OSError:
            return  # can't copy it: degrade to a plain invalid miss
        self.stats.quarantined += 1
        span = state["offsets"].pop(key, None)
        if span is not None:
            state["dead"] += span[1]
        state["dirty"] = True

    def get(self, key: str,
            decode: "Callable[[Any], Decoded]") -> Optional[Decoded]:
        if self._maybe_read_fault(key):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        shard = key[:2]
        state = self._ensure_shard(shard)
        span = None if state is None else state["offsets"].get(key)
        if span is None:
            self.stats.misses += 1
            return None
        raw = self._read_slice(shard, span)
        if raw is None:
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        value = self._decode_slice(key, raw, decode)
        if value is _INVALID:
            self._quarantine_slice(key, shard, raw, state)
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def get_many(self, keys: "Iterable[str]",
                 decode: "Callable[[Any], Decoded]"
                 ) -> "Dict[str, Decoded]":
        out: "Dict[str, Decoded]" = {}
        by_shard: "Dict[str, List[str]]" = {}
        for key in keys:
            by_shard.setdefault(key[:2], []).append(key)
        for shard, shard_keys in by_shard.items():
            state = self._ensure_shard(shard)
            if state is not None and self.use_index:
                self._flush_pack_index(shard, state)
            offsets = {} if state is None else state["offsets"]
            # Dense batches slurp the whole pack in one read and slice
            # in memory: a warm dense-grid resolve is then one syscall
            # per shard instead of one seek+read per key.  Sparse
            # batches keep the per-key reads (don't drag a huge pack
            # through memory for three keys).
            wanted = sum(offsets[key][1] for key in shard_keys
                         if key in offsets)
            buffer: Optional[bytes] = None
            parsed: Optional[list] = None
            starts: "Dict[int, int]" = {}
            if (state is not None and wanted * 2 >= state["size"]
                    and sum(key in offsets for key in shard_keys) >= 8):
                try:
                    buffer = self._pack_path(shard).read_bytes()
                except OSError:
                    buffer = None
                if buffer is not None:
                    bulk = self._parse_pack_bulk(buffer)
                    if bulk is not None:
                        parsed, starts = bulk
            handle: Any = None
            try:
                for key in shard_keys:
                    if self._maybe_read_fault(key):
                        self.stats.invalid += 1
                        self.stats.misses += 1
                        continue
                    span = offsets.get(key)
                    if span is None:
                        self.stats.misses += 1
                        continue
                    if parsed is not None and span[0] in starts:
                        value = self._decode_obj(key, parsed[starts[span[0]]],
                                                 decode)
                        if value is _INVALID:
                            raw = buffer[span[0]:span[0] + span[1]]
                            self._quarantine_slice(key, shard, raw, state)
                            self.stats.invalid += 1
                            self.stats.misses += 1
                            continue
                        self.stats.hits += 1
                        out[key] = value
                        continue
                    if buffer is not None and span[0] + span[1] <= len(buffer):
                        raw = buffer[span[0]:span[0] + span[1]]
                    else:
                        if handle is None:
                            try:
                                handle = open(self._pack_path(shard), "rb")
                            except OSError:
                                handle = _BROKEN
                        if handle is _BROKEN:
                            self.stats.invalid += 1
                            self.stats.misses += 1
                            continue
                        try:
                            handle.seek(span[0])
                            raw = handle.read(span[1])
                        except OSError:
                            self.stats.invalid += 1
                            self.stats.misses += 1
                            continue
                    value = self._decode_slice(key, raw, decode)
                    if value is _INVALID:
                        self._quarantine_slice(key, shard, raw, state)
                        self.stats.invalid += 1
                        self.stats.misses += 1
                        continue
                    self.stats.hits += 1
                    out[key] = value
            finally:
                if handle is not None and handle is not _BROKEN:
                    handle.close()
        return out

    # -- writes ----------------------------------------------------------------

    def put(self, key: str, payload: Any) -> None:
        plan = self.fault_plan
        if plan is not None:
            spec = plan.store_fault("write", key)
            if spec is not None:
                self._faulted_pack_write(key, spec, payload)
                return
        shard = key[:2]
        state = self._ensure_shard(shard)
        if state is None:
            state = self._fresh_state(self._generation(shard))
            self._packs[shard] = state
        line = self._encode_line(key, payload)
        torn = state["size"] > state["scanned"]
        buf = b"\n" + line if torn else line
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._pack_path(shard),
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, buf)
            # O_APPEND leaves the fd positioned at the end of *our*
            # write even when another process appended in between, so
            # the record's true offset is exact, not assumed.
            end = os.lseek(fd, 0, os.SEEK_CUR)
        finally:
            os.close(fd)
        start = end - len(line)
        old = state["offsets"].get(key)
        if old is not None:
            state["dead"] += old[1]
        state["offsets"][key] = (start, len(line))
        expected = state["size"] + (1 if torn else 0)
        if start == expected:
            # Nobody slipped in: the healed torn bytes (if any) are
            # one dead line and the scan frontier advances past us.
            state["dead"] += start - state["scanned"]
            state["scanned"] = end
        # else: a foreign append landed first; leave ``scanned`` where
        # it is and let the next reconcile scan the middle region.
        state["size"] = end
        state["dirty"] = True
        self.stats.stores += 1

    def _faulted_pack_write(self, key: str, spec, payload: Any) -> None:
        """Chaos-only: what a dying packed writer leaves behind.

        ``corrupt`` appends a truncated record with **no newline** — the
        packed layout's torn tail, healed by the next append and never
        indexed.  ``partial`` appends a structurally valid line with no
        completeness marker, which scans into the offset map and is
        quarantined on first read, exactly like the per-file layout's
        partial entry."""
        from ..faults import FaultKind

        if spec.kind is FaultKind.IO_ERROR:
            raise OSError(f"injected store write error ({key[:12]}...)")
        if spec.kind is FaultKind.CORRUPT_WRITE:
            buf = b'{"complete": tru'
        else:  # PARTIAL_WRITE
            buf = (json.dumps({"format": STORE_FORMAT, "key": key,
                               "payload": payload}, sort_keys=True)
                   + "\n").encode("utf-8")
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self._pack_path(key[:2]),
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, buf)
        finally:
            os.close(fd)
        # The writer believed it stored the entry — count it so the
        # chaos battery can see the lie in the counters.  The stale
        # in-memory state reconciles on the next size check.
        self.stats.stores += 1

    # -- maintenance -----------------------------------------------------------

    def entries(self) -> "Iterator[Tuple[str, Path]]":
        for shard in self.shards():
            state = self._ensure_shard(shard)
            if state is None:
                continue
            path = self._pack_path(shard)
            for key in sorted(state["offsets"]):
                yield key, path

    def shard_payloads(self, shard: str) -> "Dict[str, Any]":
        """Every valid payload of one shard, keyed by entry key — the
        bulk-preload primitive hot-shard rebalancing uses.  Does not
        touch the lookup counters."""
        state = self._ensure_shard(shard)
        if state is None:
            return {}
        out: "Dict[str, Any]" = {}
        try:
            with open(self._pack_path(shard), "rb") as handle:
                for key in sorted(state["offsets"]):
                    span = state["offsets"][key]
                    handle.seek(span[0])
                    raw = handle.read(span[1])
                    try:
                        data = json.loads(raw.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        continue
                    if (isinstance(data, dict)
                            and data.get("format") == STORE_FORMAT
                            and data.get("complete") is True
                            and data.get("key") == key
                            and "payload" in data):
                        out[key] = data["payload"]
        except OSError:
            return out
        return out

    def dead_bytes(self, shard: str) -> int:
        state = self._ensure_shard(shard)
        return 0 if state is None else state["dead"]

    def pack_size(self, shard: str) -> int:
        state = self._ensure_shard(shard)
        return 0 if state is None else state["size"]

    def _rewrite_pack(self, shard: str, keys: "List[str]",
                      state: dict) -> "Tuple[int, int]":
        """Rewrite one pack keeping exactly ``keys`` (slice-for-slice,
        so surviving records stay byte-identical); returns
        ``(old_size, new_size)``.  An empty keep-set unlinks the pack.
        The rewrite is atomic (temp + replace) and bumps the shard
        generation so every sidecar and foreign handle rescans."""
        path = self._pack_path(shard)
        old_size = state["size"]
        if not keys:
            try:
                path.unlink()
            except OSError:
                pass
            self._packs.pop(shard, None)
            self._bump_generation(shard)
            return old_size, 0
        slices: "List[bytes]" = []
        with open(path, "rb") as handle:
            for key in keys:
                span = state["offsets"][key]
                handle.seek(span[0])
                slices.append(handle.read(span[1]))
        fd, tmp_name = tempfile.mkstemp(dir=str(self.root),
                                        prefix=".tmp-", suffix=".pack")
        try:
            with os.fdopen(fd, "wb") as handle:
                for raw in slices:
                    handle.write(raw)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        generation = self._bump_generation(shard)
        new_state = self._fresh_state(generation)
        offset = 0
        for key, raw in zip(keys, slices):
            new_state["offsets"][key] = (offset, len(raw))
            offset += len(raw)
        new_state["scanned"] = offset
        new_state["size"] = offset
        new_state["dirty"] = True
        self._packs[shard] = new_state
        if self.use_index:
            self._flush_pack_index(shard, new_state)
        return old_size, offset

    def compact_shard(self, shard: str) -> int:
        """Drop a shard's dead bytes (superseded and quarantined
        records, healed torn tails); returns the bytes reclaimed.
        This is the background half of hot-shard rebalancing."""
        state = self._ensure_shard(shard)
        if state is None or (state["dead"] == 0
                             and state["scanned"] == state["size"]):
            return 0
        keys = sorted(state["offsets"])
        old_size, new_size = self._rewrite_pack(shard, keys, state)
        return old_size - new_size

    def gc(self, live_keys: "Iterable[str]",
           dry_run: bool = False) -> "GCStats":
        """Mark-and-sweep for the packed layout.

        Packs are *rewritten* keeping only live records (byte-identical
        slices) instead of unlinking per-entry files; a shard whose
        records are all live and dead-byte-free is left untouched.
        ``.quarantine`` and ``.journal`` survive, stale ``.tmp-*``
        droppings go, and every rewritten shard gets a generation bump
        so stale sidecars are never trusted.

        ``dry_run=True`` returns the same accounting without touching
        any pack: a rewrite emits exactly the live slices, so the
        reclaimable bytes of an unclean shard are computable as
        ``current pack size - live slice bytes`` up front.
        """
        live = set(live_keys)
        stats = GCStats()
        if not self.root.is_dir():
            return stats
        for shard in self.shards():
            state = self._ensure_shard(shard)
            if state is None:
                continue
            offsets = state["offsets"]
            kept_keys = sorted(key for key in offsets if key in live)
            removed = len(offsets) - len(kept_keys)
            kept_bytes = sum(offsets[key][1] for key in kept_keys)
            clean = (removed == 0 and state["dead"] == 0
                     and state["scanned"] == state["size"])
            stats.kept += len(kept_keys)
            stats.kept_bytes += kept_bytes
            if clean:
                continue
            if dry_run:
                stats.removed += removed
                stats.reclaimed_bytes += state["size"] - kept_bytes
                continue
            old_size, new_size = self._rewrite_pack(
                shard, kept_keys, state)
            stats.removed += removed
            stats.reclaimed_bytes += old_size - new_size
        for stale in self.root.glob(".tmp-*"):
            if stale.is_file():
                stats.reclaimed_bytes += stale.stat().st_size
                if not dry_run:
                    stale.unlink()
                stats.removed_tmp += 1
        index_dir = self.root / ".index"
        if index_dir.is_dir():
            for index_file in index_dir.iterdir():
                shard = index_file.name.split(".")[0]
                if not shard:
                    stats.reclaimed_bytes += index_file.stat().st_size
                    if not dry_run:
                        index_file.unlink()
                    stats.removed_tmp += 1
                    continue
                if not self._pack_path(shard).is_file():
                    stats.reclaimed_bytes += index_file.stat().st_size
                    if not dry_run:
                        index_file.unlink()
                    stats.removed_index += 1
            if not dry_run:
                try:
                    index_dir.rmdir()  # only succeeds when emptied
                except OSError:
                    pass
        return stats


def open_store(root: Union[str, Path], layout: str = "auto",
               use_index: bool = True) -> CampaignStore:
    """Open ``root`` with the right layout.

    ``auto`` detects an existing packed store by its ``*.pack`` files
    and otherwise defaults to the per-file layout (an empty directory is
    a per-file store — the historical default, and what the one-shot CLI
    keeps using).  ``file`` / ``packed`` force a layout; forcing
    ``file`` on a packed root (or vice versa) simply sees an empty
    store, it never mis-reads the other layout's bytes.
    """
    root = Path(root)
    if layout == "auto":
        layout = "packed" if any(root.glob("*.pack")) else "file"
    if layout == "packed":
        return PackedCampaignStore(root, use_index=use_index)
    if layout != "file":
        raise ValueError(f"unknown store layout: {layout!r}")
    return CampaignStore(root, use_index=use_index)
